// szx_cli -- command-line front end for the SZx codec.
//
//   szx_cli compress   -i data.f32 -o data.szx [-t f32|f64]
//                      [-m rel|abs|pwrel] [-e 1e-3] [-b 128] [--omp [N]]
//                      [--threads N] [--kernel scalar|avx2|avx512|neon]
//                      [--executor omp|pool] [--hybrid] [--integrity]
//   szx_cli decompress -i data.szx -o recon.f32 [--omp [N]] [--threads N]
//                      [--kernel scalar|avx2|avx512|neon] [--executor omp|pool]
//   szx_cli info       -i data.szx
//   szx_cli verify     -i data.f32 -z data.szx          (prints metrics)
//   szx_cli verify     -z data.szx        (checksum / structural verification)
//   szx_cli salvage    -i data.szx -o recon.f32 [--report PATH]
//                      [--sentinel VAL] [--threads N]
//   szx_cli tune       -i data.f32 [-t f32|f64] [-m ...] [-e ...]
//                      (suggests a block size per Sec. 5.3)
//   szx_cli pack       -o out.szx3 --field NAME:PATH[:f32|f64] ...
//                      [--timesteps K] [--chunk N] [-m ...] [-e ...] [-b ...]
//                      [--integrity] [--threads N]
//   szx_cli unpack     -i in.szx3 -o out.f32 --field NAME [--timestep T]
//                      [--first N --count N] [--threads N]
//   szx_cli query      -i in.szx3 [--json]   (directory + chunk checksums)
//   szx_cli client     --port P [--host H] --op ping|compress|decompress|
//                      salvage|query [-i IN] [-o OUT] [--deadline MS]
//                      [--report PATH] [--no-degrade] [--field-index N]
//                      [--timestep T] [-t ...] [-m ...] [-e ...] [-b ...]
//                      [--integrity]     (submit one job to a szx_serve)
//
// Raw files are flat little-endian float32/float64 arrays (the SDRBench
// convention).
//
// Exit codes (stable contract, covered by tests/cli/test_cli.cpp):
//   0  success
//   2  usage error (bad flags, bad combination of arguments)
//   3  corruption / verification failure (bad stream, bound violated,
//      salvage found damage, server answered with a non-OK status)
//   4  I/O error (cannot open/read/write a file; cannot connect to or
//      talk to a szx_serve daemon)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/compressor.hpp"
#include "core/container.hpp"
#include "core/executor.hpp"
#include "core/kernels/kernels.hpp"
#include "core/omp_codec.hpp"
#include "core/tuning.hpp"
#include "core/validate.hpp"
#include "hybrid/hybrid.hpp"
#include "metrics/metrics.hpp"
#include "resilience/salvage.hpp"
#include "serve/client.hpp"
#include "serve_net.hpp"

namespace {

using namespace szx;

// File-system failures are distinct from stream corruption in the exit-code
// contract; ReadFile/WriteFile throw this and main maps it to exit 4.
struct IoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void Usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  szx_cli compress   -i IN -o OUT [-t f32|f64]"
               " [-m rel|abs|pwrel] [-e BOUND] [-b BLOCK] [--omp [N]]"
               " [--threads N] [--kernel scalar|avx2|avx512|neon] [--executor omp|pool]"
               " [--hybrid] [--integrity]\n"
               "  szx_cli decompress -i IN -o OUT [--omp [N]] [--threads N]"
               " [--kernel scalar|avx2|avx512|neon] [--executor omp|pool]\n"
               "  szx_cli info       -i IN\n"
               "  szx_cli verify     -i RAW -z COMPRESSED   (distortion check)\n"
               "  szx_cli verify     -z COMPRESSED          (integrity check)\n"
               "  szx_cli salvage    -i IN -o OUT [--report PATH]"
               " [--sentinel VAL] [--threads N]\n"
               "  szx_cli tune       -i IN [-t f32|f64] [-m MODE] [-e BOUND]\n"
               "  szx_cli validate   -i IN [-t f32|f64] [--deep]\n"
               "  szx_cli pack       -o OUT --field NAME:PATH[:f32|f64] ..."
               " [--timesteps K] [--chunk N] [-m MODE] [-e BOUND] [-b BLOCK]"
               " [--integrity] [--threads N]\n"
               "  szx_cli unpack     -i IN -o OUT --field NAME [--timestep T]"
               " [--first N --count N] [--threads N]\n"
               "  szx_cli query      -i IN [--json]\n"
               "  szx_cli client     --port P [--host H] --op"
               " ping|compress|decompress|salvage|query [-i IN] [-o OUT]"
               " [--deadline MS] [--report PATH] [--no-degrade]"
               " [--field-index N] [--timestep T] [-t f32|f64] [-m MODE]"
               " [-e BOUND] [-b BLOCK] [--integrity]\n"
               "exit codes: 0 success, 2 usage, 3 corruption/verification"
               " failure or non-OK server status, 4 I/O or connection"
               " error\n");
  std::exit(2);
}

ByteBuffer ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw IoError("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  ByteBuffer buf(static_cast<std::size_t>(size));
  // szx-lint: allow(reinterpret-cast) -- ifstream::read requires char*; this is the file-I/O boundary
  in.read(reinterpret_cast<char*>(buf.data()), size);
  if (!in) throw IoError("cannot read " + path);
  return buf;
}

void WriteFile(const std::string& path, const void* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open " + path + " for writing");
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out) throw IoError("cannot write " + path);
}

struct Args {
  std::string input, output, compressed, report;
  std::string dtype = "f32";
  std::string mode = "rel";
  double error_bound = 1e-3;
  double sentinel = std::numeric_limits<double>::quiet_NaN();
  std::uint32_t block_size = 128;
  std::string kernel;    // empty = dispatcher's own choice
  std::string executor;  // empty = SZX_EXECUTOR / default backend
  bool omp = false;
  bool hybrid = false;
  bool deep = false;
  bool integrity = false;
  bool json = false;
  int threads = 0;
  std::vector<std::string> fields;  // pack: NAME:PATH[:dtype]; unpack: NAME
  std::uint64_t timesteps = 1;      // pack: split each field file into K
  std::uint64_t chunk = 0;          // pack: chunk elements (0 = default)
  std::uint64_t timestep = 0;       // unpack: which timestep
  std::uint64_t first = 0;          // unpack ROI start
  std::uint64_t count = 0;          // unpack ROI length
  bool has_range = false;
  std::string host = "127.0.0.1";   // client: szx_serve address
  int port = -1;                    // client: szx_serve port (required)
  std::string op = "ping";          // client: job opcode
  std::uint32_t deadline_ms = 0;    // client: per-request deadline (0 = none)
  std::uint32_t field_index = 0;    // client query: container field index
  bool no_degrade = false;          // client: strict mode (no partials)

  ErrorBoundMode Mode() const {
    if (mode == "abs") return ErrorBoundMode::kAbsolute;
    if (mode == "pwrel") return ErrorBoundMode::kPointwiseRelative;
    return ErrorBoundMode::kValueRangeRelative;
  }
};

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "-i") a.input = next();
    else if (arg == "-o") a.output = next();
    else if (arg == "-z") a.compressed = next();
    else if (arg == "-t") a.dtype = next();
    else if (arg == "-m") a.mode = next();
    else if (arg == "-e") a.error_bound = std::atof(next().c_str());
    else if (arg == "-b") a.block_size = static_cast<std::uint32_t>(
                              std::atoi(next().c_str()));
    else if (arg == "--omp") {
      a.omp = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        a.threads = std::atoi(argv[++i]);
      }
    } else if (arg == "--threads") {
      // Explicit thread count: implies the OMP codec paths.
      a.omp = true;
      a.threads = std::atoi(next().c_str());
      if (a.threads < 1) Usage("--threads must be >= 1");
    } else if (arg == "--kernel") {
      a.kernel = next();
    } else if (arg == "--executor") {
      // Backend choice implies the parallel codec paths (like --threads).
      a.omp = true;
      a.executor = next();
    } else if (arg == "--hybrid") {
      a.hybrid = true;
    } else if (arg == "--deep") {
      a.deep = true;
    } else if (arg == "--integrity") {
      a.integrity = true;
    } else if (arg == "--report") {
      a.report = next();
    } else if (arg == "--sentinel") {
      a.sentinel = std::atof(next().c_str());
    } else if (arg == "--field") {
      a.fields.push_back(next());
    } else if (arg == "--timesteps") {
      a.timesteps = std::strtoull(next().c_str(), nullptr, 10);
      if (a.timesteps < 1) Usage("--timesteps must be >= 1");
    } else if (arg == "--chunk") {
      a.chunk = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--timestep") {
      a.timestep = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--first") {
      a.first = std::strtoull(next().c_str(), nullptr, 10);
      a.has_range = true;
    } else if (arg == "--count") {
      a.count = std::strtoull(next().c_str(), nullptr, 10);
      a.has_range = true;
    } else if (arg == "--json") {
      a.json = true;
    } else if (arg == "--host") {
      a.host = next();
    } else if (arg == "--port") {
      a.port = std::atoi(next().c_str());
      if (a.port < 0 || a.port > 65535) Usage("--port must be 0..65535");
    } else if (arg == "--op") {
      a.op = next();
    } else if (arg == "--deadline") {
      const long v = std::strtol(next().c_str(), nullptr, 10);
      if (v < 0) Usage("--deadline must be >= 0 (milliseconds)");
      a.deadline_ms = static_cast<std::uint32_t>(v);
    } else if (arg == "--field-index") {
      a.field_index = static_cast<std::uint32_t>(
          std::strtoul(next().c_str(), nullptr, 10));
    } else if (arg == "--no-degrade") {
      a.no_degrade = true;
    } else {
      Usage(("unknown flag " + arg).c_str());
    }
  }
  if (a.dtype != "f32" && a.dtype != "f64") Usage("-t must be f32 or f64");
  if (a.mode != "rel" && a.mode != "abs" && a.mode != "pwrel") {
    Usage("-m must be rel, abs or pwrel");
  }
  if (!a.kernel.empty() && a.kernel != "list") {
    kernels::Kind parsed{};
    if (!kernels::ParseKind(a.kernel.c_str(), parsed)) {
      Usage("--kernel must be scalar, avx2, avx512, neon or list");
    }
  }
  if (!a.executor.empty() && a.executor != "omp" && a.executor != "pool") {
    Usage("--executor must be omp or pool");
  }
  return a;
}

// `--kernel list`: one row per tier of the dispatch table, plus which one
// the dispatcher would run right now.
void PrintKernelTable() {
  const kernels::Kind active = kernels::ActiveKind();
  std::printf("kernel   compiled  supported  active\n");
  for (const kernels::TierInfo& t : kernels::KernelTiers()) {
    std::printf("%-7s  %-8s  %-9s  %s\n", kernels::KindName(t.kind),
                t.compiled ? "yes" : "no", t.supported ? "yes" : "no",
                t.kind == active ? "*" : "");
  }
}

// Installs the requested block-kernel implementation for the whole run.
void ApplyKernelChoice(const Args& a) {
  if (!a.kernel.empty()) {
    if (a.kernel == "list") {
      PrintKernelTable();
      std::exit(0);
    }
    kernels::Kind want = kernels::Kind::kScalar;
    (void)kernels::ParseKind(a.kernel.c_str(), want);  // validated in Parse
    // scalar/avx2 keep their historical degrade-with-warning semantics
    // (portable scripts rely on them); the opt-in avx512/neon tiers fail
    // loudly instead, so a benchmark never silently measures the wrong ISA.
    if ((want == kernels::Kind::kAvx512 || want == kernels::Kind::kNeon) &&
        !kernels::KindSupported(want)) {
      Usage((a.kernel + " kernels are not available in this build/on this "
                        "CPU (see --kernel list)")
                .c_str());
    }
    if (kernels::SetActiveKind(want) != want) {
      std::fprintf(stderr,
                   "szx: --kernel %s requested but unavailable; using %s "
                   "kernels\n",
                   a.kernel.c_str(),
                   kernels::KindName(kernels::ActiveKind()));
    }
  }
  if (!a.executor.empty()) {
    const exec::Backend want =
        a.executor == "omp" ? exec::Backend::kOmp : exec::Backend::kPool;
    if (want == exec::Backend::kOmp && !exec::OmpAvailable()) {
      std::fprintf(stderr,
                   "szx: --executor omp requested but this build has no "
                   "OpenMP; using the work-stealing pool\n");
    }
    exec::SetActiveBackend(want);
  }
}

template <typename T>
int DoCompress(const Args& a) {
  const ByteBuffer raw = ReadFile(a.input);
  if (raw.size() % sizeof(T) != 0) {
    Usage("input size is not a multiple of the element size");
  }
  std::vector<T> data(raw.size() / sizeof(T));
  ByteCursor(raw).ReadSpan(std::span<T>(data));
  Params p;
  p.mode = a.Mode();
  p.error_bound = a.error_bound;
  p.block_size = a.block_size;
  p.integrity = a.integrity;
  CompressionStats stats;
  ByteBuffer stream;
  if (a.hybrid) {
    hybrid::HybridStats hstats;
    stream = hybrid::Compress<T>(data, p, &hstats);
    stats = hstats.szx;
    stats.compressed_bytes = stream.size();
  } else {
    stream = a.omp ? CompressOmp<T>(data, p, &stats, a.threads)
                   : Compress<T>(data, p, &stats);
  }
  WriteFile(a.output, stream.data(), stream.size());
  std::printf("%zu -> %zu bytes (ratio %.3f), %llu/%llu constant blocks\n",
              raw.size(), stream.size(), stats.CompressionRatio(sizeof(T)),
              static_cast<unsigned long long>(stats.num_constant_blocks),
              static_cast<unsigned long long>(stats.num_blocks));
  return 0;
}

int DoDecompress(const Args& a) {
  ByteBuffer stream = ReadFile(a.input);
  if (hybrid::IsHybridStream(stream)) {
    stream = hybrid::Unwrap(stream);
  }
  const Header h = PeekHeader(stream);
  if (h.dtype == static_cast<std::uint8_t>(DataType::kFloat32)) {
    const auto out = a.omp ? DecompressOmp<float>(stream, a.threads)
                           : Decompress<float>(stream);
    WriteFile(a.output, out.data(), out.size() * sizeof(float));
    std::printf("wrote %zu float32 values\n", out.size());
  } else {
    const auto out = a.omp ? DecompressOmp<double>(stream, a.threads)
                           : Decompress<double>(stream);
    WriteFile(a.output, out.data(), out.size() * sizeof(double));
    std::printf("wrote %zu float64 values\n", out.size());
  }
  return 0;
}

int DoQuery(const Args& a);

int DoInfo(const Args& a) {
  ByteBuffer stream = ReadFile(a.input);
  if (IsContainer(stream)) {
    // Format-v3 container: info degrades to the query summary.
    return DoQuery(a);
  }
  if (hybrid::IsHybridStream(stream)) {
    std::printf("hybrid wrapper (SZx + lossless stage)\n");
    stream = hybrid::Unwrap(stream);
  }
  const Header h = PeekHeader(stream);
  std::printf("szx stream v%d\n", h.version);
  std::printf("  dtype          %s\n", h.dtype == 0 ? "float32" : "float64");
  std::printf("  elements       %llu\n",
              static_cast<unsigned long long>(h.num_elements));
  std::printf("  block size     %u\n", h.block_size);
  std::printf("  blocks         %llu (%llu constant)\n",
              static_cast<unsigned long long>(h.num_blocks),
              static_cast<unsigned long long>(h.num_constant));
  const char* mode_name =
      h.eb_mode == 0 ? "abs" : (h.eb_mode == 1 ? "rel" : "pwrel");
  std::printf("  bound          %s %.6g (abs %.6g)\n", mode_name,
              h.error_bound_user, h.error_bound_abs);
  std::printf("  solution       %c\n", "ABC"[h.solution]);
  std::printf("  payload        %llu bytes%s\n",
              static_cast<unsigned long long>(h.payload_bytes),
              (h.flags & kFlagRawPassthrough) ? " (raw passthrough)" : "");
  return 0;
}

template <typename T>
int DoTune(const Args& a) {
  const ByteBuffer raw = ReadFile(a.input);
  if (raw.size() % sizeof(T) != 0) {
    Usage("input size is not a multiple of the element size");
  }
  std::vector<T> data(raw.size() / sizeof(T));
  ByteCursor(raw).ReadSpan(std::span<T>(data));
  Params p;
  p.mode = a.Mode();
  p.error_bound = a.error_bound;
  const auto sweep = SweepBlockSizes<T>(data, p);
  std::printf("%-10s %10s\n", "blocksize", "sampled CR");
  for (const auto& c : sweep) {
    std::printf("%-10u %10.3f\n", c.block_size, c.sampled_ratio);
  }
  const auto choice = ChooseBlockSize<T>(data, p);
  std::printf("suggested block size: %u (CR %.3f)\n", choice.block_size,
              choice.sampled_ratio);
  return 0;
}

template <typename T>
int DoValidate(const Args& a) {
  ByteBuffer stream = ReadFile(a.input);
  if (hybrid::IsHybridStream(stream)) {
    stream = hybrid::Unwrap(stream);
  }
  const ValidationReport r = ValidateStream<T>(stream, a.deep);
  if (r.ok) {
    std::printf("stream OK (%llu elements, %llu payload bytes%s)\n",
                static_cast<unsigned long long>(r.header.num_elements),
                static_cast<unsigned long long>(r.payload_bytes_walked),
                a.deep ? ", deep-checked" : "");
    return 0;
  }
  std::printf("stream INVALID: %s\n", r.error.c_str());
  return 3;
}

template <typename T>
int DoVerifyIntegrity(const Args& a, const ByteBuffer& stream) {
  // Footer path (format v2): checksum every section and payload chunk.
  // v1 streams carry no checksums, so fall back to a deep structural walk.
  const Header h = PeekHeader(stream);
  if (h.version == kFormatVersionIntegrity) {
    const resilience::DamageReport r = resilience::VerifyIntegrity<T>(stream);
    if (!a.report.empty()) {
      const std::string json = r.ToJson();
      WriteFile(a.report, json.data(), json.size());
    }
    if (r.clean) {
      std::printf("integrity OK (%llu blocks, %zu chunks verified)\n",
                  static_cast<unsigned long long>(h.num_blocks),
                  r.chunks.size());
      return 0;
    }
    std::printf("integrity FAILED: %s\n",
                r.error.empty() ? "checksum mismatch" : r.error.c_str());
    std::printf("%s\n", r.ToJson().c_str());
    return 3;
  }
  const ValidationReport r = ValidateStream<T>(stream, /*deep=*/true);
  if (r.ok) {
    std::printf("structure OK (v%d stream has no checksums; deep-walked "
                "%llu payload bytes)\n",
                h.version,
                static_cast<unsigned long long>(r.payload_bytes_walked));
    return 0;
  }
  std::printf("structure INVALID: %s\n", r.error.c_str());
  return 3;
}

template <typename T>
int DoSalvage(const Args& a, const ByteBuffer& stream) {
  resilience::SalvageOptions opt;
  opt.num_threads = a.omp ? a.threads : 1;
  opt.sentinel = a.sentinel;
  const auto res = resilience::SalvageDecode<T>(stream, opt);
  const resilience::DamageReport& r = res.report;
  if (!a.report.empty()) {
    const std::string json = r.ToJson();
    WriteFile(a.report, json.data(), json.size());
  }
  if (!r.usable) {
    std::fprintf(stderr, "salvage failed: %s\n", r.error.c_str());
    return 3;
  }
  WriteFile(a.output, res.data.data(), res.data.size() * sizeof(T));
  std::printf("salvaged %zu elements: %llu recovered, %llu mu-filled, "
              "%llu lost (of %llu blocks)%s\n",
              res.data.size(),
              static_cast<unsigned long long>(r.blocks_recovered),
              static_cast<unsigned long long>(r.blocks_mu_filled),
              static_cast<unsigned long long>(r.blocks_lost),
              static_cast<unsigned long long>(r.num_blocks),
              r.clean ? "" : " -- stream was damaged");
  return r.clean ? 0 : 3;
}

// One --field spec for pack: NAME:PATH[:f32|f64] (dtype defaults to -t).
struct PackField {
  std::string name;
  std::string path;
  DataType dtype = DataType::kFloat32;
};

PackField ParsePackField(const std::string& spec, const std::string& dt) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos || c1 == 0 || c1 + 1 >= spec.size()) {
    Usage("--field expects NAME:PATH[:f32|f64]");
  }
  PackField f;
  f.name = spec.substr(0, c1);
  std::string rest = spec.substr(c1 + 1);
  std::string dtype = dt;
  const std::size_t c2 = rest.rfind(':');
  if (c2 != std::string::npos &&
      (rest.substr(c2 + 1) == "f32" || rest.substr(c2 + 1) == "f64")) {
    dtype = rest.substr(c2 + 1);
    rest = rest.substr(0, c2);
  }
  if (rest.empty()) Usage("--field expects NAME:PATH[:f32|f64]");
  f.path = rest;
  f.dtype = dtype == "f64" ? DataType::kFloat64 : DataType::kFloat32;
  return f;
}

template <typename T>
void PackAppend(ContainerWriter& w, std::uint32_t id, const ByteBuffer& raw,
                std::uint64_t timesteps, std::uint64_t ept, int threads) {
  std::vector<T> data(static_cast<std::size_t>(ept));
  ByteCursor cur(raw);
  for (std::uint64_t t = 0; t < timesteps; ++t) {
    cur.ReadSpan(std::span<T>(data));
    w.AppendTimestep<T>(id, data, threads);
  }
}

int DoPack(const Args& a) {
  ContainerWriter w;
  for (const std::string& spec : a.fields) {
    const PackField f = ParsePackField(spec, a.dtype);
    const std::size_t elem =
        f.dtype == DataType::kFloat32 ? sizeof(float) : sizeof(double);
    const ByteBuffer raw = ReadFile(f.path);
    if (raw.size() % elem != 0) {
      Usage((f.path + ": size is not a multiple of the element size")
                .c_str());
    }
    const std::uint64_t total = raw.size() / elem;
    if (total == 0 || total % a.timesteps != 0) {
      Usage((f.path + ": element count does not split into --timesteps")
                .c_str());
    }
    const std::uint64_t ept = total / a.timesteps;
    ContainerWriter::FieldSpec spec_out;
    spec_out.name = f.name;
    spec_out.params.mode = a.Mode();
    spec_out.params.error_bound = a.error_bound;
    spec_out.params.block_size = a.block_size;
    spec_out.params.integrity = a.integrity;
    spec_out.elements_per_timestep = ept;
    spec_out.chunk_elements = a.chunk;
    const std::uint32_t id = w.AddField(spec_out, f.dtype);
    if (f.dtype == DataType::kFloat32) {
      PackAppend<float>(w, id, raw, a.timesteps, ept, a.threads);
    } else {
      PackAppend<double>(w, id, raw, a.timesteps, ept, a.threads);
    }
  }
  const ByteBuffer out = w.Finish();
  WriteFile(a.output, out.data(), out.size());
  std::printf("packed %zu field(s) x %llu timestep(s) -> %zu bytes\n",
              a.fields.size(), static_cast<unsigned long long>(a.timesteps),
              out.size());
  return 0;
}

template <typename T>
int DoUnpackField(const Args& a, const ContainerReader& r,
                  std::uint32_t field) {
  const ContainerField& f = r.field(field);
  const std::uint64_t first = a.has_range ? a.first : 0;
  const std::uint64_t count =
      a.has_range ? a.count : f.elements_per_timestep;
  std::vector<T> out(static_cast<std::size_t>(count));
  r.DecompressRange<T>(field, a.timestep, first, std::span<T>(out),
                       a.threads);
  WriteFile(a.output, out.data(), out.size() * sizeof(T));
  std::printf("wrote %zu %s values (field %s, timestep %llu, first %llu)\n",
              out.size(),
              f.dtype == DataType::kFloat32 ? "float32" : "float64",
              f.name.c_str(), static_cast<unsigned long long>(a.timestep),
              static_cast<unsigned long long>(first));
  return 0;
}

int DoUnpack(const Args& a) {
  const ByteBuffer bytes = ReadFile(a.input);
  const ContainerReader r(bytes);
  std::uint32_t field = 0;
  if (!a.fields.empty()) {
    const auto found = r.FindField(a.fields.front());
    if (!found) {
      std::fprintf(stderr, "szx error: no field named %s\n",
                   a.fields.front().c_str());
      return 3;
    }
    field = *found;
  } else if (r.num_fields() != 1) {
    Usage("--field NAME required for multi-field containers");
  }
  if (a.has_range && a.count == 0) Usage("--first needs a nonzero --count");
  return r.field(field).dtype == DataType::kFloat32
             ? DoUnpackField<float>(a, r, field)
             : DoUnpackField<double>(a, r, field);
}

int DoQuery(const Args& a) {
  const ByteBuffer bytes = ReadFile(a.input);
  const ContainerReader r(bytes);
  // Checksum every chunk so damage shows up in the directory listing (and
  // in the exit code) without decoding anything.
  std::vector<std::uint64_t> damaged;
  for (std::uint64_t e = 0; e < r.num_entries(); ++e) {
    if (!r.VerifyChunk(e)) damaged.push_back(e);
  }
  if (a.json) {
    std::string os = "{\"fields\":[";
    for (std::uint32_t i = 0; i < r.num_fields(); ++i) {
      const ContainerField& f = r.field(i);
      if (i > 0) os += ",";
      os += "{\"name\":\"" + f.name + "\",\"dtype\":\"";
      os += f.dtype == DataType::kFloat32 ? "f32" : "f64";
      os += "\",\"elements_per_timestep\":" +
            std::to_string(f.elements_per_timestep) +
            ",\"timesteps\":" + std::to_string(f.timesteps) +
            ",\"chunk_elements\":" + std::to_string(f.chunk_elements) +
            ",\"chunks_per_timestep\":" +
            std::to_string(f.chunks_per_timestep) +
            ",\"first_entry\":" + std::to_string(f.first_entry) + "}";
    }
    os += "],\"entries\":" + std::to_string(r.num_entries()) +
          ",\"damaged_entries\":[";
    for (std::size_t i = 0; i < damaged.size(); ++i) {
      if (i > 0) os += ",";
      os += std::to_string(damaged[i]);
    }
    os += "]}\n";
    std::fputs(os.c_str(), stdout);
  } else {
    std::printf("szx container v3: %zu field(s), %llu chunk(s)\n",
                static_cast<std::size_t>(r.num_fields()),
                static_cast<unsigned long long>(r.num_entries()));
    for (std::uint32_t i = 0; i < r.num_fields(); ++i) {
      const ContainerField& f = r.field(i);
      std::printf("  %-16s %s  %llu elem/ts x %llu ts, chunk %llu "
                  "(%llu/ts), entries [%llu, %llu)\n",
                  f.name.c_str(),
                  f.dtype == DataType::kFloat32 ? "f32" : "f64",
                  static_cast<unsigned long long>(f.elements_per_timestep),
                  static_cast<unsigned long long>(f.timesteps),
                  static_cast<unsigned long long>(f.chunk_elements),
                  static_cast<unsigned long long>(f.chunks_per_timestep),
                  static_cast<unsigned long long>(f.first_entry),
                  static_cast<unsigned long long>(
                      f.first_entry +
                      f.timesteps * f.chunks_per_timestep));
    }
    if (damaged.empty()) {
      std::printf("  all chunk checksums OK\n");
    } else {
      std::printf("  %zu DAMAGED chunk(s):", damaged.size());
      for (const std::uint64_t e : damaged) std::printf(" %llu",
          static_cast<unsigned long long>(e));
      std::printf("\n");
    }
  }
  return damaged.empty() ? 0 : 3;
}

int DoVerify(const Args& a) {
  const ByteBuffer raw = ReadFile(a.input);
  ByteBuffer stream = ReadFile(a.compressed);
  const std::size_t stored_bytes = stream.size();
  if (hybrid::IsHybridStream(stream)) {
    stream = hybrid::Unwrap(stream);
  }
  const Header h = PeekHeader(stream);
  if (h.dtype != static_cast<std::uint8_t>(DataType::kFloat32)) {
    Usage("verify currently expects float32 data");
  }
  std::vector<float> data(raw.size() / sizeof(float));
  ByteCursor(raw).ReadSpan(std::span<float>(data));
  const auto recon = Decompress<float>(stream);
  if (recon.size() != data.size()) Usage("element count mismatch");
  const auto d = metrics::ComputeDistortion<float>(data, recon);
  std::printf("max err  %.6g (bound %.6g)  %s\n", d.max_abs_error,
              h.error_bound_abs,
              d.max_abs_error <= h.error_bound_abs ? "OK" : "VIOLATED");
  std::printf("PSNR     %.2f dB\n", d.psnr_db);
  std::printf("ratio    %.3f\n",
              static_cast<double>(raw.size()) /
                  static_cast<double>(stored_bytes));
  return d.max_abs_error <= h.error_bound_abs ? 0 : 3;
}

// ---------------------------------------------------------------------------
// `client`: submit one job to a running szx_serve daemon (docs/serve.md).

serve::Opcode ParseClientOp(const std::string& op) {
  if (op == "ping") return serve::Opcode::kPing;
  if (op == "compress") return serve::Opcode::kCompress;
  if (op == "decompress") return serve::Opcode::kDecompress;
  if (op == "salvage") return serve::Opcode::kSalvage;
  if (op == "query") return serve::Opcode::kQuery;
  Usage("--op must be ping, compress, decompress, salvage or query");
}

// Splits a report+data response body, prints/saves the report, and writes
// the payload to -o.  Returns 0 for kOk, 3 for anything degraded.
int HandleReportAndData(const Args& a, const serve::ClientResponse& rsp) {
  const serve::ReportAndData split = serve::SplitReportAndData(rsp.body);
  if (!a.report.empty()) {
    WriteFile(a.report, split.report.data(), split.report.size());
  } else {
    std::fprintf(stderr, "%s\n", split.report.c_str());
  }
  if (!a.output.empty()) {
    WriteFile(a.output, split.data.data(), split.data.size());
  }
  return rsp.header.status == serve::Status::kOk ? 0 : 3;
}

int DoClient(const Args& a) {
  if (a.port < 0) Usage("client requires --port");
  const serve::Opcode op = ParseClientOp(a.op);
  if (op != serve::Opcode::kPing && a.input.empty()) {
    Usage(("--op " + a.op + " requires -i").c_str());
  }

  ByteBuffer body;
  switch (op) {
    case serve::Opcode::kPing:
      if (!a.input.empty()) body = ReadFile(a.input);
      break;
    case serve::Opcode::kCompress: {
      serve::CompressSpec spec;
      spec.dtype = a.dtype == "f64" ? DataType::kFloat64 : DataType::kFloat32;
      spec.mode = a.Mode();
      spec.integrity = a.integrity ? 1 : 0;
      spec.block_size = a.block_size;
      spec.error_bound = a.error_bound;
      serve::AppendCompressSpec(body, spec);
      const ByteBuffer raw = ReadFile(a.input);
      ByteWriter(body).WriteBytes(raw.data(), raw.size());
      break;
    }
    case serve::Opcode::kDecompress:
    case serve::Opcode::kSalvage:
      body = ReadFile(a.input);
      break;
    case serve::Opcode::kQuery: {
      serve::QuerySpec spec;
      spec.field = a.field_index;
      spec.timestep = a.timestep;
      serve::AppendQuerySpec(body, spec);
      const ByteBuffer container = ReadFile(a.input);
      ByteWriter(body).WriteBytes(container.data(), container.size());
      break;
    }
  }

  const int fd = servenet::ConnectTcp(
      a.host, static_cast<std::uint16_t>(a.port));
  if (fd < 0) {
    std::fprintf(stderr, "szx client: cannot connect to %s:%d: %s\n",
                 a.host.c_str(), a.port, std::strerror(errno));
    return 4;
  }
  servenet::FdTransport transport(fd);
  serve::Client client(transport);

  serve::ClientResponse rsp;
  try {
    rsp = client.Call(op, body, a.deadline_ms,
                      a.no_degrade ? serve::kFlagNoDegrade : 0);
  } catch (const serve::TransportError& e) {
    std::fprintf(stderr, "szx client: transport error: %s\n", e.what());
    return 4;
  }

  std::fprintf(stderr, "status %s", serve::StatusName(rsp.header.status));
  if (rsp.header.status == serve::Status::kBusy) {
    std::fprintf(stderr, " (retry in %u ms)", rsp.header.info);
  }
  if ((rsp.header.flags & serve::kFlagBodyDamaged) != 0) {
    std::fprintf(stderr, " (request body was damaged in transit)");
  }
  std::fprintf(stderr, "\n");

  switch (rsp.header.status) {
    case serve::Status::kOk:
      // Salvage and query answer report+data even on full success.
      if (op == serve::Opcode::kSalvage || op == serve::Opcode::kQuery) {
        return HandleReportAndData(a, rsp);
      }
      if (!a.output.empty()) {
        WriteFile(a.output, rsp.body.data(), rsp.body.size());
      }
      return 0;
    case serve::Status::kPartial:
      return HandleReportAndData(a, rsp);
    default:
      // Error statuses carry a JSON reason (or a report) in the body.
      if (!rsp.body.empty()) {
        const std::string reason(
            // szx-lint: allow(reinterpret-cast) -- response reason text is printable bytes at the tool boundary, not stream parsing
            reinterpret_cast<const char*>(rsp.body.data()), rsp.body.size());
        std::fprintf(stderr, "%s\n", reason.c_str());
      }
      return 3;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  try {
    const Args a = Parse(argc, argv);
    ApplyKernelChoice(a);
    if (cmd == "compress") {
      if (a.input.empty() || a.output.empty()) Usage("-i and -o required");
      return a.dtype == "f32" ? DoCompress<float>(a) : DoCompress<double>(a);
    }
    if (cmd == "decompress") {
      if (a.input.empty() || a.output.empty()) Usage("-i and -o required");
      return DoDecompress(a);
    }
    if (cmd == "info") {
      if (a.input.empty()) Usage("-i required");
      return DoInfo(a);
    }
    if (cmd == "verify") {
      if (a.compressed.empty()) Usage("-z required");
      if (!a.input.empty()) return DoVerify(a);
      // Integrity-only mode: no raw reference needed.
      ByteBuffer stream = ReadFile(a.compressed);
      if (hybrid::IsHybridStream(stream)) stream = hybrid::Unwrap(stream);
      const Header h = PeekHeader(stream);
      return h.dtype == static_cast<std::uint8_t>(DataType::kFloat32)
                 ? DoVerifyIntegrity<float>(a, stream)
                 : DoVerifyIntegrity<double>(a, stream);
    }
    if (cmd == "salvage") {
      if (a.input.empty() || a.output.empty()) Usage("-i and -o required");
      const ByteBuffer stream = ReadFile(a.input);
      // Dtype dispatch must survive a damaged header: peek leniently and
      // fall back to the -t flag when even the header is gone.
      bool is_f64 = a.dtype == "f64";
      try {
        is_f64 = PeekHeader(stream).dtype ==
                 static_cast<std::uint8_t>(DataType::kFloat64);
      } catch (const Error&) {
      }
      return is_f64 ? DoSalvage<double>(a, stream)
                    : DoSalvage<float>(a, stream);
    }
    if (cmd == "tune") {
      if (a.input.empty()) Usage("-i required");
      return a.dtype == "f32" ? DoTune<float>(a) : DoTune<double>(a);
    }
    if (cmd == "pack") {
      if (a.output.empty()) Usage("-o required");
      if (a.fields.empty()) Usage("at least one --field NAME:PATH required");
      return DoPack(a);
    }
    if (cmd == "unpack") {
      if (a.input.empty() || a.output.empty()) Usage("-i and -o required");
      return DoUnpack(a);
    }
    if (cmd == "query") {
      if (a.input.empty()) Usage("-i required");
      return DoQuery(a);
    }
    if (cmd == "validate") {
      if (a.input.empty()) Usage("-i required");
      return a.dtype == "f32" ? DoValidate<float>(a)
                              : DoValidate<double>(a);
    }
    if (cmd == "client") {
      return DoClient(a);
    }
    Usage(("unknown command " + cmd).c_str());
  } catch (const IoError& e) {
    std::fprintf(stderr, "szx io error: %s\n", e.what());
    return 4;
  } catch (const Error& e) {
    std::fprintf(stderr, "szx error: %s\n", e.what());
    return 3;
  }
}
