// szx_datagen -- writes the synthetic scientific datasets to disk as flat
// little-endian float32 arrays (the SDRBench convention), so the CLI and
// external tools can be exercised on realistic files.
//
//   szx_datagen list
//   szx_datagen generate -a miranda -f density [-s 1.0] -o density.f32
//   szx_datagen generate -a nyx --all [-s 0.5] -o-dir ./nyx/
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "data/datasets.hpp"

namespace {

using namespace szx;

[[noreturn]] void Usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(
      stderr,
      "usage:\n"
      "  szx_datagen list\n"
      "  szx_datagen generate -a APP -f FIELD [-s SCALE] -o OUT.f32\n"
      "  szx_datagen generate -a APP --all [-s SCALE] -o-dir DIR\n"
      "apps: cesm hurricane miranda nyx qmcpack scale-letkf\n");
  std::exit(2);
}

data::App ParseApp(const std::string& name) {
  if (name == "cesm") return data::App::kCesm;
  if (name == "hurricane") return data::App::kHurricane;
  if (name == "miranda") return data::App::kMiranda;
  if (name == "nyx") return data::App::kNyx;
  if (name == "qmcpack") return data::App::kQmcpack;
  if (name == "scale-letkf") return data::App::kScaleLetkf;
  Usage(("unknown app " + name).c_str());
}

void WriteField(const data::Field& f, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) Usage(("cannot open " + path + " for writing").c_str());
  // szx-lint: allow(reinterpret-cast) -- ofstream::write requires char*; raw dataset bytes are only written
  out.write(reinterpret_cast<const char*>(f.values.data()),
            static_cast<std::streamsize>(f.size_bytes()));
  if (!out) Usage(("cannot write " + path).c_str());
  std::string dims;
  for (const auto d : f.dims) {
    dims += (dims.empty() ? "" : "x") + std::to_string(d);
  }
  std::printf("%s: %s (%s, %.1f MB)\n", path.c_str(), f.name.c_str(),
              dims.c_str(), static_cast<double>(f.size_bytes()) / 1e6);
}

int DoList() {
  for (const data::App app : data::AllApps()) {
    const auto dims = data::GridDims(app, 1.0);
    std::string dim_str;
    for (const auto d : dims) {
      dim_str += (dim_str.empty() ? "" : "x") + std::to_string(d);
    }
    std::printf("%-12s %-14s fields:", data::AppName(app), dim_str.c_str());
    for (const auto& f : data::FieldNames(app)) {
      std::printf(" %s", f.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string cmd = argv[1];
  if (cmd == "list") return DoList();
  if (cmd != "generate") Usage(("unknown command " + cmd).c_str());

  std::string app_name, field, out, out_dir;
  double scale = 1.0;
  bool all = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) Usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "-a") app_name = next();
    else if (arg == "-f") field = next();
    else if (arg == "-s") scale = std::atof(next().c_str());
    else if (arg == "-o") out = next();
    else if (arg == "-o-dir") out_dir = next();
    else if (arg == "--all") all = true;
    else Usage(("unknown flag " + arg).c_str());
  }
  if (app_name.empty()) Usage("-a required");
  const data::App app = ParseApp(app_name);
  try {
    if (all) {
      if (out_dir.empty()) Usage("-o-dir required with --all");
      for (const auto& name : data::FieldNames(app)) {
        const data::Field f = data::GenerateField(app, name, scale);
        WriteField(f, out_dir + "/" + name + ".f32");
      }
      return 0;
    }
    if (field.empty() || out.empty()) Usage("-f and -o required");
    WriteField(data::GenerateField(app, field, scale), out);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
