// szx_serve -- TCP daemon exposing the szx-serve job protocol
// (docs/serve.md) on a loopback socket.
//
//   szx_serve [--port N] [--workers N] [--queue N] [--window N]
//             [--max-body BYTES] [--no-degrade] [--max-conns N]
//
// Prints exactly one line `szx-serve listening on PORT` to stdout once the
// socket is bound (PORT is kernel-assigned when --port is 0 or omitted), so
// scripts and tests can parse the port without racing the bind.  SIGINT /
// SIGTERM trigger a graceful stop: in-flight jobs finish, parked
// connections are answered kShuttingDown, then the process exits 0.
//
// Exit codes: 0 clean shutdown, 2 usage error, 4 cannot bind/listen.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve_net.hpp"

namespace {

using namespace szx;

// The signal handler must unblock accept().  It uses shutdown(2)
// (async-signal-safe per POSIX.1-2008), NOT close(2): shutdown wakes the
// blocked accept with EINVAL while keeping the fd number reserved, so main
// stays the one and only closer and a racing close can never hit an fd
// already recycled by a live connection socket.  volatile sig_atomic_t is
// the C signal idiom, not an atomics site -- no inter-thread ordering is
// built on it.
volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_listen_fd = -1;

extern "C" void HandleStopSignal(int) {
  g_stop = 1;
  const int fd = g_listen_fd;
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

[[noreturn]] void Usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: szx_serve [--port N] [--workers N] [--queue N]"
               " [--window N] [--max-body BYTES] [--no-degrade]"
               " [--max-conns N]\n"
               "exit codes: 0 clean shutdown, 2 usage, 4 cannot bind\n");
  std::exit(2);
}

struct DaemonArgs {
  std::uint16_t port = 0;
  std::uint64_t max_conns = 0;  // 0 = serve until a stop signal
  serve::ServerConfig config;
};

DaemonArgs Parse(int argc, char** argv) {
  DaemonArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--port") {
      const long v = std::strtol(next(), nullptr, 10);
      if (v < 0 || v > 65535) Usage("--port must be 0..65535");
      a.port = static_cast<std::uint16_t>(v);
    } else if (arg == "--workers") {
      const long v = std::strtol(next(), nullptr, 10);
      if (v < 1) Usage("--workers must be >= 1");
      a.config.workers = static_cast<std::uint32_t>(v);
    } else if (arg == "--queue") {
      const long v = std::strtol(next(), nullptr, 10);
      if (v < 1) Usage("--queue must be >= 1");
      a.config.queue_capacity = static_cast<std::uint32_t>(v);
    } else if (arg == "--window") {
      const long v = std::strtol(next(), nullptr, 10);
      if (v < 1) Usage("--window must be >= 1");
      a.config.max_inflight_per_conn = static_cast<std::uint32_t>(v);
    } else if (arg == "--max-body") {
      const long long v = std::strtoll(next(), nullptr, 10);
      if (v < 1) Usage("--max-body must be >= 1");
      a.config.max_body_bytes = static_cast<std::uint64_t>(v);
    } else if (arg == "--no-degrade") {
      a.config.allow_degrade = false;
    } else if (arg == "--max-conns") {
      a.max_conns = std::strtoull(next(), nullptr, 10);
    } else {
      Usage(("unknown flag " + arg).c_str());
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const DaemonArgs a = Parse(argc, argv);

  std::uint16_t port = 0;
  const int listen_fd = servenet::ListenTcp(a.port, port);
  if (listen_fd < 0) {
    std::fprintf(stderr, "szx_serve: cannot listen on port %u: %s\n",
                 static_cast<unsigned>(a.port), std::strerror(errno));
    return 4;
  }
  g_listen_fd = listen_fd;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGPIPE, SIG_IGN);  // a dead peer is a TransportError, not death

  std::printf("szx-serve listening on %u\n", static_cast<unsigned>(port));
  std::fflush(stdout);

  serve::Server server(a.config);
  std::vector<std::thread> conns;
  std::uint64_t served = 0;
  while (a.max_conns == 0 || served < a.max_conns) {
    const int fd = servenet::AcceptConn(listen_fd);
    if (fd < 0) break;  // listen socket shut down by a signal (or fatal)
    ++served;
    conns.emplace_back([&server, fd] {
      servenet::FdTransport transport(fd);
      server.ServeConnection(transport);
    });
  }

  // Main is the sole closer of the listen fd.  Publish -1 first so a
  // handler firing from here on skips its shutdown() instead of touching
  // an fd number the kernel may be about to recycle.
  g_listen_fd = -1;
  ::close(listen_fd);

  // Signal stop: force-close live connections so the process exits
  // promptly.  --max-conns drain: let every accepted connection run to its
  // natural end before stopping the pool.
  const bool forced = g_stop != 0;
  if (forced) {
    server.Stop();
    for (std::thread& t : conns) t.join();
  } else {
    for (std::thread& t : conns) t.join();
    server.Stop();
  }
  const serve::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "szx_serve: served %llu connections, %llu requests "
               "(%llu ok, %llu partial, %llu shed)\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.completed_ok),
               static_cast<unsigned long long>(stats.completed_partial),
               static_cast<unsigned long long>(stats.shed_busy));
  return 0;
}
