// Command-line driver for szx-lint.  Usage:
//
//   szx_lint [--list-rules] [--json] <file-or-dir>...
//
// Directories are walked recursively for C++ sources; findings print as
// `path:line: [rule] message` (or one JSON document with --json, for CI
// annotation) and the exit status is the number of findings clamped to 1,
// so ctest can gate on it.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "linter.hpp"

namespace fs = std::filesystem;

namespace {

bool IsCppSource(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h" ||
         ext == ".cxx" || ext == ".hxx";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : szx::lint::Rules()) {
        std::cout << r.name << ": " << r.summary << "\n";
      }
      return 0;
    }
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: szx_lint [--list-rules] [--json] "
                   "<file-or-dir>...\n";
      return 0;
    }
    roots.push_back(arg);
  }
  if (roots.empty()) {
    std::cerr << "szx_lint: no inputs (see --help)\n";
    return 2;
  }

  std::vector<std::string> files;
  for (const std::string& root : roots) {
    fs::path p(root);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (entry.is_regular_file() && IsCppSource(entry.path())) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.string());
    } else {
      std::cerr << "szx_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<szx::lint::Finding> all;
  for (const std::string& f : files) {
    try {
      for (auto& finding : szx::lint::LintFile(f)) {
        if (!json) std::cout << szx::lint::FormatFinding(finding) << "\n";
        all.push_back(std::move(finding));
      }
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
  }
  if (json) std::cout << szx::lint::RenderJson(all);
  if (!all.empty()) {
    std::cerr << "szx_lint: " << all.size() << " finding(s) in "
              << files.size() << " file(s)\n";
    return 1;
  }
  if (!json) std::cout << "szx_lint: clean (" << files.size() << " files)\n";
  return 0;
}
