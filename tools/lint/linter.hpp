// szx-lint: a token-level invariant checker for this repository.
//
// The rules encode the project's stream-safety discipline: every byte that
// comes from a compressed stream must flow through szx::core::ByteCursor
// (or the audited primitives in stream.hpp / bitops.hpp), and no allocation
// may be sized directly from an unvalidated header field.  The checker is
// deliberately lexical -- no libclang -- so it runs in milliseconds as a
// ctest and never needs a compiler toolchain beyond the one building the
// repo.  Precision comes from the narrow code idiom the rules target plus
// an explicit, audited escape hatch:
//
//   // szx-lint: allow(<rule>) -- <reason>
//
// A directive with no `-- reason` text is itself a violation, and so is a
// directive that suppresses nothing (so stale allows rot loudly).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace szx::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string_view name;
  std::string_view summary;
};

/// Stable list of every rule the checker knows (including the directive
/// hygiene pseudo-rules), for --list-rules and the docs.
const std::vector<RuleInfo>& Rules();

/// True for files whose whole purpose is raw byte manipulation; all rules
/// are skipped there (byte_cursor.hpp, stream.hpp, bitops.hpp).
bool IsAllowlisted(std::string_view path);

/// True for paths in a strict zone -- code that parses adversarially
/// damaged bytes (src/resilience/) or terminates untrusted network input
/// (src/serve/): the allowlist bypass does not apply there and allow()
/// directives are refused rather than honored.
bool IsStrictZone(std::string_view path);

/// Lints one translation unit given as text.  `path` is used for
/// diagnostics and the allowlist check.
std::vector<Finding> LintText(std::string_view path, std::string_view text);

/// Reads and lints a file on disk.  Throws std::runtime_error if the file
/// cannot be read.
std::vector<Finding> LintFile(const std::string& path);

/// Formats a finding as "path:line: [rule] message".
std::string FormatFinding(const Finding& f);

/// Renders findings as a machine-readable JSON document for CI annotation:
///   {"version": 1, "findings": [{"file", "line", "rule", "message"}, ...],
///    "count": N}
/// Deterministic field order, RFC 8259 string escaping; the self-test in
/// tests/lint validates the schema.
std::string RenderJson(const std::vector<Finding>& findings);

}  // namespace szx::lint
