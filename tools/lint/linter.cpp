#include "linter.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace szx::lint {
namespace {

constexpr std::array<std::string_view, 4> kAllowlist = {
    "byte_cursor.hpp", "stream.hpp", "bitops.hpp", "arena.hpp"};

// Header fields that arrive from an untrusted stream.  An allocation sized
// by one of these without CheckedAlloc is the bug class this repo has been
// bitten by (resize-before-validation).
constexpr std::array<std::string_view, 11> kHeaderFields = {
    "num_elements",  "num_blocks",   "num_constant",     "payload_bytes",
    "original_bytes", "num_unpredictable", "num_regression", "frame_bytes",
    "block_bits",    "zsize",        "original_size"};

// Substrings that mark a cast argument as size-like for unchecked-narrow.
constexpr std::array<std::string_view, 5> kSizeHints = {
    "size", "bytes", "count", "offset", "length"};

constexpr std::array<std::string_view, 8> kNarrowTypes = {
    "std::uint8_t",  "std::uint16_t", "std::uint32_t", "uint8_t",
    "uint16_t",      "uint32_t",      "unsigned char", "unsigned short"};

const std::vector<RuleInfo> kRules = {
    {"raw-memcpy",
     "memcpy/memmove on stream bytes; use ByteCursor or ByteWriter"},
    {"reinterpret-cast",
     "reinterpret_cast outside the audited byte primitives"},
    {"ptr-arith",
     ".data() + offset pointer arithmetic; use span subspan or ByteCursor"},
    {"unchecked-alloc",
     "allocation sized by an unvalidated stream header field without "
     "CheckedAlloc"},
    {"unchecked-narrow",
     "narrowing static_cast of a size-like value without CheckedNarrow"},
    {"simd-mem",
     "raw SIMD load/store/gather intrinsic; each one must explain its "
     "bounds guarantee"},
    {"strict-zone",
     "allow directive inside src/resilience/, where suppressions are "
     "refused outright"},
    {"unexplained-allow", "allow directive without a `-- reason`"},
    {"unused-allow", "allow directive that suppresses nothing"},
    {"unknown-rule", "allow directive naming a rule that does not exist"},
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsLintableRule(std::string_view name) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return r.name == name; });
}

// ---------------------------------------------------------------------------
// Pass 1: strip comments and string/char literals so the rule scan only sees
// code, while collecting comment text for directive parsing.

struct Comment {
  int line = 0;           // line the comment starts on
  bool code_before = false;  // non-whitespace code earlier on that line
  std::string text;
};

struct Stripped {
  std::string code;  // input with comments/literal contents blanked
  std::vector<Comment> comments;
};

Stripped Strip(std::string_view in) {
  Stripped out;
  out.code.assign(in.size(), ' ');
  int line = 1;
  bool code_on_line = false;
  std::size_t i = 0;
  const std::size_t n = in.size();
  auto put = [&](std::size_t at, char c) { out.code[at] = c; };

  while (i < n) {
    const char c = in[i];
    if (c == '\n') {
      put(i, '\n');
      ++line;
      code_on_line = false;
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      Comment cm;
      cm.line = line;
      cm.code_before = code_on_line;
      std::size_t j = i + 2;
      while (j < n && in[j] != '\n') ++j;
      cm.text.assign(in.substr(i + 2, j - i - 2));
      out.comments.push_back(std::move(cm));
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      Comment cm;
      cm.line = line;
      cm.code_before = code_on_line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(in[j] == '*' && in[j + 1] == '/')) {
        if (in[j] == '\n') {
          put(j, '\n');
          ++line;
        }
        ++j;
      }
      cm.text.assign(in.substr(i + 2, j - (i + 2)));
      out.comments.push_back(std::move(cm));
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(in[i - 1]))) {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && in[j] != '(') delim.push_back(in[j++]);
      const std::string close = ")" + delim + "\"";
      const std::size_t end = in.find(close, j);
      const std::size_t stop = end == std::string_view::npos
                                   ? n
                                   : end + close.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (in[k] == '\n') {
          put(k, '\n');
          ++line;
        }
      }
      code_on_line = true;
      i = stop;
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      put(i, '"');
      std::size_t j = i + 1;
      while (j < n && in[j] != '"') {
        if (in[j] == '\\' && j + 1 < n) ++j;
        if (in[j] == '\n') {
          put(j, '\n');
          ++line;
        }
        ++j;
      }
      if (j < n) put(j, '"');
      code_on_line = true;
      i = j + 1;
      continue;
    }
    // Char literal (but not a digit separator like 1'000'000).
    if (c == '\'' && (i == 0 || !IsIdentChar(in[i - 1]))) {
      put(i, '\'');
      std::size_t j = i + 1;
      while (j < n && in[j] != '\'') {
        if (in[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (j < n) put(j, '\'');
      code_on_line = true;
      i = j + 1;
      continue;
    }
    put(i, c);
    if (!std::isspace(static_cast<unsigned char>(c))) code_on_line = true;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allow directives.

struct Directive {
  int comment_line = 0;
  int target_line = 0;
  std::string rule;
  bool has_reason = false;
  bool used = false;
  bool parse_error = false;
};

std::vector<Directive> ParseDirectives(const std::vector<Comment>& comments) {
  std::vector<Directive> out;
  for (const Comment& cm : comments) {
    // A directive must be the entire comment: `// szx-lint: allow(...) --
    // reason`.  Prose that merely mentions the syntax (docs, this file) is
    // ignored because the trimmed text does not start with the marker or
    // lacks an allow clause.
    std::string_view t(cm.text);
    const std::size_t first = t.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;
    t.remove_prefix(first);
    constexpr std::string_view kMarker = "szx-lint:";
    if (t.substr(0, kMarker.size()) != kMarker) continue;
    const std::string_view rest = t.substr(kMarker.size());
    if (rest.find("allow") == std::string_view::npos) continue;
    Directive d;
    d.comment_line = cm.line;
    d.target_line = cm.code_before ? cm.line : cm.line + 1;
    const std::size_t open = rest.find("allow(");
    const std::size_t close = rest.find(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close <= open + 6) {
      d.parse_error = true;
      out.push_back(std::move(d));
      continue;
    }
    std::string rule(rest.substr(open + 6, close - (open + 6)));
    // Trim whitespace around the rule name.
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front())))
      rule.erase(rule.begin());
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back())))
      rule.pop_back();
    d.rule = std::move(rule);
    const std::size_t dash = rest.find("--", close);
    if (dash != std::string_view::npos) {
      const std::string_view reason = rest.substr(dash + 2);
      d.has_reason = reason.find_first_not_of(" \t") != std::string_view::npos;
    }
    out.push_back(std::move(d));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scanning helpers over the stripped code.

std::vector<std::size_t> LineStarts(std::string_view code) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int LineOf(std::size_t pos, const std::vector<std::size_t>& starts) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

// Next occurrence of `needle` as a whole identifier, starting at `from`.
std::size_t FindToken(std::string_view code, std::string_view needle,
                      std::size_t from) {
  while (true) {
    const std::size_t at = code.find(needle, from);
    if (at == std::string_view::npos) return at;
    const bool left_ok = at == 0 || !IsIdentChar(code[at - 1]);
    const std::size_t end = at + needle.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return at;
    from = at + 1;
  }
}

std::size_t SkipSpace(std::string_view code, std::size_t i) {
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])))
    ++i;
  return i;
}

// Extracts the balanced-delimiter region starting at the opener at `open`
// (which must be '(', '[', '{', or '<').  Returns the contents, without the
// delimiters; empty optional-ish (npos semantics) on imbalance.
std::string_view Balanced(std::string_view code, std::size_t open,
                          std::size_t* end_out) {
  const char opener = code[open];
  const char closer = opener == '(' ? ')'
                      : opener == '[' ? ']'
                      : opener == '{' ? '}'
                                      : '>';
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == opener) ++depth;
    else if (code[i] == closer) {
      --depth;
      if (depth == 0) {
        if (end_out != nullptr) *end_out = i;
        return code.substr(open + 1, i - open - 1);
      }
    }
  }
  if (end_out != nullptr) *end_out = std::string_view::npos;
  return {};
}

bool ContainsHeaderField(std::string_view text) {
  return std::any_of(kHeaderFields.begin(), kHeaderFields.end(),
                     [&](std::string_view f) {
                       return FindToken(text, f, 0) != std::string_view::npos;
                     });
}

bool ContainsSizeHint(std::string_view text) {
  return std::any_of(kSizeHints.begin(), kSizeHints.end(),
                     [&](std::string_view h) {
                       return text.find(h) != std::string_view::npos;
                     });
}

struct Scan {
  std::string_view code;
  const std::vector<std::size_t>& lines;
  std::vector<Finding>& out;
  std::string_view path;

  void Add(std::size_t pos, std::string_view rule, std::string msg) {
    out.push_back(
        {std::string(path), LineOf(pos, lines), std::string(rule), std::move(msg)});
  }
};

void ScanMemcpy(Scan& s) {
  for (std::string_view fn : {"memcpy", "memmove"}) {
    for (std::size_t at = FindToken(s.code, fn, 0);
         at != std::string_view::npos;
         at = FindToken(s.code, fn, at + 1)) {
      const std::size_t after = SkipSpace(s.code, at + fn.size());
      if (after < s.code.size() && s.code[after] == '(') {
        s.Add(at, "raw-memcpy",
              std::string(fn) + " call; route stream bytes through "
                                "ByteCursor/ByteWriter instead");
      }
    }
  }
}

void ScanReinterpretCast(Scan& s) {
  for (std::size_t at = FindToken(s.code, "reinterpret_cast", 0);
       at != std::string_view::npos;
       at = FindToken(s.code, "reinterpret_cast", at + 1)) {
    s.Add(at, "reinterpret-cast",
          "reinterpret_cast; only the audited byte primitives may repun "
          "memory");
  }
}

void ScanPtrArith(Scan& s) {
  for (std::size_t at = s.code.find(".data()", 0);
       at != std::string_view::npos; at = s.code.find(".data()", at + 1)) {
    const std::size_t after = SkipSpace(s.code, at + 7);
    if (after < s.code.size() && s.code[after] == '+' &&
        !(after + 1 < s.code.size() && s.code[after + 1] == '+')) {
      s.Add(at, "ptr-arith",
            ".data() + offset arithmetic; use subspan or ByteCursor so the "
            "bound travels with the pointer");
    }
  }
}

void ScanUncheckedAlloc(Scan& s) {
  auto check_args = [&](std::size_t at, std::string_view args) {
    if (ContainsHeaderField(args) &&
        args.find("CheckedAlloc") == std::string_view::npos) {
      s.Add(at, "unchecked-alloc",
            "allocation sized by a stream header field; validate with "
            "ByteCursor::CheckedAlloc first");
    }
  };
  for (std::string_view call : {".resize", ".reserve"}) {
    for (std::size_t at = s.code.find(call, 0);
         at != std::string_view::npos; at = s.code.find(call, at + 1)) {
      const std::size_t open = SkipSpace(s.code, at + call.size());
      if (open >= s.code.size() || s.code[open] != '(') continue;
      check_args(at, Balanced(s.code, open, nullptr));
    }
  }
  // new T[expr]
  for (std::size_t at = FindToken(s.code, "new", 0);
       at != std::string_view::npos;
       at = FindToken(s.code, "new", at + 1)) {
    const std::size_t stop = s.code.find_first_of(";[", at);
    if (stop == std::string_view::npos || s.code[stop] != '[') continue;
    check_args(at, Balanced(s.code, stop, nullptr));
  }
  // std::vector<T> name(expr) / name{expr}
  for (std::size_t at = FindToken(s.code, "vector", 0);
       at != std::string_view::npos;
       at = FindToken(s.code, "vector", at + 1)) {
    std::size_t i = SkipSpace(s.code, at + 6);
    if (i >= s.code.size() || s.code[i] != '<') continue;
    std::size_t close_angle = std::string_view::npos;
    Balanced(s.code, i, &close_angle);
    if (close_angle == std::string_view::npos) continue;
    i = SkipSpace(s.code, close_angle + 1);
    const std::size_t ident_begin = i;
    while (i < s.code.size() && IsIdentChar(s.code[i])) ++i;
    if (i == ident_begin) continue;  // not a declaration
    i = SkipSpace(s.code, i);
    if (i >= s.code.size() || (s.code[i] != '(' && s.code[i] != '{')) continue;
    check_args(at, Balanced(s.code, i, nullptr));
  }
}

void ScanUncheckedNarrow(Scan& s) {
  for (std::size_t at = s.code.find("static_cast", 0);
       at != std::string_view::npos;
       at = s.code.find("static_cast", at + 1)) {
    std::size_t i = SkipSpace(s.code, at + 11);
    if (i >= s.code.size() || s.code[i] != '<') continue;
    std::size_t close_angle = std::string_view::npos;
    std::string type(Balanced(s.code, i, &close_angle));
    if (close_angle == std::string_view::npos) continue;
    // Normalize internal whitespace runs to single spaces.
    std::string norm;
    for (char c : type) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!norm.empty() && norm.back() != ' ') norm.push_back(' ');
      } else {
        norm.push_back(c);
      }
    }
    while (!norm.empty() && norm.back() == ' ') norm.pop_back();
    if (std::find(kNarrowTypes.begin(), kNarrowTypes.end(), norm) ==
        kNarrowTypes.end())
      continue;
    i = SkipSpace(s.code, close_angle + 1);
    if (i >= s.code.size() || s.code[i] != '(') continue;
    const std::string_view args = Balanced(s.code, i, nullptr);
    if (ContainsSizeHint(args) &&
        args.find("CheckedNarrow") == std::string_view::npos) {
      s.Add(at, "unchecked-narrow",
            "narrowing cast of a size-like value; use CheckedNarrow<" + norm +
                "> so truncation throws instead of wrapping");
    }
  }
}

// Flags every _mm* intrinsic whose name contains load/store/stream/gather:
// these move bytes through raw pointers with no bound attached (gathers
// through per-lane indices off a base pointer), so each use must carry an
// explained allow stating why the access stays in bounds
// (src/core/block_stats.cpp and src/core/kernels/kernels_avx2.cpp are the
// exemplars).
void ScanSimdMem(Scan& s) {
  for (std::size_t at = s.code.find("_mm", 0); at != std::string_view::npos;
       at = s.code.find("_mm", at + 1)) {
    if (at > 0 && IsIdentChar(s.code[at - 1])) continue;  // mid-identifier
    std::size_t end = at;
    while (end < s.code.size() && IsIdentChar(s.code[end])) ++end;
    const std::string_view name = s.code.substr(at, end - at);
    if (name.find("load") == std::string_view::npos &&
        name.find("store") == std::string_view::npos &&
        name.find("stream") == std::string_view::npos &&
        name.find("gather") == std::string_view::npos)
      continue;
    s.Add(at, "simd-mem",
          std::string(name) +
              "; raw SIMD memory access needs an allow explaining its "
              "bounds guarantee");
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return kRules; }

bool IsAllowlisted(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  for (const std::string_view base : kAllowlist) {
    if (p == base) return true;
    if (p.size() > base.size() &&
        p.compare(p.size() - base.size(), base.size(), base) == 0 &&
        p[p.size() - base.size() - 1] == '/')
      return true;
  }
  return false;
}

bool IsStrictZone(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  constexpr std::string_view kZone = "src/resilience/";
  return p.find(kZone) != std::string::npos ||
         p.compare(0, std::string_view("resilience/").size(),
                   "resilience/") == 0;
}

std::vector<Finding> LintText(std::string_view path, std::string_view text) {
  std::vector<Finding> findings;
  // The strict zone parses adversarially damaged bytes; no file there may
  // ride the audited-primitives allowlist, even if named like one.
  const bool strict = IsStrictZone(path);
  if (!strict && IsAllowlisted(path)) return findings;

  const Stripped st = Strip(text);
  const std::vector<std::size_t> lines = LineStarts(st.code);
  std::vector<Directive> directives = ParseDirectives(st.comments);

  // A standalone directive targets the next line that has code, so several
  // directives may stack above one statement.
  auto line_has_code = [&](int line) {
    if (line < 1 || line > static_cast<int>(lines.size())) return false;
    const std::size_t begin = lines[line - 1];
    const std::size_t end = line < static_cast<int>(lines.size())
                                ? lines[line]
                                : st.code.size();
    return st.code.find_first_not_of(" \t\r\n", begin) < end;
  };
  const int last_line = static_cast<int>(lines.size());
  for (Directive& d : directives) {
    if (d.target_line == d.comment_line) continue;  // trailing directive
    int t = d.comment_line + 1;
    while (t <= last_line && !line_has_code(t)) ++t;
    d.target_line = t;
  }

  std::vector<Finding> raw;
  Scan scan{st.code, lines, raw, path};
  ScanMemcpy(scan);
  ScanReinterpretCast(scan);
  ScanPtrArith(scan);
  ScanUncheckedAlloc(scan);
  ScanUncheckedNarrow(scan);
  ScanSimdMem(scan);

  // Apply directives: a finding is suppressed by a matching allow on its
  // line (or on the directly preceding comment-only line).
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Directive& d : directives) {
      if (!strict && !d.parse_error && d.rule == f.rule &&
          d.target_line == f.line) {
        d.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) findings.push_back(std::move(f));
  }

  // Directive hygiene.
  for (const Directive& d : directives) {
    if (strict) {
      // Directives are refused wholesale here, so the underlying finding
      // also surfaces (it was never marked used above).
      findings.push_back({std::string(path), d.comment_line, "strict-zone",
                          "allow directives are refused in src/resilience/; "
                          "fix the code instead of suppressing the rule"});
      continue;
    }
    if (d.parse_error) {
      findings.push_back({std::string(path), d.comment_line, "unknown-rule",
                          "malformed szx-lint directive; expected "
                          "`szx-lint: allow(<rule>) -- <reason>`"});
      continue;
    }
    if (!IsLintableRule(d.rule)) {
      findings.push_back({std::string(path), d.comment_line, "unknown-rule",
                          "allow names unknown rule '" + d.rule + "'"});
      continue;
    }
    if (!d.has_reason) {
      findings.push_back({std::string(path), d.comment_line,
                          "unexplained-allow",
                          "allow(" + d.rule +
                              ") has no `-- reason`; every suppression "
                              "must say why it is safe"});
    }
    if (!d.used) {
      findings.push_back({std::string(path), d.comment_line, "unused-allow",
                          "allow(" + d.rule +
                              ") suppresses nothing; delete the stale "
                              "directive"});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("szx-lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return LintText(path, ss.str());
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream ss;
  ss << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return ss.str();
}

}  // namespace szx::lint
