#include "linter.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace szx::lint {
namespace {

constexpr std::array<std::string_view, 5> kAllowlist = {
    "byte_cursor.hpp", "stream.hpp", "bitops.hpp", "arena.hpp", "sync.hpp"};

// Header fields that arrive from an untrusted stream.  An allocation sized
// by one of these without CheckedAlloc is the bug class this repo has been
// bitten by (resize-before-validation).
constexpr std::array<std::string_view, 11> kHeaderFields = {
    "num_elements",  "num_blocks",   "num_constant",     "payload_bytes",
    "original_bytes", "num_unpredictable", "num_regression", "frame_bytes",
    "block_bits",    "zsize",        "original_size"};

// Substrings that mark a cast argument as size-like for unchecked-narrow.
constexpr std::array<std::string_view, 5> kSizeHints = {
    "size", "bytes", "count", "offset", "length"};

constexpr std::array<std::string_view, 8> kNarrowTypes = {
    "std::uint8_t",  "std::uint16_t", "std::uint32_t", "uint8_t",
    "uint16_t",      "uint32_t",      "unsigned char", "unsigned short"};

const std::vector<RuleInfo> kRules = {
    {"raw-memcpy",
     "memcpy/memmove on stream bytes; use ByteCursor or ByteWriter"},
    {"reinterpret-cast",
     "reinterpret_cast outside the audited byte primitives"},
    {"ptr-arith",
     ".data() + offset pointer arithmetic; use span subspan or ByteCursor"},
    {"unchecked-alloc",
     "allocation sized by an unvalidated stream header field without "
     "CheckedAlloc"},
    {"unchecked-narrow",
     "narrowing static_cast of a size-like value without CheckedNarrow"},
    {"simd-mem",
     "raw SIMD load/store/gather intrinsic; each one must explain its "
     "bounds guarantee"},
    {"memory-order",
     "std::memory_order use without an adjacent `// szx-mo:` happens-before "
     "justification"},
    {"implicit-seq-cst",
     "atomic operation with no explicit memory order; spell the order and "
     "justify it with szx-mo"},
    {"naked-lock",
     "direct .lock()/.unlock() on a mutex; use sync::MutexLock RAII"},
    {"condvar-wait",
     "condition-variable wait that does not pass a held MutexLock (or a raw "
     "std::condition_variable declaration; use sync::CondVar)"},
    {"hot-alloc",
     "allocation inside an `// szx-hot` file; hot paths allocate only "
     "through ScratchArena"},
    {"missing-nodiscard",
     "status-returning declaration without [[nodiscard]]"},
    {"stale-mo",
     "szx-mo comment that justifies no memory_order site (or is empty)"},
    {"strict-zone",
     "allow directive inside a strict zone (src/resilience/, src/serve/), "
     "where suppressions are refused outright"},
    {"unexplained-allow", "allow directive without a `-- reason`"},
    {"unused-allow", "allow directive that suppresses nothing"},
    {"unknown-rule", "allow directive naming a rule that does not exist"},
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsLintableRule(std::string_view name) {
  return std::any_of(kRules.begin(), kRules.end(),
                     [&](const RuleInfo& r) { return r.name == name; });
}

// ---------------------------------------------------------------------------
// Pass 1: strip comments and string/char literals so the rule scan only sees
// code, while collecting comment text for directive parsing.

struct Comment {
  int line = 0;           // line the comment starts on
  bool code_before = false;  // non-whitespace code earlier on that line
  std::string text;
};

struct Stripped {
  std::string code;  // input with comments/literal contents blanked
  std::vector<Comment> comments;
};

Stripped Strip(std::string_view in) {
  Stripped out;
  out.code.assign(in.size(), ' ');
  int line = 1;
  bool code_on_line = false;
  std::size_t i = 0;
  const std::size_t n = in.size();
  auto put = [&](std::size_t at, char c) { out.code[at] = c; };

  while (i < n) {
    const char c = in[i];
    if (c == '\n') {
      put(i, '\n');
      ++line;
      code_on_line = false;
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      Comment cm;
      cm.line = line;
      cm.code_before = code_on_line;
      std::size_t j = i + 2;
      while (j < n && in[j] != '\n') ++j;
      cm.text.assign(in.substr(i + 2, j - i - 2));
      out.comments.push_back(std::move(cm));
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      Comment cm;
      cm.line = line;
      cm.code_before = code_on_line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(in[j] == '*' && in[j + 1] == '/')) {
        if (in[j] == '\n') {
          put(j, '\n');
          ++line;
        }
        ++j;
      }
      cm.text.assign(in.substr(i + 2, j - (i + 2)));
      out.comments.push_back(std::move(cm));
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && in[i + 1] == '"' &&
        (i == 0 || !IsIdentChar(in[i - 1]))) {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && in[j] != '(') delim.push_back(in[j++]);
      const std::string close = ")" + delim + "\"";
      const std::size_t end = in.find(close, j);
      const std::size_t stop = end == std::string_view::npos
                                   ? n
                                   : end + close.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (in[k] == '\n') {
          put(k, '\n');
          ++line;
        }
      }
      code_on_line = true;
      i = stop;
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      put(i, '"');
      std::size_t j = i + 1;
      while (j < n && in[j] != '"') {
        if (in[j] == '\\' && j + 1 < n) ++j;
        if (in[j] == '\n') {
          put(j, '\n');
          ++line;
        }
        ++j;
      }
      if (j < n) put(j, '"');
      code_on_line = true;
      i = j + 1;
      continue;
    }
    // Char literal (but not a digit separator like 1'000'000).
    if (c == '\'' && (i == 0 || !IsIdentChar(in[i - 1]))) {
      put(i, '\'');
      std::size_t j = i + 1;
      while (j < n && in[j] != '\'') {
        if (in[j] == '\\' && j + 1 < n) ++j;
        ++j;
      }
      if (j < n) put(j, '\'');
      code_on_line = true;
      i = j + 1;
      continue;
    }
    put(i, c);
    if (!std::isspace(static_cast<unsigned char>(c))) code_on_line = true;
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Allow directives.

struct Directive {
  int comment_line = 0;
  int target_line = 0;
  std::string rule;
  bool has_reason = false;
  bool used = false;
  bool parse_error = false;
};

std::vector<Directive> ParseDirectives(const std::vector<Comment>& comments) {
  std::vector<Directive> out;
  for (const Comment& cm : comments) {
    // A directive must be the entire comment: `// szx-lint: allow(...) --
    // reason`.  Prose that merely mentions the syntax (docs, this file) is
    // ignored because the trimmed text does not start with the marker or
    // lacks an allow clause.
    std::string_view t(cm.text);
    const std::size_t first = t.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;
    t.remove_prefix(first);
    constexpr std::string_view kMarker = "szx-lint:";
    if (t.substr(0, kMarker.size()) != kMarker) continue;
    const std::string_view rest = t.substr(kMarker.size());
    if (rest.find("allow") == std::string_view::npos) continue;
    Directive d;
    d.comment_line = cm.line;
    d.target_line = cm.code_before ? cm.line : cm.line + 1;
    const std::size_t open = rest.find("allow(");
    const std::size_t close = rest.find(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close <= open + 6) {
      d.parse_error = true;
      out.push_back(std::move(d));
      continue;
    }
    std::string rule(rest.substr(open + 6, close - (open + 6)));
    // Trim whitespace around the rule name.
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.front())))
      rule.erase(rule.begin());
    while (!rule.empty() && std::isspace(static_cast<unsigned char>(rule.back())))
      rule.pop_back();
    d.rule = std::move(rule);
    const std::size_t dash = rest.find("--", close);
    if (dash != std::string_view::npos) {
      const std::string_view reason = rest.substr(dash + 2);
      d.has_reason = reason.find_first_not_of(" \t") != std::string_view::npos;
    }
    out.push_back(std::move(d));
  }
  return out;
}

// ---------------------------------------------------------------------------
// szx-mo justification comments.  Every std::memory_order site must carry
// one (trailing on its statement, or on the comment line(s) directly
// above); the justification text is the happens-before argument reviewers
// audit.  Target-line resolution mirrors allow directives.

struct MoComment {
  int comment_line = 0;
  int target_line = 0;
  bool has_text = false;
  bool used = false;
};

std::vector<MoComment> ParseMoComments(const std::vector<Comment>& comments) {
  std::vector<MoComment> out;
  for (const Comment& cm : comments) {
    std::string_view t(cm.text);
    const std::size_t first = t.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;
    t.remove_prefix(first);
    constexpr std::string_view kMarker = "szx-mo:";
    if (t.substr(0, kMarker.size()) != kMarker) continue;
    MoComment mc;
    mc.comment_line = cm.line;
    mc.target_line = cm.code_before ? cm.line : cm.line + 1;
    mc.has_text = t.substr(kMarker.size()).find_first_not_of(" \t") !=
                  std::string_view::npos;
    out.push_back(mc);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Hot-path marker: a file whose leading comments include `// szx-hot`
// opts into the allocation-free discipline (hot-alloc rule).

bool HasHotMarker(const std::vector<Comment>& comments) {
  for (const Comment& cm : comments) {
    std::string_view t(cm.text);
    const std::size_t first = t.find_first_not_of(" \t");
    if (first == std::string_view::npos) continue;
    t.remove_prefix(first);
    if (t.substr(0, 7) == "szx-hot") return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Scanning helpers over the stripped code.

std::vector<std::size_t> LineStarts(std::string_view code) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

int LineOf(std::size_t pos, const std::vector<std::size_t>& starts) {
  const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<int>(it - starts.begin());
}

// Next occurrence of `needle` as a whole identifier, starting at `from`.
std::size_t FindToken(std::string_view code, std::string_view needle,
                      std::size_t from) {
  while (true) {
    const std::size_t at = code.find(needle, from);
    if (at == std::string_view::npos) return at;
    const bool left_ok = at == 0 || !IsIdentChar(code[at - 1]);
    const std::size_t end = at + needle.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return at;
    from = at + 1;
  }
}

std::size_t SkipSpace(std::string_view code, std::size_t i) {
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i])))
    ++i;
  return i;
}

// Extracts the balanced-delimiter region starting at the opener at `open`
// (which must be '(', '[', '{', or '<').  Returns the contents, without the
// delimiters; empty optional-ish (npos semantics) on imbalance.
std::string_view Balanced(std::string_view code, std::size_t open,
                          std::size_t* end_out) {
  const char opener = code[open];
  const char closer = opener == '(' ? ')'
                      : opener == '[' ? ']'
                      : opener == '{' ? '}'
                                      : '>';
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == opener) ++depth;
    else if (code[i] == closer) {
      --depth;
      if (depth == 0) {
        if (end_out != nullptr) *end_out = i;
        return code.substr(open + 1, i - open - 1);
      }
    }
  }
  if (end_out != nullptr) *end_out = std::string_view::npos;
  return {};
}

bool ContainsHeaderField(std::string_view text) {
  return std::any_of(kHeaderFields.begin(), kHeaderFields.end(),
                     [&](std::string_view f) {
                       return FindToken(text, f, 0) != std::string_view::npos;
                     });
}

bool ContainsSizeHint(std::string_view text) {
  return std::any_of(kSizeHints.begin(), kSizeHints.end(),
                     [&](std::string_view h) {
                       return text.find(h) != std::string_view::npos;
                     });
}

struct Scan {
  std::string_view code;
  const std::vector<std::size_t>& lines;
  std::vector<Finding>& out;
  std::string_view path;

  void Add(std::size_t pos, std::string_view rule, std::string msg) {
    out.push_back(
        {std::string(path), LineOf(pos, lines), std::string(rule), std::move(msg)});
  }
};

void ScanMemcpy(Scan& s) {
  for (std::string_view fn : {"memcpy", "memmove"}) {
    for (std::size_t at = FindToken(s.code, fn, 0);
         at != std::string_view::npos;
         at = FindToken(s.code, fn, at + 1)) {
      const std::size_t after = SkipSpace(s.code, at + fn.size());
      if (after < s.code.size() && s.code[after] == '(') {
        s.Add(at, "raw-memcpy",
              std::string(fn) + " call; route stream bytes through "
                                "ByteCursor/ByteWriter instead");
      }
    }
  }
}

void ScanReinterpretCast(Scan& s) {
  for (std::size_t at = FindToken(s.code, "reinterpret_cast", 0);
       at != std::string_view::npos;
       at = FindToken(s.code, "reinterpret_cast", at + 1)) {
    s.Add(at, "reinterpret-cast",
          "reinterpret_cast; only the audited byte primitives may repun "
          "memory");
  }
}

void ScanPtrArith(Scan& s) {
  for (std::size_t at = s.code.find(".data()", 0);
       at != std::string_view::npos; at = s.code.find(".data()", at + 1)) {
    const std::size_t after = SkipSpace(s.code, at + 7);
    if (after < s.code.size() && s.code[after] == '+' &&
        !(after + 1 < s.code.size() && s.code[after + 1] == '+')) {
      s.Add(at, "ptr-arith",
            ".data() + offset arithmetic; use subspan or ByteCursor so the "
            "bound travels with the pointer");
    }
  }
}

void ScanUncheckedAlloc(Scan& s) {
  auto check_args = [&](std::size_t at, std::string_view args) {
    if (ContainsHeaderField(args) &&
        args.find("CheckedAlloc") == std::string_view::npos) {
      s.Add(at, "unchecked-alloc",
            "allocation sized by a stream header field; validate with "
            "ByteCursor::CheckedAlloc first");
    }
  };
  for (std::string_view call : {".resize", ".reserve"}) {
    for (std::size_t at = s.code.find(call, 0);
         at != std::string_view::npos; at = s.code.find(call, at + 1)) {
      const std::size_t open = SkipSpace(s.code, at + call.size());
      if (open >= s.code.size() || s.code[open] != '(') continue;
      check_args(at, Balanced(s.code, open, nullptr));
    }
  }
  // new T[expr]
  for (std::size_t at = FindToken(s.code, "new", 0);
       at != std::string_view::npos;
       at = FindToken(s.code, "new", at + 1)) {
    const std::size_t stop = s.code.find_first_of(";[", at);
    if (stop == std::string_view::npos || s.code[stop] != '[') continue;
    check_args(at, Balanced(s.code, stop, nullptr));
  }
  // std::vector<T> name(expr) / name{expr}
  for (std::size_t at = FindToken(s.code, "vector", 0);
       at != std::string_view::npos;
       at = FindToken(s.code, "vector", at + 1)) {
    std::size_t i = SkipSpace(s.code, at + 6);
    if (i >= s.code.size() || s.code[i] != '<') continue;
    std::size_t close_angle = std::string_view::npos;
    Balanced(s.code, i, &close_angle);
    if (close_angle == std::string_view::npos) continue;
    i = SkipSpace(s.code, close_angle + 1);
    const std::size_t ident_begin = i;
    while (i < s.code.size() && IsIdentChar(s.code[i])) ++i;
    if (i == ident_begin) continue;  // not a declaration
    i = SkipSpace(s.code, i);
    if (i >= s.code.size() || (s.code[i] != '(' && s.code[i] != '{')) continue;
    check_args(at, Balanced(s.code, i, nullptr));
  }
}

void ScanUncheckedNarrow(Scan& s) {
  for (std::size_t at = s.code.find("static_cast", 0);
       at != std::string_view::npos;
       at = s.code.find("static_cast", at + 1)) {
    std::size_t i = SkipSpace(s.code, at + 11);
    if (i >= s.code.size() || s.code[i] != '<') continue;
    std::size_t close_angle = std::string_view::npos;
    std::string type(Balanced(s.code, i, &close_angle));
    if (close_angle == std::string_view::npos) continue;
    // Normalize internal whitespace runs to single spaces.
    std::string norm;
    for (char c : type) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!norm.empty() && norm.back() != ' ') norm.push_back(' ');
      } else {
        norm.push_back(c);
      }
    }
    while (!norm.empty() && norm.back() == ' ') norm.pop_back();
    if (std::find(kNarrowTypes.begin(), kNarrowTypes.end(), norm) ==
        kNarrowTypes.end())
      continue;
    i = SkipSpace(s.code, close_angle + 1);
    if (i >= s.code.size() || s.code[i] != '(') continue;
    const std::string_view args = Balanced(s.code, i, nullptr);
    if (ContainsSizeHint(args) &&
        args.find("CheckedNarrow") == std::string_view::npos) {
      s.Add(at, "unchecked-narrow",
            "narrowing cast of a size-like value; use CheckedNarrow<" + norm +
                "> so truncation throws instead of wrapping");
    }
  }
}

// Flags every _mm* intrinsic whose name contains load/store/stream/gather:
// these move bytes through raw pointers with no bound attached (gathers
// through per-lane indices off a base pointer), so each use must carry an
// explained allow stating why the access stays in bounds
// (src/core/block_stats.cpp and src/core/kernels/kernels_avx2.cpp are the
// exemplars).
void ScanSimdMem(Scan& s) {
  for (std::size_t at = s.code.find("_mm", 0); at != std::string_view::npos;
       at = s.code.find("_mm", at + 1)) {
    if (at > 0 && IsIdentChar(s.code[at - 1])) continue;  // mid-identifier
    std::size_t end = at;
    while (end < s.code.size() && IsIdentChar(s.code[end])) ++end;
    const std::string_view name = s.code.substr(at, end - at);
    if (name.find("load") == std::string_view::npos &&
        name.find("store") == std::string_view::npos &&
        name.find("stream") == std::string_view::npos &&
        name.find("gather") == std::string_view::npos)
      continue;
    s.Add(at, "simd-mem",
          std::string(name) +
              "; raw SIMD memory access needs an allow explaining its "
              "bounds guarantee");
  }
}

// ---------------------------------------------------------------------------
// Lightweight scope/decl tracking for the concurrency rules.
//
// A full parse is out of scope for a lexical linter, but the concurrency
// rules need to know what kind of thing a receiver is: `m_.lock()` is a
// naked mutex lock while `weak.lock()` is a shared_ptr upgrade.  The
// tracker records declarations of the four kinds the rules care about
// (atomics, mutexes, RAII locks, condition variables) together with the
// brace scope they live in, so a later use site can resolve its receiver
// by name + position.  Receivers that never resolve are left alone --
// precision over recall, with the atomic-only method names (fetch_add,
// compare_exchange_*) as the recall backstop that needs no declaration.

enum class DeclKind { kAtomic, kMutex, kLock, kCondVar };

struct Decl {
  std::string name;
  DeclKind kind;
  std::size_t name_pos = 0;  // where the declared name appears
  std::size_t end = 0;       // end of the enclosing brace scope
  bool raw_condvar = false;  // std::condition_variable (not sync::CondVar)
};

struct TypePattern {
  std::string_view token;
  DeclKind kind;
  bool needs_template = false;  // '<' must follow (std::atomic<T>)
  bool raw_condvar = false;
};

constexpr std::array<TypePattern, 14> kTypePatterns = {{
    {"atomic", DeclKind::kAtomic, true, false},
    {"mutex", DeclKind::kMutex, false, false},
    {"timed_mutex", DeclKind::kMutex, false, false},
    {"recursive_mutex", DeclKind::kMutex, false, false},
    {"shared_mutex", DeclKind::kMutex, false, false},
    {"Mutex", DeclKind::kMutex, false, false},
    {"lock_guard", DeclKind::kLock, false, false},
    {"unique_lock", DeclKind::kLock, false, false},
    {"scoped_lock", DeclKind::kLock, false, false},
    {"shared_lock", DeclKind::kLock, false, false},
    {"MutexLock", DeclKind::kLock, false, false},
    {"condition_variable", DeclKind::kCondVar, false, true},
    {"condition_variable_any", DeclKind::kCondVar, false, true},
    {"CondVar", DeclKind::kCondVar, false, false},
}};

// Innermost enclosing '}' for each declaration, via one brace-matching pass.
std::vector<std::pair<std::size_t, std::size_t>> BracePairs(
    std::string_view code) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] == '{') {
      stack.push_back(i);
    } else if (code[i] == '}' && !stack.empty()) {
      pairs.emplace_back(stack.back(), i);
      stack.pop_back();
    }
  }
  return pairs;
}

std::vector<Decl> CollectDecls(std::string_view code) {
  std::vector<Decl> decls;
  const auto pairs = BracePairs(code);
  for (const TypePattern& tp : kTypePatterns) {
    for (std::size_t at = FindToken(code, tp.token, 0);
         at != std::string_view::npos;
         at = FindToken(code, tp.token, at + 1)) {
      std::size_t i = at + tp.token.size();
      if (i < code.size() && code[i] == '<') {
        std::size_t close = std::string_view::npos;
        Balanced(code, i, &close);
        if (close == std::string_view::npos) continue;
        i = close + 1;
      } else if (tp.needs_template) {
        continue;  // bare `atomic` word, not a declaration
      }
      i = SkipSpace(code, i);
      if (i < code.size() && (code[i] == '&' || code[i] == '*')) {
        i = SkipSpace(code, i + 1);
      }
      const std::size_t name_begin = i;
      while (i < code.size() && IsIdentChar(code[i])) ++i;
      if (i == name_begin) continue;  // no declared name follows
      Decl d;
      d.name.assign(code.substr(name_begin, i - name_begin));
      d.kind = tp.kind;
      d.name_pos = name_begin;
      d.raw_condvar = tp.raw_condvar;
      d.end = code.size();
      std::size_t best_open = 0;
      bool found = false;
      for (const auto& [open, close] : pairs) {
        if (open < name_begin && close > name_begin &&
            (!found || open > best_open)) {
          best_open = open;
          d.end = close;
          found = true;
        }
      }
      decls.push_back(std::move(d));
    }
  }
  return decls;
}

// Innermost declaration of `name` whose scope covers `pos`, or nullptr.
const Decl* FindDecl(const std::vector<Decl>& decls, std::string_view name,
                     std::size_t pos) {
  const Decl* best = nullptr;
  for (const Decl& d : decls) {
    if (d.name == name && d.name_pos <= pos && pos < d.end &&
        (best == nullptr || d.name_pos > best->name_pos)) {
      best = &d;
    }
  }
  return best;
}

// Receiver of a member call: the identifier directly before the '.' or
// "->" at `dot`.  Complex receivers (call chains, array elements) return
// empty -- the caller treats them as unresolvable.
std::string_view ReceiverBefore(std::string_view code, std::size_t dot) {
  std::size_t i = dot;
  while (i > 0 && std::isspace(static_cast<unsigned char>(code[i - 1]))) --i;
  const std::size_t end = i;
  while (i > 0 && IsIdentChar(code[i - 1])) --i;
  return code.substr(i, end - i);
}

// True when `pos` is preceded by '.' or '->' (receiver call syntax);
// `dot_out` gets the position of the '.' / '>' for receiver extraction.
bool IsMemberCall(std::string_view code, std::size_t pos,
                  std::size_t* dot_out) {
  std::size_t i = pos;
  while (i > 0 && std::isspace(static_cast<unsigned char>(code[i - 1]))) --i;
  if (i == 0) return false;
  if (code[i - 1] == '.') {
    *dot_out = i - 1;
    return true;
  }
  if (code[i - 1] == '>' && i >= 2 && code[i - 2] == '-') {
    *dot_out = i - 2;
    return true;
  }
  return false;
}

// `memory_order` as the *prefix* of an identifier (memory_order_relaxed,
// memory_order::acquire): left boundary must be non-identifier, the right
// side is free.
bool ContainsMemoryOrder(std::string_view text) {
  for (std::size_t at = text.find("memory_order"); at != std::string_view::npos;
       at = text.find("memory_order", at + 1)) {
    if (at == 0 || !IsIdentChar(text[at - 1])) return true;
  }
  return false;
}

// Line on which the statement containing `pos` starts: the first code
// after the previous ';', '{', or '}'.  szx-mo justifications attach to
// either the token's own line or this line, so one comment covers a
// wrapped multi-line statement (compare_exchange with two orders).
int StatementStartLine(std::string_view code, std::size_t pos,
                       const std::vector<std::size_t>& lines) {
  std::size_t i = pos;
  while (i > 0) {
    const char c = code[i - 1];
    if (c == ';' || c == '{' || c == '}') break;
    --i;
  }
  i = SkipSpace(code, i);
  if (i > pos) i = pos;
  return LineOf(i, lines);
}

// Rule: memory-order.  Every memory_order token needs an szx-mo
// justification targeting its line or its statement's first line.
void ScanMemoryOrder(Scan& s, std::vector<MoComment>& mo) {
  for (std::size_t at = s.code.find("memory_order");
       at != std::string_view::npos;
       at = s.code.find("memory_order", at + 1)) {
    if (at > 0 && IsIdentChar(s.code[at - 1])) continue;
    const int token_line = LineOf(at, s.lines);
    const int stmt_line = StatementStartLine(s.code, at, s.lines);
    bool justified = false;
    for (MoComment& mc : mo) {
      if (!mc.has_text) continue;
      if (mc.target_line == token_line || mc.target_line == stmt_line) {
        mc.used = true;
        justified = true;
      }
    }
    if (!justified) {
      s.Add(at, "memory-order",
            "std::memory_order use without an adjacent `// szx-mo:` "
            "justification; write down the happens-before edge this "
            "order provides (or why a weaker one suffices)");
    }
  }
}

// Rule: implicit-seq-cst.  Atomic operations that spell no memory order
// default to seq_cst -- usually unintentional on a hot path, and always
// unreviewed.  Method names that exist only on std::atomic are flagged on
// any receiver; ambiguous names (load/store/exchange) only on receivers
// declared atomic; ++/--/+=/= on declared atomics are the operator forms.
constexpr std::array<std::string_view, 7> kAtomicOnlyOps = {
    "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or",  "fetch_xor", "compare_exchange_strong",
    "compare_exchange_weak"};
constexpr std::array<std::string_view, 3> kAtomicAmbiguousOps = {
    "load", "store", "exchange"};

void ScanImplicitSeqCst(Scan& s, const std::vector<Decl>& decls) {
  auto check_call = [&](std::string_view op, bool need_decl) {
    for (std::size_t at = FindToken(s.code, op, 0);
         at != std::string_view::npos;
         at = FindToken(s.code, op, at + 1)) {
      std::size_t dot = 0;
      if (!IsMemberCall(s.code, at, &dot)) continue;
      const std::size_t open = SkipSpace(s.code, at + op.size());
      if (open >= s.code.size() || s.code[open] != '(') continue;
      if (need_decl) {
        const std::string_view recv = ReceiverBefore(s.code, dot);
        const Decl* d = recv.empty() ? nullptr : FindDecl(decls, recv, at);
        if (d == nullptr || d->kind != DeclKind::kAtomic) continue;
      }
      if (ContainsMemoryOrder(Balanced(s.code, open, nullptr))) continue;
      s.Add(at, "implicit-seq-cst",
            std::string(op) +
                " with no explicit memory order (implicit seq_cst); spell "
                "the order and justify it with szx-mo");
    }
  };
  for (std::string_view op : kAtomicOnlyOps) check_call(op, false);
  for (std::string_view op : kAtomicAmbiguousOps) check_call(op, true);

  for (const Decl& d : decls) {
    if (d.kind != DeclKind::kAtomic) continue;
    for (std::size_t at = FindToken(s.code, d.name, d.name_pos + 1);
         at != std::string_view::npos && at < d.end;
         at = FindToken(s.code, d.name, at + 1)) {
      if (at == d.name_pos) continue;
      // Prefix ++x / --x.
      std::size_t i = at;
      while (i > 0 && std::isspace(static_cast<unsigned char>(s.code[i - 1])))
        --i;
      const bool pre = i >= 2 && ((s.code[i - 1] == '+' && s.code[i - 2] == '+') ||
                                  (s.code[i - 1] == '-' && s.code[i - 2] == '-'));
      // Postfix / compound / plain assignment.
      std::size_t j = SkipSpace(s.code, at + d.name.size());
      bool post = false;
      if (j + 1 < s.code.size()) {
        const char a = s.code[j];
        const char b = s.code[j + 1];
        post = (a == '+' && b == '+') || (a == '-' && b == '-') ||
               ((a == '+' || a == '-' || a == '|' || a == '&' || a == '^') &&
                b == '=') ||
               (a == '=' && b != '=');
      }
      if (pre || post) {
        s.Add(at, "implicit-seq-cst",
              "operator on std::atomic '" + d.name +
                  "' is an implicit seq_cst RMW; use an explicit "
                  "fetch_/store call with a justified order");
      }
    }
  }
}

// Rule: naked-lock.  Direct lock()/unlock() on a mutex-typed receiver
// bypasses RAII (leaks the lock on exception) and the thread-safety
// analysis (sync::MutexLock carries the SZX_ACQUIRE/RELEASE contract).
void ScanNakedLock(Scan& s, const std::vector<Decl>& decls) {
  for (std::string_view op : {"lock", "unlock", "try_lock"}) {
    for (std::size_t at = FindToken(s.code, op, 0);
         at != std::string_view::npos;
         at = FindToken(s.code, op, at + 1)) {
      std::size_t dot = 0;
      if (!IsMemberCall(s.code, at, &dot)) continue;
      const std::size_t open = SkipSpace(s.code, at + op.size());
      if (open >= s.code.size() || s.code[open] != '(') continue;
      const std::string_view recv = ReceiverBefore(s.code, dot);
      const Decl* d = recv.empty() ? nullptr : FindDecl(decls, recv, at);
      if (d == nullptr || d->kind != DeclKind::kMutex) continue;
      s.Add(at, "naked-lock",
            "." + std::string(op) + "() on mutex '" + std::string(recv) +
                "'; hold it through sync::MutexLock so release is RAII "
                "and the acquisition is visible to -Wthread-safety");
    }
  }
}

// Rule: condvar-wait.  A wait must pass the held RAII lock so the
// atomic release-and-reacquire contract is explicit (and analyzable);
// raw std::condition_variable declarations bypass the annotated wrapper.
void ScanCondvarWait(Scan& s, const std::vector<Decl>& decls) {
  for (const Decl& d : decls) {
    if (d.kind == DeclKind::kCondVar && d.raw_condvar) {
      s.Add(d.name_pos, "condvar-wait",
            "raw std::condition_variable '" + d.name +
                "'; declare sync::CondVar so waits type-check against "
                "the annotated MutexLock");
    }
  }
  for (std::string_view op : {"wait", "Wait", "wait_for", "wait_until"}) {
    for (std::size_t at = FindToken(s.code, op, 0);
         at != std::string_view::npos;
         at = FindToken(s.code, op, at + 1)) {
      std::size_t dot = 0;
      if (!IsMemberCall(s.code, at, &dot)) continue;
      const std::size_t open = SkipSpace(s.code, at + op.size());
      if (open >= s.code.size() || s.code[open] != '(') continue;
      const std::string_view recv = ReceiverBefore(s.code, dot);
      const Decl* d = recv.empty() ? nullptr : FindDecl(decls, recv, at);
      if (d == nullptr || d->kind != DeclKind::kCondVar) continue;
      std::string_view args = Balanced(s.code, open, nullptr);
      const std::size_t comma = args.find(',');
      std::string_view first =
          comma == std::string_view::npos ? args : args.substr(0, comma);
      while (!first.empty() &&
             std::isspace(static_cast<unsigned char>(first.front())))
        first.remove_prefix(1);
      while (!first.empty() &&
             std::isspace(static_cast<unsigned char>(first.back())))
        first.remove_suffix(1);
      const bool ident_only =
          !first.empty() &&
          std::all_of(first.begin(), first.end(),
                      [](char c) { return IsIdentChar(c); });
      const Decl* lock =
          ident_only ? FindDecl(decls, first, at) : nullptr;
      if (lock != nullptr && lock->kind == DeclKind::kLock) continue;
      s.Add(at, "condvar-wait",
            "condition-variable wait whose first argument is not a held "
            "RAII lock declared in scope; pass the sync::MutexLock "
            "guarding the predicate");
    }
  }
}

// Rule: hot-alloc (only in files marked `// szx-hot`).  The kernels and
// dispatch layer must stay allocation-free: steady-state throughput is
// the paper's headline number, and one stray push_back turns into a
// realloc storm across millions of blocks.
constexpr std::array<std::string_view, 5> kAllocCalls = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup"};
constexpr std::array<std::string_view, 8> kReallocMethods = {
    "push_back", "emplace_back", "resize", "reserve",
    "insert",    "emplace",      "append", "assign"};

void ScanHotAlloc(Scan& s) {
  for (std::size_t at = FindToken(s.code, "new", 0);
       at != std::string_view::npos;
       at = FindToken(s.code, "new", at + 1)) {
    const std::size_t i = SkipSpace(s.code, at + 3);
    if (i >= s.code.size()) continue;
    if (!IsIdentChar(s.code[i]) && s.code[i] != '[') continue;
    s.Add(at, "hot-alloc",
          "operator new in an szx-hot file; hot paths allocate through "
          "ScratchArena (exec::Executor::WorkerScratch) or preallocated "
          "buffers");
  }
  for (std::string_view fn : kAllocCalls) {
    for (std::size_t at = FindToken(s.code, fn, 0);
         at != std::string_view::npos;
         at = FindToken(s.code, fn, at + 1)) {
      const std::size_t open = SkipSpace(s.code, at + fn.size());
      if (open >= s.code.size() || s.code[open] != '(') continue;
      s.Add(at, "hot-alloc",
            std::string(fn) + " in an szx-hot file; use ScratchArena");
    }
  }
  for (std::string_view m : kReallocMethods) {
    for (std::size_t at = FindToken(s.code, m, 0);
         at != std::string_view::npos;
         at = FindToken(s.code, m, at + 1)) {
      std::size_t dot = 0;
      if (!IsMemberCall(s.code, at, &dot)) continue;
      const std::size_t open = SkipSpace(s.code, at + m.size());
      if (open >= s.code.size() || s.code[open] != '(') continue;
      s.Add(at, "hot-alloc",
            "." + std::string(m) +
                " may reallocate in an szx-hot file; size buffers up "
                "front or use ScratchArena");
    }
  }
}

// Rule: missing-nodiscard (headers only).  Status-returning declarations
// whose result silently vanishing is a latent bug: report types, and
// bool-returning functions named like checks.
constexpr std::array<std::string_view, 3> kStatusTypes = {
    "ValidationReport", "DamageReport", "SalvageResult"};
constexpr std::array<std::string_view, 9> kBoolCheckPrefixes = {
    "Next", "Try", "Validate", "Verify", "Check",
    "Read", "Peek", "Parse",   "Done"};

void ScanMissingNodiscard(Scan& s) {
  auto segment_has_nodiscard = [&](std::size_t at) {
    std::size_t i = at;
    while (i > 0) {
      const char c = s.code[i - 1];
      if (c == ';' || c == '{' || c == '}') break;
      --i;
    }
    return s.code.substr(i, at - i).find("nodiscard") !=
           std::string_view::npos;
  };
  auto flag = [&](std::size_t at, std::string_view what) {
    s.Add(at, "missing-nodiscard",
          std::string(what) +
              " without [[nodiscard]]; a silently dropped status/report "
              "is a latent bug");
  };
  for (std::string_view ty : kStatusTypes) {
    for (std::size_t at = FindToken(s.code, ty, 0);
         at != std::string_view::npos;
         at = FindToken(s.code, ty, at + 1)) {
      std::size_t i = at + ty.size();
      if (i < s.code.size() && s.code[i] == '<') {
        std::size_t close = std::string_view::npos;
        Balanced(s.code, i, &close);
        if (close == std::string_view::npos) continue;
        i = close + 1;
      }
      i = SkipSpace(s.code, i);
      const std::size_t name_begin = i;
      while (i < s.code.size() && IsIdentChar(s.code[i])) ++i;
      if (i == name_begin) continue;
      i = SkipSpace(s.code, i);
      if (i >= s.code.size() || s.code[i] != '(') continue;
      if (segment_has_nodiscard(at)) continue;
      flag(at, "declaration returning " + std::string(ty));
    }
  }
  for (std::size_t at = FindToken(s.code, "bool", 0);
       at != std::string_view::npos;
       at = FindToken(s.code, "bool", at + 1)) {
    std::size_t i = SkipSpace(s.code, at + 4);
    const std::size_t name_begin = i;
    while (i < s.code.size() && IsIdentChar(s.code[i])) ++i;
    if (i == name_begin) continue;
    const std::string_view name = s.code.substr(name_begin, i - name_begin);
    bool check_like = false;
    for (std::string_view p : kBoolCheckPrefixes) {
      if (name.size() < p.size() || name.substr(0, p.size()) != p) continue;
      const char next = name.size() == p.size() ? '\0' : name[p.size()];
      if (next == '\0' ||
          std::isupper(static_cast<unsigned char>(next)) != 0) {
        check_like = true;
        break;
      }
    }
    if (!check_like) continue;
    i = SkipSpace(s.code, i);
    if (i >= s.code.size() || s.code[i] != '(') continue;
    if (segment_has_nodiscard(at)) continue;
    flag(at, "bool check '" + std::string(name) + "'");
  }
}

}  // namespace

const std::vector<RuleInfo>& Rules() { return kRules; }

bool IsAllowlisted(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  for (const std::string_view base : kAllowlist) {
    if (p == base) return true;
    if (p.size() > base.size() &&
        p.compare(p.size() - base.size(), base.size(), base) == 0 &&
        p[p.size() - base.size() - 1] == '/')
      return true;
  }
  return false;
}

bool IsStrictZone(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  // Salvage parses adversarially damaged bytes; serve terminates untrusted
  // network input.  Both must stay free of rule suppressions.
  constexpr std::string_view kZones[] = {"src/resilience/", "src/serve/"};
  constexpr std::string_view kBares[] = {"resilience/", "serve/"};
  for (const std::string_view zone : kZones) {
    if (p.find(zone) != std::string::npos) return true;
  }
  for (const std::string_view bare : kBares) {
    if (p.compare(0, bare.size(), bare) == 0) return true;
  }
  return false;
}

std::vector<Finding> LintText(std::string_view path, std::string_view text) {
  std::vector<Finding> findings;
  // The strict zone parses adversarially damaged bytes; no file there may
  // ride the audited-primitives allowlist, even if named like one.
  const bool strict = IsStrictZone(path);
  if (!strict && IsAllowlisted(path)) return findings;

  const Stripped st = Strip(text);
  const std::vector<std::size_t> lines = LineStarts(st.code);
  std::vector<Directive> directives = ParseDirectives(st.comments);
  std::vector<MoComment> mo_comments = ParseMoComments(st.comments);

  // A standalone directive targets the next line that has code, so several
  // directives may stack above one statement.
  auto line_has_code = [&](int line) {
    if (line < 1 || line > static_cast<int>(lines.size())) return false;
    const std::size_t begin = lines[line - 1];
    const std::size_t end = line < static_cast<int>(lines.size())
                                ? lines[line]
                                : st.code.size();
    return st.code.find_first_not_of(" \t\r\n", begin) < end;
  };
  const int last_line = static_cast<int>(lines.size());
  for (Directive& d : directives) {
    if (d.target_line == d.comment_line) continue;  // trailing directive
    int t = d.comment_line + 1;
    while (t <= last_line && !line_has_code(t)) ++t;
    d.target_line = t;
  }
  // szx-mo comments stack the same way: a block of justification lines
  // above a statement targets its first code line.
  for (MoComment& mc : mo_comments) {
    if (mc.target_line == mc.comment_line) continue;  // trailing comment
    int t = mc.comment_line + 1;
    while (t <= last_line && !line_has_code(t)) ++t;
    mc.target_line = t;
  }

  const std::vector<Decl> decls = CollectDecls(st.code);

  std::vector<Finding> raw;
  Scan scan{st.code, lines, raw, path};
  ScanMemcpy(scan);
  ScanReinterpretCast(scan);
  ScanPtrArith(scan);
  ScanUncheckedAlloc(scan);
  ScanUncheckedNarrow(scan);
  ScanSimdMem(scan);
  ScanMemoryOrder(scan, mo_comments);
  ScanImplicitSeqCst(scan, decls);
  ScanNakedLock(scan, decls);
  ScanCondvarWait(scan, decls);
  if (HasHotMarker(st.comments)) ScanHotAlloc(scan);
  {
    // Headers own the API surface; an out-of-line definition repeating the
    // attribute is noise, so the nodiscard rule only audits declarations.
    std::string p(path);
    if (p.size() >= 4 && (p.compare(p.size() - 4, 4, ".hpp") == 0 ||
                          p.compare(p.size() - 4, 4, ".hxx") == 0)) {
      ScanMissingNodiscard(scan);
    } else if (p.size() >= 2 && p.compare(p.size() - 2, 2, ".h") == 0) {
      ScanMissingNodiscard(scan);
    }
  }

  // Apply directives: a finding is suppressed by a matching allow on its
  // line (or on the directly preceding comment-only line).
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Directive& d : directives) {
      if (!strict && !d.parse_error && d.rule == f.rule &&
          d.target_line == f.line) {
        d.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) findings.push_back(std::move(f));
  }

  // Directive hygiene.
  for (const Directive& d : directives) {
    if (strict) {
      // Directives are refused wholesale here, so the underlying finding
      // also surfaces (it was never marked used above).
      findings.push_back({std::string(path), d.comment_line, "strict-zone",
                          "allow directives are refused in strict zones "
                          "(src/resilience/, src/serve/); fix the code "
                          "instead of suppressing the rule"});
      continue;
    }
    if (d.parse_error) {
      findings.push_back({std::string(path), d.comment_line, "unknown-rule",
                          "malformed szx-lint directive; expected "
                          "`szx-lint: allow(<rule>) -- <reason>`"});
      continue;
    }
    if (!IsLintableRule(d.rule)) {
      findings.push_back({std::string(path), d.comment_line, "unknown-rule",
                          "allow names unknown rule '" + d.rule + "'"});
      continue;
    }
    if (!d.has_reason) {
      findings.push_back({std::string(path), d.comment_line,
                          "unexplained-allow",
                          "allow(" + d.rule +
                              ") has no `-- reason`; every suppression "
                              "must say why it is safe"});
    }
    if (!d.used) {
      findings.push_back({std::string(path), d.comment_line, "unused-allow",
                          "allow(" + d.rule +
                              ") suppresses nothing; delete the stale "
                              "directive"});
    }
  }

  // szx-mo hygiene: a justification must say something and must attach to
  // a real memory_order site, so stale comments rot loudly like stale
  // allows do.  (Justifications are not suppressions -- they are honored
  // in the strict zone too.)
  for (const MoComment& mc : mo_comments) {
    if (!mc.has_text) {
      findings.push_back({std::string(path), mc.comment_line, "stale-mo",
                          "empty szx-mo justification; write the "
                          "happens-before argument"});
    } else if (!mc.used) {
      findings.push_back({std::string(path), mc.comment_line, "stale-mo",
                          "szx-mo comment attaches to no memory_order "
                          "site; delete or move it"});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> LintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("szx-lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return LintText(path, ss.str());
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream ss;
  ss << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return ss.str();
}

namespace {

// RFC 8259 string escaping (quote, backslash, and control characters).
void AppendJsonString(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

std::string RenderJson(const std::vector<Finding>& findings) {
  std::string out = "{\"version\": 1, \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    if (!first) out += ", ";
    first = false;
    out += "{\"file\": ";
    AppendJsonString(out, f.file);
    out += ", \"line\": " + std::to_string(f.line);
    out += ", \"rule\": ";
    AppendJsonString(out, f.rule);
    out += ", \"message\": ";
    AppendJsonString(out, f.message);
    out += "}";
  }
  out += "], \"count\": " + std::to_string(findings.size()) + "}\n";
  return out;
}

}  // namespace szx::lint
