// POSIX TCP plumbing for szx-serve -- deliberately OUTSIDE src/serve/ (a
// lint strict zone): sockaddr juggling and fd ownership live here at the
// tool boundary, while the protocol/server logic stays transport-agnostic.
//
// Everything retries EINTR and treats short reads/writes as the normal
// case, per the same discipline as src/iosim/file_backend.
#ifndef SZX_TOOLS_SERVE_NET_HPP_
#define SZX_TOOLS_SERVE_NET_HPP_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

#include "serve/transport.hpp"

namespace szx::servenet {

/// Blocking socket transport: one fd, owned.  Read returns what the kernel
/// has (short reads are normal); Write loops until every byte is accepted.
///
/// Close() only shuts the socket down (SHUT_RDWR): that is what actually
/// wakes a thread parked in a blocking read/write (a bare ::close on a
/// socket fd does NOT unblock concurrent readers on Linux), and it keeps
/// the fd number reserved so a response can never land on a recycled fd.
/// The ::close itself happens in the destructor, once the owning
/// connection thread has drained its jobs and no other thread can touch
/// the transport.
class FdTransport final : public serve::Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override {
    Close();
    if (fd_ >= 0) ::close(fd_);
  }
  FdTransport(const FdTransport&) = delete;
  FdTransport& operator=(const FdTransport&) = delete;

  std::size_t Read(std::span<std::byte> out) override {
    if (out.empty()) return 0;
    for (;;) {
      const ssize_t n = ::read(fd_, out.data(), out.size());
      if (n >= 0) return static_cast<std::size_t>(n);  // 0 = orderly EOF
      if (errno == EINTR) continue;
      throw serve::TransportError(std::string("socket read: ") +
                                  std::strerror(errno));
    }
  }

  void Write(ByteSpan data) override {
    std::size_t sent = 0;
    int stalls = 0;
    while (sent < data.size()) {
      const ByteSpan rest = data.subspan(sent);
      const ssize_t n = ::write(fd_, rest.data(), rest.size());
      if (n > 0) {
        sent += static_cast<std::size_t>(n);
        stalls = 0;
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n == 0) {
        // POSIX permits a zero-byte result that is not an error; errno is
        // stale then, so retry under a bounded budget (iosim's WriteFull
        // discipline) instead of reporting a meaningless strerror.
        if (++stalls > kMaxWriteStalls) {
          throw serve::TransportError(
              "socket write: made no progress past the retry budget");
        }
        continue;
      }
      throw serve::TransportError(std::string("socket write: ") +
                                  std::strerror(errno));
    }
  }

  void ShutdownWrite() override { ::shutdown(fd_, SHUT_WR); }

  void Close() override {
    // szx-mo: acq_rel exchange -- sole ordering point between concurrent
    // closers (connection thread, pool workers, Server::Stop); exactly one
    // caller performs the shutdown, the rest see it already done.
    if (!shut_.exchange(true, std::memory_order_acq_rel)) {
      ::shutdown(fd_, SHUT_RDWR);  // blocked reads return 0, writes fail
    }
  }

 private:
  static constexpr int kMaxWriteStalls = 64;

  const int fd_;  ///< immutable for the object's lifetime: no close/IO race
  std::atomic<bool> shut_{false};
};

/// Binds and listens on 127.0.0.1:port (port 0 = kernel-assigned); returns
/// the fd and stores the actual port.  Returns -1 on failure with errno set.
inline int ListenTcp(std::uint16_t port, std::uint16_t& actual_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // szx-lint: allow(reinterpret-cast) -- the BSD socket ABI types bind/accept/getsockname against the sockaddr base struct
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof(addr);
  // szx-lint: allow(reinterpret-cast) -- the BSD socket ABI types bind/accept/getsockname against the sockaddr base struct
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return -1;
  }
  actual_port = ntohs(addr.sin_port);
  return fd;
}

/// Accepts one connection, retrying EINTR.  Returns -1 on failure.
inline int AcceptConn(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// Connects to host:port (numeric IPv4, e.g. "127.0.0.1").  Returns -1 on
/// failure with errno set.
inline int ConnectTcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  for (;;) {
    // szx-lint: allow(reinterpret-cast) -- the BSD socket ABI types bind/accept/getsockname against the sockaddr base struct
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    return -1;
  }
}

}  // namespace szx::servenet

#endif  // SZX_TOOLS_SERVE_NET_HPP_
