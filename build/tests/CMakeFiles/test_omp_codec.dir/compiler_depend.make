# Empty compiler generated dependencies file for test_omp_codec.
# This may be replaced when dependencies are built.
