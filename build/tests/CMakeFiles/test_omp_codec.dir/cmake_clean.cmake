file(REMOVE_RECURSE
  "CMakeFiles/test_omp_codec.dir/core/test_omp_codec.cpp.o"
  "CMakeFiles/test_omp_codec.dir/core/test_omp_codec.cpp.o.d"
  "test_omp_codec"
  "test_omp_codec.pdb"
  "test_omp_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_omp_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
