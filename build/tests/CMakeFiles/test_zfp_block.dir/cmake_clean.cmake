file(REMOVE_RECURSE
  "CMakeFiles/test_zfp_block.dir/zfpref/test_zfp_block.cpp.o"
  "CMakeFiles/test_zfp_block.dir/zfpref/test_zfp_block.cpp.o.d"
  "test_zfp_block"
  "test_zfp_block.pdb"
  "test_zfp_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zfp_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
