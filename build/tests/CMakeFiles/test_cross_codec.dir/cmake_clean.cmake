file(REMOVE_RECURSE
  "CMakeFiles/test_cross_codec.dir/integration/test_cross_codec.cpp.o"
  "CMakeFiles/test_cross_codec.dir/integration/test_cross_codec.cpp.o.d"
  "test_cross_codec"
  "test_cross_codec.pdb"
  "test_cross_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
