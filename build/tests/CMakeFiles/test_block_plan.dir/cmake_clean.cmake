file(REMOVE_RECURSE
  "CMakeFiles/test_block_plan.dir/core/test_block_plan.cpp.o"
  "CMakeFiles/test_block_plan.dir/core/test_block_plan.cpp.o.d"
  "test_block_plan"
  "test_block_plan.pdb"
  "test_block_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_block_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
