file(REMOVE_RECURSE
  "CMakeFiles/test_pointwise_rel.dir/core/test_pointwise_rel.cpp.o"
  "CMakeFiles/test_pointwise_rel.dir/core/test_pointwise_rel.cpp.o.d"
  "test_pointwise_rel"
  "test_pointwise_rel.pdb"
  "test_pointwise_rel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointwise_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
