# Empty dependencies file for test_pointwise_rel.
# This may be replaced when dependencies are built.
