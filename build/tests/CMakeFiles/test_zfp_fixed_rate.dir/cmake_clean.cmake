file(REMOVE_RECURSE
  "CMakeFiles/test_zfp_fixed_rate.dir/zfpref/test_zfp_fixed_rate.cpp.o"
  "CMakeFiles/test_zfp_fixed_rate.dir/zfpref/test_zfp_fixed_rate.cpp.o.d"
  "test_zfp_fixed_rate"
  "test_zfp_fixed_rate.pdb"
  "test_zfp_fixed_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zfp_fixed_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
