# Empty dependencies file for test_zfp_fixed_rate.
# This may be replaced when dependencies are built.
