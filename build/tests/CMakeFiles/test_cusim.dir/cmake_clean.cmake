file(REMOVE_RECURSE
  "CMakeFiles/test_cusim.dir/cusim/test_cusim.cpp.o"
  "CMakeFiles/test_cusim.dir/cusim/test_cusim.cpp.o.d"
  "test_cusim"
  "test_cusim.pdb"
  "test_cusim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
