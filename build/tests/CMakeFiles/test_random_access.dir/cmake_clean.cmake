file(REMOVE_RECURSE
  "CMakeFiles/test_random_access.dir/core/test_random_access.cpp.o"
  "CMakeFiles/test_random_access.dir/core/test_random_access.cpp.o.d"
  "test_random_access"
  "test_random_access.pdb"
  "test_random_access[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
