# Empty compiler generated dependencies file for test_random_access.
# This may be replaced when dependencies are built.
