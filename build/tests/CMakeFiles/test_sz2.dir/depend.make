# Empty dependencies file for test_sz2.
# This may be replaced when dependencies are built.
