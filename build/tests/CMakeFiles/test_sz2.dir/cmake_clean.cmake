file(REMOVE_RECURSE
  "CMakeFiles/test_sz2.dir/szref/test_sz2.cpp.o"
  "CMakeFiles/test_sz2.dir/szref/test_sz2.cpp.o.d"
  "test_sz2"
  "test_sz2.pdb"
  "test_sz2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sz2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
