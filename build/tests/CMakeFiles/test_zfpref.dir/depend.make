# Empty dependencies file for test_zfpref.
# This may be replaced when dependencies are built.
