file(REMOVE_RECURSE
  "CMakeFiles/test_zfpref.dir/zfpref/test_zfpref.cpp.o"
  "CMakeFiles/test_zfpref.dir/zfpref/test_zfpref.cpp.o.d"
  "test_zfpref"
  "test_zfpref.pdb"
  "test_zfpref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zfpref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
