# Empty compiler generated dependencies file for test_szref.
# This may be replaced when dependencies are built.
