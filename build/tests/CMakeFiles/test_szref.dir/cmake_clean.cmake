file(REMOVE_RECURSE
  "CMakeFiles/test_szref.dir/szref/test_szref.cpp.o"
  "CMakeFiles/test_szref.dir/szref/test_szref.cpp.o.d"
  "test_szref"
  "test_szref.pdb"
  "test_szref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_szref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
