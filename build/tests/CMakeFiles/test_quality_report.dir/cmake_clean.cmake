file(REMOVE_RECURSE
  "CMakeFiles/test_quality_report.dir/metrics/test_quality_report.cpp.o"
  "CMakeFiles/test_quality_report.dir/metrics/test_quality_report.cpp.o.d"
  "test_quality_report"
  "test_quality_report.pdb"
  "test_quality_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quality_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
