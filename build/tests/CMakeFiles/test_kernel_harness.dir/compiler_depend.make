# Empty compiler generated dependencies file for test_kernel_harness.
# This may be replaced when dependencies are built.
