file(REMOVE_RECURSE
  "CMakeFiles/test_kernel_harness.dir/cusim/test_kernel_harness.cpp.o"
  "CMakeFiles/test_kernel_harness.dir/cusim/test_kernel_harness.cpp.o.d"
  "test_kernel_harness"
  "test_kernel_harness.pdb"
  "test_kernel_harness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
