file(REMOVE_RECURSE
  "CMakeFiles/test_lzref.dir/lzref/test_lzref.cpp.o"
  "CMakeFiles/test_lzref.dir/lzref/test_lzref.cpp.o.d"
  "test_lzref"
  "test_lzref.pdb"
  "test_lzref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lzref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
