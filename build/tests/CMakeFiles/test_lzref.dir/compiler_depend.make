# Empty compiler generated dependencies file for test_lzref.
# This may be replaced when dependencies are built.
