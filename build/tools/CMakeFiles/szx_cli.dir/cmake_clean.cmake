file(REMOVE_RECURSE
  "CMakeFiles/szx_cli.dir/szx_cli.cpp.o"
  "CMakeFiles/szx_cli.dir/szx_cli.cpp.o.d"
  "szx_cli"
  "szx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
