# Empty compiler generated dependencies file for szx_cli.
# This may be replaced when dependencies are built.
