file(REMOVE_RECURSE
  "CMakeFiles/szx_datagen.dir/szx_datagen.cpp.o"
  "CMakeFiles/szx_datagen.dir/szx_datagen.cpp.o.d"
  "szx_datagen"
  "szx_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
