# Empty dependencies file for szx_datagen.
# This may be replaced when dependencies are built.
