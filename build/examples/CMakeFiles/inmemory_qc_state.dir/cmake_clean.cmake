file(REMOVE_RECURSE
  "CMakeFiles/inmemory_qc_state.dir/inmemory_qc_state.cpp.o"
  "CMakeFiles/inmemory_qc_state.dir/inmemory_qc_state.cpp.o.d"
  "inmemory_qc_state"
  "inmemory_qc_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inmemory_qc_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
