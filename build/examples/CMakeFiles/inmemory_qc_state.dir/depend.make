# Empty dependencies file for inmemory_qc_state.
# This may be replaced when dependencies are built.
