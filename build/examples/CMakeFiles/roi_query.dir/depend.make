# Empty dependencies file for roi_query.
# This may be replaced when dependencies are built.
