file(REMOVE_RECURSE
  "CMakeFiles/roi_query.dir/roi_query.cpp.o"
  "CMakeFiles/roi_query.dir/roi_query.cpp.o.d"
  "roi_query"
  "roi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
