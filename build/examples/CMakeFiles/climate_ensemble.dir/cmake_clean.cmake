file(REMOVE_RECURSE
  "CMakeFiles/climate_ensemble.dir/climate_ensemble.cpp.o"
  "CMakeFiles/climate_ensemble.dir/climate_ensemble.cpp.o.d"
  "climate_ensemble"
  "climate_ensemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/climate_ensemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
