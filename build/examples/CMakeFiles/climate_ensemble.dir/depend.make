# Empty dependencies file for climate_ensemble.
# This may be replaced when dependencies are built.
