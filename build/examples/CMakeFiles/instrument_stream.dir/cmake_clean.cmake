file(REMOVE_RECURSE
  "CMakeFiles/instrument_stream.dir/instrument_stream.cpp.o"
  "CMakeFiles/instrument_stream.dir/instrument_stream.cpp.o.d"
  "instrument_stream"
  "instrument_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrument_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
