# Empty compiler generated dependencies file for instrument_stream.
# This may be replaced when dependencies are built.
