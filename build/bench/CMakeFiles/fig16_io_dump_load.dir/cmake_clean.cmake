file(REMOVE_RECURSE
  "CMakeFiles/fig16_io_dump_load.dir/fig16_io_dump_load.cpp.o"
  "CMakeFiles/fig16_io_dump_load.dir/fig16_io_dump_load.cpp.o.d"
  "fig16_io_dump_load"
  "fig16_io_dump_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_io_dump_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
