# Empty dependencies file for fig16_io_dump_load.
# This may be replaced when dependencies are built.
