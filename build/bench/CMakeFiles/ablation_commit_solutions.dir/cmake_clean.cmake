file(REMOVE_RECURSE
  "CMakeFiles/ablation_commit_solutions.dir/ablation_commit_solutions.cpp.o"
  "CMakeFiles/ablation_commit_solutions.dir/ablation_commit_solutions.cpp.o.d"
  "ablation_commit_solutions"
  "ablation_commit_solutions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_commit_solutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
