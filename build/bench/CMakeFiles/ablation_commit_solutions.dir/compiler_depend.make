# Empty compiler generated dependencies file for ablation_commit_solutions.
# This may be replaced when dependencies are built.
