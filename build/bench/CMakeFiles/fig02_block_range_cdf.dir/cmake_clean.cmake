file(REMOVE_RECURSE
  "CMakeFiles/fig02_block_range_cdf.dir/fig02_block_range_cdf.cpp.o"
  "CMakeFiles/fig02_block_range_cdf.dir/fig02_block_range_cdf.cpp.o.d"
  "fig02_block_range_cdf"
  "fig02_block_range_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_block_range_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
