# Empty compiler generated dependencies file for fig02_block_range_cdf.
# This may be replaced when dependencies are built.
