# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02_block_range_cdf.
