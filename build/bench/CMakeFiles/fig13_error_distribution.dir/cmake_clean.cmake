file(REMOVE_RECURSE
  "CMakeFiles/fig13_error_distribution.dir/fig13_error_distribution.cpp.o"
  "CMakeFiles/fig13_error_distribution.dir/fig13_error_distribution.cpp.o.d"
  "fig13_error_distribution"
  "fig13_error_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_error_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
