# Empty dependencies file for fig13_error_distribution.
# This may be replaced when dependencies are built.
