# Empty compiler generated dependencies file for fig14_15_gpu_throughput.
# This may be replaced when dependencies are built.
