file(REMOVE_RECURSE
  "CMakeFiles/fig12_visual_quality.dir/fig12_visual_quality.cpp.o"
  "CMakeFiles/fig12_visual_quality.dir/fig12_visual_quality.cpp.o.d"
  "fig12_visual_quality"
  "fig12_visual_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_visual_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
