# Empty compiler generated dependencies file for fig01_dataset_slices.
# This may be replaced when dependencies are built.
