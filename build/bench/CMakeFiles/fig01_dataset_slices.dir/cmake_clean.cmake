file(REMOVE_RECURSE
  "CMakeFiles/fig01_dataset_slices.dir/fig01_dataset_slices.cpp.o"
  "CMakeFiles/fig01_dataset_slices.dir/fig01_dataset_slices.cpp.o.d"
  "fig01_dataset_slices"
  "fig01_dataset_slices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_dataset_slices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
