file(REMOVE_RECURSE
  "CMakeFiles/fig06_shift_overhead.dir/fig06_shift_overhead.cpp.o"
  "CMakeFiles/fig06_shift_overhead.dir/fig06_shift_overhead.cpp.o.d"
  "fig06_shift_overhead"
  "fig06_shift_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_shift_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
