# Empty dependencies file for table03_compression_ratios.
# This may be replaced when dependencies are built.
