file(REMOVE_RECURSE
  "CMakeFiles/table03_compression_ratios.dir/table03_compression_ratios.cpp.o"
  "CMakeFiles/table03_compression_ratios.dir/table03_compression_ratios.cpp.o.d"
  "table03_compression_ratios"
  "table03_compression_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_compression_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
