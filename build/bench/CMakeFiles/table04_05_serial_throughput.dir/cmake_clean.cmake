file(REMOVE_RECURSE
  "CMakeFiles/table04_05_serial_throughput.dir/table04_05_serial_throughput.cpp.o"
  "CMakeFiles/table04_05_serial_throughput.dir/table04_05_serial_throughput.cpp.o.d"
  "table04_05_serial_throughput"
  "table04_05_serial_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_05_serial_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
