# Empty dependencies file for table04_05_serial_throughput.
# This may be replaced when dependencies are built.
