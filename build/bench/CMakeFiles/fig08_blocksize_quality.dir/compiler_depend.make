# Empty compiler generated dependencies file for fig08_blocksize_quality.
# This may be replaced when dependencies are built.
