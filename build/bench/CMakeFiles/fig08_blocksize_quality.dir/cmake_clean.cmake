file(REMOVE_RECURSE
  "CMakeFiles/fig08_blocksize_quality.dir/fig08_blocksize_quality.cpp.o"
  "CMakeFiles/fig08_blocksize_quality.dir/fig08_blocksize_quality.cpp.o.d"
  "fig08_blocksize_quality"
  "fig08_blocksize_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_blocksize_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
