file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_tradeoff.dir/ablation_hybrid_tradeoff.cpp.o"
  "CMakeFiles/ablation_hybrid_tradeoff.dir/ablation_hybrid_tradeoff.cpp.o.d"
  "ablation_hybrid_tradeoff"
  "ablation_hybrid_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
