# Empty dependencies file for ablation_hybrid_tradeoff.
# This may be replaced when dependencies are built.
