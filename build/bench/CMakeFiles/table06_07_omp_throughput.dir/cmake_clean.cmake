file(REMOVE_RECURSE
  "CMakeFiles/table06_07_omp_throughput.dir/table06_07_omp_throughput.cpp.o"
  "CMakeFiles/table06_07_omp_throughput.dir/table06_07_omp_throughput.cpp.o.d"
  "table06_07_omp_throughput"
  "table06_07_omp_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_07_omp_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
