# Empty compiler generated dependencies file for table06_07_omp_throughput.
# This may be replaced when dependencies are built.
