# Empty dependencies file for ablation_simd_kernels.
# This may be replaced when dependencies are built.
