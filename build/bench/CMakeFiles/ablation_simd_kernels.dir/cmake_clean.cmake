file(REMOVE_RECURSE
  "CMakeFiles/ablation_simd_kernels.dir/ablation_simd_kernels.cpp.o"
  "CMakeFiles/ablation_simd_kernels.dir/ablation_simd_kernels.cpp.o.d"
  "ablation_simd_kernels"
  "ablation_simd_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simd_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
