# Empty dependencies file for szx_core.
# This may be replaced when dependencies are built.
