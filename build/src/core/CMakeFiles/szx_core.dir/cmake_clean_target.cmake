file(REMOVE_RECURSE
  "libszx_core.a"
)
