
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block_stats.cpp" "src/core/CMakeFiles/szx_core.dir/block_stats.cpp.o" "gcc" "src/core/CMakeFiles/szx_core.dir/block_stats.cpp.o.d"
  "/root/repo/src/core/compressor.cpp" "src/core/CMakeFiles/szx_core.dir/compressor.cpp.o" "gcc" "src/core/CMakeFiles/szx_core.dir/compressor.cpp.o.d"
  "/root/repo/src/core/encode.cpp" "src/core/CMakeFiles/szx_core.dir/encode.cpp.o" "gcc" "src/core/CMakeFiles/szx_core.dir/encode.cpp.o.d"
  "/root/repo/src/core/omp_codec.cpp" "src/core/CMakeFiles/szx_core.dir/omp_codec.cpp.o" "gcc" "src/core/CMakeFiles/szx_core.dir/omp_codec.cpp.o.d"
  "/root/repo/src/core/random_access.cpp" "src/core/CMakeFiles/szx_core.dir/random_access.cpp.o" "gcc" "src/core/CMakeFiles/szx_core.dir/random_access.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/szx_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/szx_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/tuning.cpp" "src/core/CMakeFiles/szx_core.dir/tuning.cpp.o" "gcc" "src/core/CMakeFiles/szx_core.dir/tuning.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/szx_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/szx_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
