file(REMOVE_RECURSE
  "CMakeFiles/szx_core.dir/block_stats.cpp.o"
  "CMakeFiles/szx_core.dir/block_stats.cpp.o.d"
  "CMakeFiles/szx_core.dir/compressor.cpp.o"
  "CMakeFiles/szx_core.dir/compressor.cpp.o.d"
  "CMakeFiles/szx_core.dir/encode.cpp.o"
  "CMakeFiles/szx_core.dir/encode.cpp.o.d"
  "CMakeFiles/szx_core.dir/omp_codec.cpp.o"
  "CMakeFiles/szx_core.dir/omp_codec.cpp.o.d"
  "CMakeFiles/szx_core.dir/random_access.cpp.o"
  "CMakeFiles/szx_core.dir/random_access.cpp.o.d"
  "CMakeFiles/szx_core.dir/streaming.cpp.o"
  "CMakeFiles/szx_core.dir/streaming.cpp.o.d"
  "CMakeFiles/szx_core.dir/tuning.cpp.o"
  "CMakeFiles/szx_core.dir/tuning.cpp.o.d"
  "CMakeFiles/szx_core.dir/validate.cpp.o"
  "CMakeFiles/szx_core.dir/validate.cpp.o.d"
  "libszx_core.a"
  "libszx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
