file(REMOVE_RECURSE
  "libszx_data.a"
)
