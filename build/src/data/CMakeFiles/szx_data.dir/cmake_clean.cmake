file(REMOVE_RECURSE
  "CMakeFiles/szx_data.dir/datasets.cpp.o"
  "CMakeFiles/szx_data.dir/datasets.cpp.o.d"
  "CMakeFiles/szx_data.dir/noise.cpp.o"
  "CMakeFiles/szx_data.dir/noise.cpp.o.d"
  "libszx_data.a"
  "libszx_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
