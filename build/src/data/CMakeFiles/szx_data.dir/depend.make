# Empty dependencies file for szx_data.
# This may be replaced when dependencies are built.
