# Empty dependencies file for szx_lzref.
# This may be replaced when dependencies are built.
