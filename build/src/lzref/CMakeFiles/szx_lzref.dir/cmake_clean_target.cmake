file(REMOVE_RECURSE
  "libszx_lzref.a"
)
