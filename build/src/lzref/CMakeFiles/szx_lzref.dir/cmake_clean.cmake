file(REMOVE_RECURSE
  "CMakeFiles/szx_lzref.dir/lzref.cpp.o"
  "CMakeFiles/szx_lzref.dir/lzref.cpp.o.d"
  "libszx_lzref.a"
  "libszx_lzref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_lzref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
