
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cusim/cusim_codec.cpp" "src/cusim/CMakeFiles/szx_cusim.dir/cusim_codec.cpp.o" "gcc" "src/cusim/CMakeFiles/szx_cusim.dir/cusim_codec.cpp.o.d"
  "/root/repo/src/cusim/device_model.cpp" "src/cusim/CMakeFiles/szx_cusim.dir/device_model.cpp.o" "gcc" "src/cusim/CMakeFiles/szx_cusim.dir/device_model.cpp.o.d"
  "/root/repo/src/cusim/kernel_harness.cpp" "src/cusim/CMakeFiles/szx_cusim.dir/kernel_harness.cpp.o" "gcc" "src/cusim/CMakeFiles/szx_cusim.dir/kernel_harness.cpp.o.d"
  "/root/repo/src/cusim/warp_ops.cpp" "src/cusim/CMakeFiles/szx_cusim.dir/warp_ops.cpp.o" "gcc" "src/cusim/CMakeFiles/szx_cusim.dir/warp_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/szx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
