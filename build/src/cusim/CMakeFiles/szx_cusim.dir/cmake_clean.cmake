file(REMOVE_RECURSE
  "CMakeFiles/szx_cusim.dir/cusim_codec.cpp.o"
  "CMakeFiles/szx_cusim.dir/cusim_codec.cpp.o.d"
  "CMakeFiles/szx_cusim.dir/device_model.cpp.o"
  "CMakeFiles/szx_cusim.dir/device_model.cpp.o.d"
  "CMakeFiles/szx_cusim.dir/kernel_harness.cpp.o"
  "CMakeFiles/szx_cusim.dir/kernel_harness.cpp.o.d"
  "CMakeFiles/szx_cusim.dir/warp_ops.cpp.o"
  "CMakeFiles/szx_cusim.dir/warp_ops.cpp.o.d"
  "libszx_cusim.a"
  "libszx_cusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_cusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
