# Empty dependencies file for szx_cusim.
# This may be replaced when dependencies are built.
