file(REMOVE_RECURSE
  "libszx_cusim.a"
)
