file(REMOVE_RECURSE
  "CMakeFiles/szx_zfpref.dir/zfp_block.cpp.o"
  "CMakeFiles/szx_zfpref.dir/zfp_block.cpp.o.d"
  "CMakeFiles/szx_zfpref.dir/zfpref.cpp.o"
  "CMakeFiles/szx_zfpref.dir/zfpref.cpp.o.d"
  "libszx_zfpref.a"
  "libszx_zfpref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_zfpref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
