file(REMOVE_RECURSE
  "libszx_zfpref.a"
)
