# Empty dependencies file for szx_zfpref.
# This may be replaced when dependencies are built.
