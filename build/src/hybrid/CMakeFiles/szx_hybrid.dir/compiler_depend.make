# Empty compiler generated dependencies file for szx_hybrid.
# This may be replaced when dependencies are built.
