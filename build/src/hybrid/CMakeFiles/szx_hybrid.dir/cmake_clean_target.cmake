file(REMOVE_RECURSE
  "libszx_hybrid.a"
)
