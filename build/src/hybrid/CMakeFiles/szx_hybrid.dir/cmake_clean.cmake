file(REMOVE_RECURSE
  "CMakeFiles/szx_hybrid.dir/hybrid.cpp.o"
  "CMakeFiles/szx_hybrid.dir/hybrid.cpp.o.d"
  "libszx_hybrid.a"
  "libszx_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
