file(REMOVE_RECURSE
  "CMakeFiles/szx_szref.dir/huffman.cpp.o"
  "CMakeFiles/szx_szref.dir/huffman.cpp.o.d"
  "CMakeFiles/szx_szref.dir/sz2.cpp.o"
  "CMakeFiles/szx_szref.dir/sz2.cpp.o.d"
  "CMakeFiles/szx_szref.dir/szref.cpp.o"
  "CMakeFiles/szx_szref.dir/szref.cpp.o.d"
  "libszx_szref.a"
  "libszx_szref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_szref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
