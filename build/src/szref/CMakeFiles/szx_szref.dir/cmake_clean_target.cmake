file(REMOVE_RECURSE
  "libszx_szref.a"
)
