# Empty compiler generated dependencies file for szx_szref.
# This may be replaced when dependencies are built.
