
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/szref/huffman.cpp" "src/szref/CMakeFiles/szx_szref.dir/huffman.cpp.o" "gcc" "src/szref/CMakeFiles/szx_szref.dir/huffman.cpp.o.d"
  "/root/repo/src/szref/sz2.cpp" "src/szref/CMakeFiles/szx_szref.dir/sz2.cpp.o" "gcc" "src/szref/CMakeFiles/szx_szref.dir/sz2.cpp.o.d"
  "/root/repo/src/szref/szref.cpp" "src/szref/CMakeFiles/szx_szref.dir/szref.cpp.o" "gcc" "src/szref/CMakeFiles/szx_szref.dir/szref.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/szx_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
