# Empty dependencies file for szx_metrics.
# This may be replaced when dependencies are built.
