file(REMOVE_RECURSE
  "CMakeFiles/szx_metrics.dir/metrics.cpp.o"
  "CMakeFiles/szx_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/szx_metrics.dir/quality_report.cpp.o"
  "CMakeFiles/szx_metrics.dir/quality_report.cpp.o.d"
  "libszx_metrics.a"
  "libszx_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
