file(REMOVE_RECURSE
  "libszx_metrics.a"
)
