file(REMOVE_RECURSE
  "libszx_iosim.a"
)
