# Empty compiler generated dependencies file for szx_iosim.
# This may be replaced when dependencies are built.
