file(REMOVE_RECURSE
  "CMakeFiles/szx_iosim.dir/event_sim.cpp.o"
  "CMakeFiles/szx_iosim.dir/event_sim.cpp.o.d"
  "CMakeFiles/szx_iosim.dir/pfs_sim.cpp.o"
  "CMakeFiles/szx_iosim.dir/pfs_sim.cpp.o.d"
  "libszx_iosim.a"
  "libszx_iosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/szx_iosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
