// Checkpoint/restart with lossy compression -- the viability question of
// Ibtesham et al. (ICPP'12), the paper's reference [16] and the subject of
// its planned ratio/performance trade-off study: how much does compressing
// checkpoints cost, and does restarting from a lossy checkpoint perturb
// the computation?
//
// We run a 2-D heat-diffusion solver, checkpoint its state every k
// iterations (raw vs SZx at several bounds), then kill it mid-run and
// restart from the last checkpoint, comparing the final fields.
//
//   ./examples/checkpoint_restart
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/compressor.hpp"
#include "metrics/metrics.hpp"

namespace {

using namespace szx;

constexpr std::size_t kN = 256;          // grid edge
constexpr int kTotalIters = 400;
constexpr int kCheckpointEvery = 50;
constexpr int kCrashAt = 330;            // mid-interval crash

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One Jacobi step of heat diffusion with a hot blob source.
void Step(std::vector<float>& u, std::vector<float>& tmp, int iter) {
  for (std::size_t y = 1; y + 1 < kN; ++y) {
    for (std::size_t x = 1; x + 1 < kN; ++x) {
      const std::size_t i = y * kN + x;
      tmp[i] = 0.25f * (u[i - 1] + u[i + 1] + u[i - kN] + u[i + kN]);
    }
  }
  std::swap(u, tmp);
  // Moving heat source.
  const auto sx = static_cast<std::size_t>(
      kN / 2 + kN / 4 * std::cos(0.03 * iter));
  const auto sy = static_cast<std::size_t>(
      kN / 2 + kN / 4 * std::sin(0.03 * iter));
  u[sy * kN + sx] = 100.0f;
}

std::vector<float> RunSolver(int iters, std::vector<float> state,
                             int start_iter = 0) {
  std::vector<float> tmp(state.size());
  for (int it = start_iter; it < iters; ++it) Step(state, tmp, it);
  return state;
}

}  // namespace

int main() {
  std::printf("2-D heat solver, %zux%zu grid (%0.1f MB state), %d iters, "
              "checkpoint every %d\n",
              kN, kN, kN * kN * 4.0 / 1e6, kTotalIters, kCheckpointEvery);

  // Ground truth: uninterrupted run.
  const std::vector<float> init(kN * kN, 0.0f);
  const std::vector<float> truth = RunSolver(kTotalIters, init);

  std::printf("\n%-12s %14s %14s %12s %14s\n", "checkpoint", "ckpt bytes",
              "ckpt time(ms)", "restart PSNR", "final max err");
  struct Mode {
    const char* name;
    double rel_eb;  // 0 = raw
  };
  for (const Mode mode : {Mode{"raw", 0.0}, Mode{"SZx 1e-4", 1e-4},
                          Mode{"SZx 1e-3", 1e-3}, Mode{"SZx 1e-2", 1e-2}}) {
    // Run with checkpointing until the crash point.
    std::vector<float> state = init;
    std::vector<float> tmp(state.size());
    ByteBuffer last_ckpt;
    std::vector<float> last_raw;
    int last_ckpt_iter = 0;
    double ckpt_seconds = 0.0;
    std::size_t ckpt_bytes = 0;
    for (int it = 0; it < kCrashAt; ++it) {
      Step(state, tmp, it);
      if ((it + 1) % kCheckpointEvery == 0) {
        const double t0 = Now();
        if (mode.rel_eb > 0.0) {
          Params p;
          p.mode = ErrorBoundMode::kValueRangeRelative;
          p.error_bound = mode.rel_eb;
          last_ckpt = Compress<float>(state, p);
          ckpt_bytes = last_ckpt.size();
        } else {
          last_raw = state;
          ckpt_bytes = state.size() * sizeof(float);
        }
        ckpt_seconds += Now() - t0;
        last_ckpt_iter = it + 1;
      }
    }
    // "Crash" -> restart from the last checkpoint and finish the run.
    std::vector<float> restored =
        mode.rel_eb > 0.0 ? Decompress<float>(last_ckpt) : last_raw;
    const double restart_psnr =
        mode.rel_eb > 0.0
            ? metrics::ComputeDistortion<float>(
                  RunSolver(last_ckpt_iter, init), restored)
                  .psnr_db
            : std::numeric_limits<double>::infinity();
    const std::vector<float> final_state =
        RunSolver(kTotalIters, std::move(restored), last_ckpt_iter);
    const auto d = metrics::ComputeDistortion<float>(truth, final_state);
    std::printf("%-12s %14zu %14.2f %12.1f %14.3e\n", mode.name, ckpt_bytes,
                ckpt_seconds * 1e3, restart_psnr, d.max_abs_error);
  }
  std::printf(
      "\nReading: lossy checkpoints shrink 5-20x; the restart perturbation\n"
      "is bounded by the checkpoint's error bound and decays further under\n"
      "the diffusive dynamics -- the viability argument of the paper's\n"
      "reference [16], at SZx speed.\n");
  return 0;
}
