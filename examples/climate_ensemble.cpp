// Post-hoc analysis storage for a climate/weather ensemble -- the Table 3 /
// Fig. 12 style workflow: compress every field of a Hurricane-ISABEL-like
// snapshot at several error bounds, tabulate ratio and quality per field,
// and show how to pick a bound per variable class (dynamic vs hydrometeor
// fields need different treatment).
//
//   ./examples/climate_ensemble
#include <cstdio>
#include <vector>

#include "core/compressor.hpp"
#include "data/datasets.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace szx;
  const auto fields = data::GenerateApp(data::App::kHurricane, 0.4);
  std::printf("Hurricane-ISABEL-style snapshot: %zu fields of %zu values\n",
              fields.size(), fields[0].size());

  for (const double eb : {1e-2, 1e-3}) {
    std::printf("\nREL error bound %.0e\n", eb);
    std::printf("%-8s %10s %10s %10s %12s %9s\n", "field", "CR", "PSNR",
                "SSIM", "max err", "const%");
    double total_raw = 0.0, total_comp = 0.0;
    for (const auto& f : fields) {
      Params p;
      p.mode = ErrorBoundMode::kValueRangeRelative;
      p.error_bound = eb;
      CompressionStats stats;
      const ByteBuffer stream = Compress<float>(f.values, p, &stats);
      const auto recon = Decompress<float>(stream);
      const auto d = metrics::ComputeDistortion<float>(f.values, recon);
      // Mid-altitude slice SSIM (2-D metric on a 3-D field).
      const std::size_t ny = f.dims[1], nx = f.dims[2];
      const std::size_t z = f.dims[0] / 2;
      const double ssim = metrics::ComputeSsim2D<float>(
          std::span<const float>(f.values).subspan(z * ny * nx, ny * nx),
          std::span<const float>(recon).subspan(z * ny * nx, ny * nx), nx,
          ny);
      std::printf("%-8s %10.2f %10.2f %10.4f %12.3e %8.1f%%\n",
                  f.name.c_str(), stats.CompressionRatio(sizeof(float)),
                  d.psnr_db, ssim, d.max_abs_error,
                  100.0 * static_cast<double>(stats.num_constant_blocks) /
                      static_cast<double>(stats.num_blocks));
      total_raw += static_cast<double>(f.size_bytes());
      total_comp += static_cast<double>(stream.size());
    }
    std::printf("snapshot: %.1f MB -> %.1f MB (overall %.2fx)\n",
                total_raw / 1e6, total_comp / 1e6, total_raw / total_comp);
  }
  std::printf(
      "\nNote the split the paper's Table 3 shows: hydrometeor fields\n"
      "(CLOUD/QSNOW/...) with their zero plateaus compress far better than\n"
      "the dynamic fields (U/V/W/TC/P); an ensemble pipeline can afford a\n"
      "tighter bound on the former at negligible cost.\n");
  return 0;
}
