// Online instrument data compression -- the paper's second motivating use
// case (Sec. 1): LCLS-II-class light sources emit detector frames at rates
// (250 GB/s facility-wide) that must be compressed on the fly before
// hitting the parallel file system.
//
// This example simulates a detector frame stream (2-D diffraction-pattern-
// like frames with Bragg-peak sparsity), compresses each frame as it
// "arrives", and reports sustained throughput against a per-node ingest
// target, comparing SZx with the SZ- and ZFP-style baselines.
//
//   ./examples/instrument_stream [frames=64]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/compressor.hpp"
#include "data/noise.hpp"
#include "szref/szref.hpp"
#include "zfpref/zfpref.hpp"

namespace {

using namespace szx;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A detector frame: smooth background + sharp Bragg-like peaks that move
// from frame to frame.
std::vector<float> MakeFrame(std::size_t ny, std::size_t nx, int frame) {
  std::vector<float> img(ny * nx);
  for (std::size_t y = 0; y < ny; ++y) {
    data::FbmRow(0.3 + 0.01 * frame, 2.0 / static_cast<double>(nx), nx,
                 2.0 * static_cast<double>(y) / static_cast<double>(ny),
                 0.37 + 0.05 * frame, 1234, 3, 0.5,
                 &img[y * nx]);
  }
  for (auto& v : img) v = 40.0f + 25.0f * v;  // background level
  // Bragg peaks on a rotating lattice.
  const double angle = 0.02 * frame;
  for (int py = 1; py < 8; ++py) {
    for (int px = 1; px < 8; ++px) {
      const double cx = nx * (0.5 + 0.4 * std::cos(angle + px)) * px / 8.0;
      const double cy = ny * (0.5 + 0.4 * std::sin(angle + py)) * py / 8.0;
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          const auto x = static_cast<std::ptrdiff_t>(cx) + dx;
          const auto y = static_cast<std::ptrdiff_t>(cy) + dy;
          if (x < 0 || y < 0 || x >= static_cast<std::ptrdiff_t>(nx) ||
              y >= static_cast<std::ptrdiff_t>(ny)) {
            continue;
          }
          img[y * nx + x] += 4000.0f * std::exp(-0.5f * (dx * dx + dy * dy));
        }
      }
    }
  }
  return img;
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 64;
  const std::size_t ny = 512, nx = 512;
  const double frame_mb = static_cast<double>(ny * nx * sizeof(float)) / 1e6;
  std::printf("stream: %d frames of %zux%zu float32 (%.1f MB each)\n",
              frames, ny, nx, frame_mb);

  // Pre-generate frames so generation cost stays out of the timing.
  std::vector<std::vector<float>> stream;
  stream.reserve(frames);
  for (int f = 0; f < frames; ++f) stream.push_back(MakeFrame(ny, nx, f));

  const double rel_eb = 1e-3;
  struct Result {
    const char* name;
    double seconds;
    std::size_t bytes;
  };
  std::vector<Result> results;

  {  // SZx
    double t0 = Now();
    std::size_t bytes = 0;
    for (const auto& img : stream) {
      Params p;
      p.mode = ErrorBoundMode::kValueRangeRelative;
      p.error_bound = rel_eb;
      bytes += Compress<float>(img, p).size();
    }
    results.push_back({"SZx", Now() - t0, bytes});
  }
  {  // SZ-style
    double t0 = Now();
    std::size_t bytes = 0;
    const std::size_t dims[] = {ny, nx};
    for (const auto& img : stream) {
      szref::SzParams p;
      p.mode = ErrorBoundMode::kValueRangeRelative;
      p.error_bound = rel_eb;
      bytes += szref::SzCompress(img, dims, p).size();
    }
    results.push_back({"SZ", Now() - t0, bytes});
  }
  {  // ZFP-style
    double t0 = Now();
    std::size_t bytes = 0;
    const std::size_t dims[] = {ny, nx};
    for (const auto& img : stream) {
      zfpref::ZfpParams p;
      p.mode = ErrorBoundMode::kValueRangeRelative;
      p.error_bound = rel_eb;
      bytes += zfpref::ZfpCompress(img, dims, p).size();
    }
    results.push_back({"ZFP", Now() - t0, bytes});
  }

  const double total_mb = frame_mb * frames;
  std::printf("\n%-6s %12s %10s %14s\n", "codec", "MB/s", "ratio",
              "frames/s");
  for (const auto& r : results) {
    std::printf("%-6s %12.1f %10.2f %14.1f\n", r.name,
                total_mb / r.seconds,
                total_mb * 1e6 / static_cast<double>(r.bytes),
                frames / r.seconds);
  }
  std::printf(
      "\nAt LCLS-II-class rates every node must sustain its ingest share;\n"
      "the MB/s column decides how many nodes (or GPUs; see the fig14-15\n"
      "bench) the online reduction stage needs.\n");
  return 0;
}
