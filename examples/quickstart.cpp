// Quickstart: compress a scientific field with SZx, inspect the stream,
// decompress, and verify the error bound -- the 60-second tour of the
// public API.
//
//   ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/compressor.hpp"
#include "data/datasets.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace szx;

  // 1. Get some data: a Miranda-style turbulence field (or bring your own
  //    float array -- any contiguous buffer works).
  const data::Field field =
      data::GenerateField(data::App::kMiranda, "density", 0.4);
  std::printf("input: %s, %zu values (%.1f MB)\n", field.name.c_str(),
              field.size(), static_cast<double>(field.size_bytes()) / 1e6);

  // 2. Pick parameters.  The default is a value-range-relative bound of
  //    1e-3 with block size 128 (the paper's recommended setting).
  Params params;
  params.mode = ErrorBoundMode::kValueRangeRelative;
  params.error_bound = 1e-3;

  // 3. Compress.
  CompressionStats stats;
  const ByteBuffer stream = Compress<float>(field.values, params, &stats);
  std::printf("compressed: %zu bytes, ratio %.2fx\n", stream.size(),
              stats.CompressionRatio(sizeof(float)));
  std::printf("  %llu blocks, %llu constant (%.1f%%), abs bound %.3g\n",
              static_cast<unsigned long long>(stats.num_blocks),
              static_cast<unsigned long long>(stats.num_constant_blocks),
              100.0 * static_cast<double>(stats.num_constant_blocks) /
                  static_cast<double>(stats.num_blocks),
              stats.absolute_bound);

  // 4. Streams are self-describing; you can inspect one without decoding.
  const Header header = PeekHeader(stream);
  std::printf("header: dtype=%s, block=%u, %llu elements\n",
              header.dtype == 0 ? "float32" : "float64", header.block_size,
              static_cast<unsigned long long>(header.num_elements));

  // 5. Decompress and verify quality.
  const std::vector<float> recon = Decompress<float>(stream);
  const auto d = metrics::ComputeDistortion<float>(field.values, recon);
  std::printf("reconstruction: max err %.3g (bound %.3g), PSNR %.2f dB\n",
              d.max_abs_error, stats.absolute_bound, d.psnr_db);
  if (d.max_abs_error > stats.absolute_bound) {
    std::printf("ERROR: bound violated!\n");
    return 1;
  }
  std::printf("error bound respected.\n");
  return 0;
}
