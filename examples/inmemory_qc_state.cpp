// In-memory compression for quantum-circuit simulation -- the paper's
// headline motivating use case (Sec. 1, Wu et al. SC'19): full-state
// simulation needs 2^n amplitudes; storing rank blocks compressed in
// memory trades compute for capacity, and the compressor's speed decides
// whether the trade is viable.
//
// This example simulates a (classically emulated) n-qubit state evolved by
// layers of single-qubit rotations.  Amplitude blocks live compressed in
// memory; each gate layer decompresses a block, updates it, and
// recompresses.  We report the memory footprint and the time overhead
// relative to keeping everything raw -- the "~20x worst case" the paper
// quotes for SZ-class compressors shrinks dramatically with SZx.
//
//   ./examples/inmemory_qc_state [num_qubits=22]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/compressor.hpp"

namespace {

using namespace szx;

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One "gate layer": a phase-like smooth update of the amplitudes in place.
void ApplyLayer(std::span<float> amp, int layer) {
  const double w = 1e-4 * (layer + 1);
  for (std::size_t i = 0; i < amp.size(); ++i) {
    amp[i] = static_cast<float>(
        amp[i] * std::cos(w) +
        0.001 * std::sin(w * static_cast<double>(i & 1023)));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int qubits = argc > 1 ? std::atoi(argv[1]) : 22;
  const std::size_t n = std::size_t{1} << qubits;
  const std::size_t block_elems = 1 << 18;  // 1 MB working set per block
  const int layers = 6;
  std::printf("simulating %d qubits: %zu amplitudes (%.1f MB raw)\n", qubits,
              n, static_cast<double>(n * sizeof(float)) / 1e6);

  // Initial smooth state (a superposition with slowly varying amplitudes).
  std::vector<float> state(n);
  for (std::size_t i = 0; i < n; ++i) {
    state[i] = static_cast<float>(
        std::cos(6.28 * static_cast<double>(i) / static_cast<double>(n)) /
        std::sqrt(static_cast<double>(n)));
  }

  Params params;
  params.mode = ErrorBoundMode::kValueRangeRelative;
  params.error_bound = 1e-4;  // the paper's high-precision QC regime

  // --- raw baseline -------------------------------------------------------
  std::vector<float> raw_state = state;
  const double t_raw0 = Now();
  for (int layer = 0; layer < layers; ++layer) {
    for (std::size_t off = 0; off < n; off += block_elems) {
      ApplyLayer(std::span<float>(raw_state).subspan(off, block_elems),
                 layer);
    }
  }
  const double t_raw = Now() - t_raw0;

  // --- compressed-in-memory run -------------------------------------------
  const std::size_t num_blocks = n / block_elems;
  // szx-lint: allow(unchecked-alloc) -- block count computed from the local array size, not parsed from a stream
  std::vector<ByteBuffer> compressed(num_blocks);
  std::size_t resident = 0;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    compressed[b] = Compress<float>(
        std::span<const float>(state).subspan(b * block_elems, block_elems),
        params);
    resident += compressed[b].size();
  }
  std::printf("compressed state: %.1f MB resident (ratio %.2fx)\n",
              static_cast<double>(resident) / 1e6,
              static_cast<double>(n * sizeof(float)) /
                  static_cast<double>(resident));

  std::vector<float> work(block_elems);
  const double t_c0 = Now();
  for (int layer = 0; layer < layers; ++layer) {
    for (std::size_t b = 0; b < num_blocks; ++b) {
      DecompressInto<float>(compressed[b], work);
      ApplyLayer(work, layer);
      compressed[b] = Compress<float>(work, params);
    }
  }
  const double t_comp = Now() - t_c0;

  resident = 0;
  for (const auto& c : compressed) resident += c.size();
  std::printf("after %d layers: %.1f MB resident\n", layers,
              static_cast<double>(resident) / 1e6);
  std::printf("raw run: %.3f s, compressed-in-memory run: %.3f s\n", t_raw,
              t_comp);
  std::printf("time overhead of in-memory compression: %.2fx\n",
              t_comp / t_raw);
  std::printf(
      "(the paper reports up to ~20x overhead with SZ-class compressors;\n"
      " SZx's speed is what makes the memory/time trade attractive.)\n");
  return 0;
}
