// Region-of-interest queries on compressed data: keep a large 3-D snapshot
// compressed in memory (or on disk) and decompress only the slabs an
// analysis touches -- the post-hoc-analysis pattern the paper's I/O
// experiment (Fig. 16) feeds, made cheap by SZx's per-block size index.
//
//   ./examples/roi_query
#include <chrono>
#include <cstdio>

#include "core/random_access.hpp"
#include "data/datasets.hpp"
#include "metrics/quality_report.hpp"

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main() {
  using namespace szx;

  // A Nyx-style cosmology box, compressed once.
  const data::Field f =
      data::GenerateField(data::App::kNyx, "baryon_density", 0.6);
  const std::size_t nz = f.dims[0], ny = f.dims[1], nx = f.dims[2];
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  CompressionStats stats;
  const ByteBuffer stream = Compress<float>(f.values, p, &stats);
  std::printf("snapshot: %zux%zux%zu (%.1f MB) compressed to %.1f MB "
              "(%.2fx)\n",
              nz, ny, nx, static_cast<double>(f.size_bytes()) / 1e6,
              static_cast<double>(stream.size()) / 1e6,
              stats.CompressionRatio(sizeof(float)));

  // Analysis pass 1: a single z-slab (a halo-finding window, say).
  const std::size_t slab_z = nz / 2;
  const std::size_t slab_elems = 4 * ny * nx;  // 4 slices
  double t0 = Now();
  const auto slab =
      DecompressRange<float>(stream, slab_z * ny * nx, slab_elems);
  const double t_slab = Now() - t0;

  // Versus decompressing everything to read the same slab.
  t0 = Now();
  const auto full = Decompress<float>(stream);
  const double t_full = Now() - t0;

  std::printf("slab query (4/%zu slices): %.2f ms vs %.2f ms full "
              "decompression (%.1fx less work)\n",
              nz, t_slab * 1e3, t_full * 1e3, t_full / t_slab);

  // The slab agrees exactly with the full decompression.
  for (std::size_t i = 0; i < slab_elems; ++i) {
    if (slab[i] != full[slab_z * ny * nx + i]) {
      std::printf("MISMATCH at %zu\n", i);
      return 1;
    }
  }

  // Analysis pass 2: scan max density per slab using ROI queries only.
  t0 = Now();
  float global_max = 0.0f;
  std::size_t argmax_z = 0;
  for (std::size_t z = 0; z < nz; ++z) {
    const auto slice = DecompressRange<float>(stream, z * ny * nx, ny * nx);
    for (const float v : slice) {
      if (v > global_max) {
        global_max = v;
        argmax_z = z;
      }
    }
  }
  std::printf("densest slab: z=%zu (peak %.4g), found via per-slab queries "
              "in %.2f ms\n",
              argmax_z, global_max, (Now() - t0) * 1e3);

  // Quality of the region the analysis actually consumed.
  const std::size_t dims2[] = {4 * ny, nx};
  const auto report = metrics::AssessQuality<float>(
      std::span<const float>(f.values).subspan(slab_z * ny * nx, slab_elems),
      slab, dims2, 0);
  std::printf("slab reconstruction quality:\n");
  report.Print(stdout);
  return 0;
}
