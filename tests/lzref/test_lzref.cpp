// Lossless LZ baseline: exact round trips, compression on redundant data,
// corruption rejection.
#include "lzref/lzref.hpp"

#include <gtest/gtest.h>

#include <span>

#include "data/datasets.hpp"
#include "../test_util.hpp"

namespace szx::lzref {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testing::Rng;

ByteBuffer ToBytes(const std::string& s) {
  const auto bytes = std::as_bytes(std::span<const char>(s));
  return ByteBuffer(bytes.begin(), bytes.end());
}

TEST(Lzref, EmptyInput) {
  const auto stream = LzCompress({});
  const auto out = LzDecompress(stream);
  EXPECT_TRUE(out.empty());
}

TEST(Lzref, ShortInputsRoundTrip) {
  Rng rng(1);
  for (std::size_t n = 1; n <= 40; ++n) {
    ByteBuffer in(n);
    for (auto& b : in) {
      b = std::byte{static_cast<std::uint8_t>(rng.Next() & 0xff)};
    }
    EXPECT_EQ(LzDecompress(LzCompress(in)), in) << n;
  }
}

TEST(Lzref, TextRoundTripAndCompression) {
  std::string text;
  for (int i = 0; i < 500; ++i) {
    text += "the quick brown fox jumps over the lazy dog; ";
  }
  const ByteBuffer in = ToBytes(text);
  LzStats stats;
  const auto stream = LzCompress(in, &stats);
  EXPECT_LT(stream.size(), in.size() / 5);
  // Fully periodic text collapses into a handful of giant matches.
  EXPECT_GT(stats.num_matches, 0u);
  EXPECT_EQ(LzDecompress(stream), in);
}

TEST(Lzref, RunLengthOverlappingMatches) {
  // A long run compresses via offset-1 overlapping matches.
  ByteBuffer in(100000, std::byte{0x41});
  const auto stream = LzCompress(in);
  EXPECT_LT(stream.size(), 600u);
  EXPECT_EQ(LzDecompress(stream), in);
}

TEST(Lzref, IncompressibleRandomBytesRoundTrip) {
  Rng rng(2);
  ByteBuffer in(200000);
  for (auto& b : in) {
    b = std::byte{static_cast<std::uint8_t>(rng.Next() & 0xff)};
  }
  const auto stream = LzCompress(in);
  // Bounded expansion.
  EXPECT_LT(stream.size(), in.size() + in.size() / 100 + 256);
  EXPECT_EQ(LzDecompress(stream), in);
}

TEST(Lzref, FloatFieldsRoundTripExactly) {
  for (auto pat : {Pattern::kSmoothSine, Pattern::kUniformNoise,
                   Pattern::kSparseSpikes}) {
    const auto data = MakePattern<float>(pat, 50000, 7);
    const auto stream = LzCompressFloats(data);
    const auto out = LzDecompressFloats(stream);
    ASSERT_EQ(out.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(data[i]),
                std::bit_cast<std::uint32_t>(out[i]));
    }
  }
}

TEST(Lzref, ScientificFloatsGetModestRatio) {
  // The paper's Table 3 bottom row: lossless CR on float fields is only
  // ~1.1-2, far below the lossy compressors.
  const data::Field f =
      data::GenerateField(data::App::kMiranda, "density", 0.25);
  const auto stream = LzCompressFloats(f.values);
  const double cr = static_cast<double>(f.size_bytes()) /
                    static_cast<double>(stream.size());
  EXPECT_GT(cr, 0.95);
  EXPECT_LT(cr, 6.0);
}

TEST(Lzref, SparseFieldCompressesWell) {
  const data::Field f =
      data::GenerateField(data::App::kHurricane, "QSNOW", 0.3);
  const auto stream = LzCompressFloats(f.values);
  const double cr = static_cast<double>(f.size_bytes()) /
                    static_cast<double>(stream.size());
  EXPECT_GT(cr, 2.0);  // zero plateaus LZ-compress
}

TEST(Lzref, ChecksumDetectsCorruption) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 10000, 3);
  auto stream = LzCompressFloats(data);
  // Flip a literal byte beyond the header.
  stream[stream.size() / 2] ^= std::byte{0x01};
  EXPECT_THROW(LzDecompress(stream), Error);
}

TEST(Lzref, TruncationRejected) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 10000, 3);
  const auto stream = LzCompressFloats(data);
  EXPECT_THROW(LzDecompress(ByteSpan(stream.data(), stream.size() - 5)),
               Error);
  EXPECT_THROW(LzDecompress(ByteSpan(stream.data(), 4)), Error);
}

TEST(Lzref, BadMagicRejected) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 100, 3);
  auto stream = LzCompressFloats(data);
  stream[0] = std::byte{'X'};
  EXPECT_THROW(LzDecompress(stream), Error);
}

TEST(Lzref, NonFloatSizedStreamRejectedByFloatWrapper) {
  const ByteBuffer in(7, std::byte{1});
  const auto stream = LzCompress(in);
  EXPECT_THROW(LzDecompressFloats(stream), Error);
}

}  // namespace
}  // namespace szx::lzref
