// SZ 2.1-style regression+Lorenzo baseline tests.
#include "szref/sz2.hpp"

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "szref/szref.hpp"
#include "../test_util.hpp"

namespace szx::szref {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testing::WithinBound;

class Sz2Sweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Sz2Sweep, AbsoluteBoundHolds1D) {
  const auto [pat, eb] = GetParam();
  const auto data = MakePattern<float>(static_cast<Pattern>(pat), 20000, 7);
  Sz2Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = eb;
  const std::size_t dims[] = {data.size()};
  Sz2Stats stats;
  const auto stream = Sz2Compress(data, dims, p, &stats);
  const auto out = Sz2Decompress(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, eb));
}

INSTANTIATE_TEST_SUITE_P(Sweep, Sz2Sweep,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(1e-1, 1e-4)));

TEST(Sz2, ThreeDimensionalBoundOnRealFields) {
  for (const char* field : {"density", "pressure", "velocity-x"}) {
    const data::Field f =
        data::GenerateField(data::App::kMiranda, field, 0.25);
    Sz2Params p;
    p.mode = ErrorBoundMode::kValueRangeRelative;
    p.error_bound = 1e-3;
    Sz2Stats stats;
    const auto stream = Sz2Compress(f.values, f.dims, p, &stats);
    const auto out = Sz2Decompress(stream);
    EXPECT_TRUE(WithinBound<float>(f.span(), out, stats.absolute_bound))
        << field;
  }
}

TEST(Sz2, RegressionBlocksAreSelectedOnNoisyLinearData) {
  // Lorenzo reproduces hyperplanes exactly (order-1 polynomial
  // reproduction), so regression's winning regime is *noisy* linear data:
  // the 7-neighbour Lorenzo stencil amplifies white noise ~8x in variance
  // while the fitted hyperplane averages it away.
  const std::size_t dims[] = {24, 24, 24};
  std::vector<float> data(24 * 24 * 24);
  szx::testing::Rng rng(11);
  std::size_t i = 0;
  for (std::size_t z = 0; z < 24; ++z) {
    for (std::size_t y = 0; y < 24; ++y) {
      for (std::size_t x = 0; x < 24; ++x, ++i) {
        data[i] = static_cast<float>(3.0 * x + 2.0 * y - z + 100.0 +
                                     rng.Uniform(-0.5, 0.5));
      }
    }
  }
  Sz2Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 0.05;
  Sz2Stats stats;
  const auto stream = Sz2Compress(data, dims, p, &stats);
  EXPECT_GT(stats.num_regression_blocks, stats.num_blocks / 2);
  const auto out = Sz2Decompress(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, 0.05));
}

TEST(Sz2, BeatsClassicSzOnSmoothFields) {
  // The point of the regression upgrade (and of the paper calling SZ 2.1
  // the CR leader): better ratios on smooth multidimensional data.
  const data::Field f =
      data::GenerateField(data::App::kMiranda, "pressure", 0.25);
  Sz2Params p2;
  p2.mode = ErrorBoundMode::kValueRangeRelative;
  p2.error_bound = 1e-3;
  const auto s2 = Sz2Compress(f.values, f.dims, p2);
  SzParams p1;
  p1.mode = ErrorBoundMode::kValueRangeRelative;
  p1.error_bound = 1e-3;
  const auto s1 = SzCompress(f.values, f.dims, p1);
  EXPECT_LT(s2.size(), static_cast<std::size_t>(
                           static_cast<double>(s1.size()) * 1.05));
}

TEST(Sz2, MixedSelectorsOnHeterogeneousData) {
  // Smooth half + noisy half: both predictor kinds should be used.
  const std::size_t dims[] = {12, 48, 48};
  std::vector<float> data(12 * 48 * 48);
  szx::testing::Rng rng(3);
  std::size_t i = 0;
  for (std::size_t z = 0; z < 12; ++z) {
    for (std::size_t y = 0; y < 48; ++y) {
      for (std::size_t x = 0; x < 48; ++x, ++i) {
        data[i] = z < 6 ? static_cast<float>(0.5 * x + 0.2 * y)
                        : static_cast<float>(rng.Uniform(-10, 10));
      }
    }
  }
  Sz2Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-2;
  Sz2Stats stats;
  const auto stream = Sz2Compress(data, dims, p, &stats);
  EXPECT_GT(stats.num_regression_blocks, 0u);
  EXPECT_LT(stats.num_regression_blocks, stats.num_blocks);
  const auto out = Sz2Decompress(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, 1e-2));
}

TEST(Sz2, NonFiniteValuesEscape) {
  auto data = MakePattern<float>(Pattern::kSmoothSine, 4000, 5);
  data[123] = std::numeric_limits<float>::quiet_NaN();
  data[3000] = std::numeric_limits<float>::infinity();
  Sz2Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-2;
  const std::size_t dims[] = {data.size()};
  const auto out = Sz2Decompress(Sz2Compress(data, dims, p));
  EXPECT_TRUE(std::isnan(out[123]));
  EXPECT_EQ(out[3000], std::numeric_limits<float>::infinity());
}

TEST(Sz2, EdgeBlocksAndRaggedDims) {
  const std::size_t dims[] = {7, 13, 19};  // nothing divides the side
  const auto data = MakePattern<float>(Pattern::kNoisySine, 7 * 13 * 19, 9);
  Sz2Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  const auto out = Sz2Decompress(Sz2Compress(data, dims, p));
  EXPECT_TRUE(WithinBound<float>(data, out, 1e-3));
}

TEST(Sz2, BadParamsAndStreamsRejected) {
  const std::vector<float> data(100, 1.0f);
  const std::size_t dims[] = {100};
  Sz2Params p;
  p.error_bound = 0.0;
  EXPECT_THROW(Sz2Compress(data, dims, p), Error);
  p.error_bound = 1e-3;
  p.block_side = 1;
  EXPECT_THROW(Sz2Compress(data, dims, p), Error);
  p.block_side = 0;
  const auto stream = Sz2Compress(data, dims, p);
  EXPECT_THROW(Sz2Decompress(ByteSpan(stream.data(), stream.size() / 2)),
               Error);
  EXPECT_THROW(Sz2Decompress(ByteSpan(stream.data(), 3)), Error);
}

TEST(Sz2, EmptyInput) {
  Sz2Params p;
  const std::size_t dims[] = {0};
  EXPECT_TRUE(
      Sz2Decompress(Sz2Compress(std::span<const float>(), dims, p)).empty());
}

}  // namespace
}  // namespace szx::szref
