// Canonical Huffman coder tests.
#include "szref/huffman.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx::szref {
namespace {

using szx::testing::Rng;

std::vector<std::uint16_t> RoundTrip(const std::vector<std::uint16_t>& syms) {
  HuffmanCodec enc;
  enc.BuildFromSymbols(syms);
  ByteBuffer table;
  enc.WriteTable(table);
  ByteBuffer bits;
  BitWriter bw(bits);
  enc.Encode(syms, bw);
  bw.Flush();

  HuffmanCodec dec;
  ByteCursor tr(table);
  dec.ReadTable(tr);
  BitReader br(bits);
  std::vector<std::uint16_t> out;
  dec.Decode(br, syms.size(), out);
  return out;
}

TEST(Huffman, SingleSymbol) {
  const std::vector<std::uint16_t> syms(100, 7);
  EXPECT_EQ(RoundTrip(syms), syms);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 50; ++i) {
    syms.push_back(i % 3 == 0 ? 1000 : 2000);
  }
  EXPECT_EQ(RoundTrip(syms), syms);
}

TEST(Huffman, SkewedDistributionRoundTrip) {
  Rng rng(1);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 20000; ++i) {
    // Geometric-ish skew around 32768 like SZ quantization codes.
    const int delta = static_cast<int>(rng.Gaussian() * 6.0);
    syms.push_back(static_cast<std::uint16_t>(32768 + delta));
  }
  EXPECT_EQ(RoundTrip(syms), syms);
}

TEST(Huffman, UniformWideAlphabetRoundTrip) {
  Rng rng(2);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 30000; ++i) {
    syms.push_back(static_cast<std::uint16_t>(rng.Next() & 0xffff));
  }
  EXPECT_EQ(RoundTrip(syms), syms);
}

TEST(Huffman, SkewedDataCompresses) {
  Rng rng(3);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 50000; ++i) {
    syms.push_back(rng.Next() % 100 < 90 ? 5 : static_cast<std::uint16_t>(
                                                   rng.Next() % 64));
  }
  HuffmanCodec enc;
  enc.BuildFromSymbols(syms);
  // 90% of symbols are one value: far fewer than 16 bits per symbol.
  EXPECT_LT(enc.EncodedBits(syms), syms.size() * 3);
}

TEST(Huffman, EmptyBuildThrows) {
  HuffmanCodec enc;
  EXPECT_THROW(enc.BuildFromSymbols({}), Error);
}

TEST(Huffman, EncodeUnknownSymbolThrows) {
  const std::vector<std::uint16_t> syms(10, 4);
  HuffmanCodec enc;
  enc.BuildFromSymbols(syms);
  ByteBuffer bits;
  BitWriter bw(bits);
  const std::vector<std::uint16_t> other(1, 5);
  EXPECT_THROW(enc.Encode(other, bw), Error);
}

TEST(Huffman, CorruptTableRejected) {
  ByteBuffer table;
  ByteWriter w(table);
  w.Write<std::uint32_t>(1);
  w.Write<std::uint16_t>(3);
  w.Write<std::uint8_t>(60);  // invalid code length
  HuffmanCodec dec;
  ByteCursor r(table);
  EXPECT_THROW(dec.ReadTable(r), Error);
}

TEST(Huffman, CodeLengthsSatisfyKraft) {
  Rng rng(5);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 5000; ++i) {
    syms.push_back(static_cast<std::uint16_t>(rng.Next() % 500));
  }
  HuffmanCodec enc;
  enc.BuildFromSymbols(syms);
  EXPECT_LE(enc.max_code_length(), 32);
}

}  // namespace
}  // namespace szx::szref
