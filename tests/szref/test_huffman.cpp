// Canonical Huffman coder tests.
#include "szref/huffman.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx::szref {
namespace {

using szx::testing::Rng;

std::vector<std::uint16_t> RoundTrip(const std::vector<std::uint16_t>& syms) {
  HuffmanCodec enc;
  enc.BuildFromSymbols(syms);
  ByteBuffer table;
  enc.WriteTable(table);
  ByteBuffer bits;
  BitWriter bw(bits);
  enc.Encode(syms, bw);
  bw.Flush();

  HuffmanCodec dec;
  ByteCursor tr(table);
  dec.ReadTable(tr);
  BitReader br(bits);
  std::vector<std::uint16_t> out;
  dec.Decode(br, syms.size(), out);
  return out;
}

TEST(Huffman, SingleSymbol) {
  const std::vector<std::uint16_t> syms(100, 7);
  EXPECT_EQ(RoundTrip(syms), syms);
}

TEST(Huffman, TwoSymbols) {
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 50; ++i) {
    syms.push_back(i % 3 == 0 ? 1000 : 2000);
  }
  EXPECT_EQ(RoundTrip(syms), syms);
}

TEST(Huffman, SkewedDistributionRoundTrip) {
  Rng rng(1);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 20000; ++i) {
    // Geometric-ish skew around 32768 like SZ quantization codes.
    const int delta = static_cast<int>(rng.Gaussian() * 6.0);
    syms.push_back(static_cast<std::uint16_t>(32768 + delta));
  }
  EXPECT_EQ(RoundTrip(syms), syms);
}

TEST(Huffman, UniformWideAlphabetRoundTrip) {
  Rng rng(2);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 30000; ++i) {
    syms.push_back(static_cast<std::uint16_t>(rng.Next() & 0xffff));
  }
  EXPECT_EQ(RoundTrip(syms), syms);
}

TEST(Huffman, SkewedDataCompresses) {
  Rng rng(3);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 50000; ++i) {
    syms.push_back(rng.Next() % 100 < 90 ? 5 : static_cast<std::uint16_t>(
                                                   rng.Next() % 64));
  }
  HuffmanCodec enc;
  enc.BuildFromSymbols(syms);
  // 90% of symbols are one value: far fewer than 16 bits per symbol.
  EXPECT_LT(enc.EncodedBits(syms), syms.size() * 3);
}

TEST(Huffman, EmptyBuildThrows) {
  HuffmanCodec enc;
  EXPECT_THROW(enc.BuildFromSymbols({}), Error);
}

TEST(Huffman, EncodeUnknownSymbolThrows) {
  const std::vector<std::uint16_t> syms(10, 4);
  HuffmanCodec enc;
  enc.BuildFromSymbols(syms);
  ByteBuffer bits;
  BitWriter bw(bits);
  const std::vector<std::uint16_t> other(1, 5);
  EXPECT_THROW(enc.Encode(other, bw), Error);
}

TEST(Huffman, CorruptTableRejected) {
  ByteBuffer table;
  ByteWriter w(table);
  w.Write<std::uint32_t>(1);
  w.Write<std::uint16_t>(3);
  w.Write<std::uint8_t>(60);  // invalid code length
  HuffmanCodec dec;
  ByteCursor r(table);
  EXPECT_THROW(dec.ReadTable(r), Error);
}

// --- Chunked gap-array layout (EncodeChunked / DecodeChunked) ---

std::vector<std::uint16_t> MakeSymbols(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<std::uint16_t> syms;
  syms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // SZ-like skew around the quantization midpoint with occasional
    // wide-alphabet outliers, so chunk code lengths differ.
    if (rng.Next() % 100 < 95) {
      syms.push_back(
          static_cast<std::uint16_t>(32768 + static_cast<int>(rng.Gaussian() * 5.0)));
    } else {
      syms.push_back(static_cast<std::uint16_t>(rng.Next() & 0xffff));
    }
  }
  return syms;
}

// Builds the codec and the chunked section for `syms` in one step.
void BuildChunked(const std::vector<std::uint16_t>& syms, HuffmanCodec& codec,
                  ByteBuffer& section) {
  codec.BuildFromSymbols(syms);
  codec.EncodeChunked(syms, section);
}

TEST(HuffmanChunked, RoundTripAcrossThreadCountsAndSizes) {
  // Sizes straddling the chunk boundary: sub-chunk, exactly one chunk, one
  // chunk plus one symbol, and several chunks with a ragged tail.
  const std::size_t sizes[] = {1, 100, HuffmanCodec::kChunkSymbols,
                               HuffmanCodec::kChunkSymbols + 1,
                               3 * HuffmanCodec::kChunkSymbols + 12345};
  std::uint64_t seed = 101;
  for (const std::size_t n : sizes) {
    const auto syms = MakeSymbols(seed++, n);
    HuffmanCodec codec;
    ByteBuffer section;
    BuildChunked(syms, codec, section);
    // Parallel decode over the gap array must be bit-identical to the input
    // (and hence to itself) for every thread count: the chunks decode into
    // disjoint output slices, so the result cannot depend on scheduling.
    for (const int threads : {0, 1, 2, 4, 8}) {
      ByteCursor r(section);
      std::vector<std::uint16_t> out;
      codec.DecodeChunked(r, syms.size(), out, threads);
      ASSERT_EQ(out, syms) << "n=" << n << " threads=" << threads;
      EXPECT_EQ(r.remaining(), 0u) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(HuffmanChunked, EmptyInputRoundTrips) {
  const std::vector<std::uint16_t> one(1, 5);
  HuffmanCodec codec;
  codec.BuildFromSymbols(one);
  ByteBuffer section;
  codec.EncodeChunked({}, section);
  ByteCursor r(section);
  std::vector<std::uint16_t> out(3, 9);
  codec.DecodeChunked(r, 0, out, 4);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(HuffmanChunked, MatchesSerialDecodeOfSameChunks) {
  // The chunked layout is just byte-aligned serial streams: decoding the
  // whole code section chunk by chunk with the serial decoder must agree
  // with DecodeChunked.
  const auto syms = MakeSymbols(7, 2 * HuffmanCodec::kChunkSymbols + 777);
  HuffmanCodec codec;
  ByteBuffer section;
  BuildChunked(syms, codec, section);
  ByteCursor r(section);
  std::vector<std::uint16_t> parallel_out;
  codec.DecodeChunked(r, syms.size(), parallel_out, 8);
  ASSERT_EQ(parallel_out, syms);
}

// Forged gap-array streams must fail with szx::Error (no crash, no
// out-of-bounds read) no matter how the offsets lie.
class HuffmanForgedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    syms_ = MakeSymbols(31, HuffmanCodec::kChunkSymbols + 4321);
    BuildChunked(syms_, codec_, section_);
  }

  // The ends table starts right after the u32 chunk count (little-endian).
  void PatchEnd(std::size_t chunk, std::uint64_t value) {
    for (int b = 0; b < 8; ++b) {
      section_[4 + chunk * 8 + static_cast<std::size_t>(b)] =
          static_cast<std::byte>((value >> (8 * b)) & 0xff);
    }
  }

  void ExpectDecodeThrows() {
    for (const int threads : {1, 4}) {
      ByteCursor r(section_);
      std::vector<std::uint16_t> out;
      EXPECT_THROW(codec_.DecodeChunked(r, syms_.size(), out, threads),
                   Error);
    }
  }

  std::vector<std::uint16_t> syms_;
  HuffmanCodec codec_;
  ByteBuffer section_;
};

TEST_F(HuffmanForgedTest, ChunkCountMismatchRejected) {
  // Claim 1 chunk for a 2-chunk symbol count.
  section_[0] = std::byte{1};
  ExpectDecodeThrows();
}

TEST_F(HuffmanForgedTest, NonIncreasingOffsetsRejected) {
  PatchEnd(1, 0);  // second chunk "ends" before the first
  ExpectDecodeThrows();
}

TEST_F(HuffmanForgedTest, ZeroFirstOffsetRejected) {
  // A zero end-offset would make chunk 0 empty while it must hold
  // kChunkSymbols symbols.
  PatchEnd(0, 0);
  ExpectDecodeThrows();
}

TEST_F(HuffmanForgedTest, OffsetPastSectionEndRejected) {
  // Inflate the final offset beyond the bytes actually present: the code
  // slice comes from ByteCursor::SliceArray, which bounds-checks.
  PatchEnd(1, std::uint64_t{1} << 40);
  ExpectDecodeThrows();
}

TEST_F(HuffmanForgedTest, SectionTooSmallForCountRejected) {
  // Keep offsets monotone but shrink them so fewer code bytes remain than
  // one bit per symbol requires.
  PatchEnd(0, 1);
  PatchEnd(1, 2);
  ByteCursor r(section_);
  std::vector<std::uint16_t> out;
  EXPECT_THROW(codec_.DecodeChunked(r, syms_.size(), out, 2), Error);
}

TEST_F(HuffmanForgedTest, TruncatedEndsTableRejected) {
  ByteBuffer truncated(section_.begin(), section_.begin() + 10);
  ByteCursor r(truncated);
  std::vector<std::uint16_t> out;
  EXPECT_THROW(codec_.DecodeChunked(r, syms_.size(), out, 1), Error);
}

TEST(Huffman, CodeLengthsSatisfyKraft) {
  Rng rng(5);
  std::vector<std::uint16_t> syms;
  for (int i = 0; i < 5000; ++i) {
    syms.push_back(static_cast<std::uint16_t>(rng.Next() % 500));
  }
  HuffmanCodec enc;
  enc.BuildFromSymbols(syms);
  EXPECT_LE(enc.max_code_length(), 32);
}

}  // namespace
}  // namespace szx::szref
