// SZ-style baseline: error-bound property sweeps across dimensionalities,
// plus the OpenMP chunked variant.
#include "szref/szref.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "data/datasets.hpp"
#include "../test_util.hpp"

namespace szx::szref {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testing::WithinBound;

using Case = std::tuple<int /*pattern*/, double /*eb*/>;

class SzSweep1D : public ::testing::TestWithParam<Case> {};

TEST_P(SzSweep1D, AbsoluteBoundHolds) {
  const auto [pat, eb] = GetParam();
  const auto data =
      MakePattern<float>(static_cast<Pattern>(pat), 20000, 11);
  SzParams p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = eb;
  const std::size_t dims[] = {data.size()};
  SzStats stats;
  const auto stream = SzCompress(data, dims, p, &stats);
  EXPECT_EQ(stats.num_elements, data.size());
  const auto out = SzDecompress(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, eb));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SzSweep1D,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1e-1, 1e-3, 1e-5)));

TEST(Szref, TwoDimensionalLorenzo) {
  const data::Field f = data::GenerateField(data::App::kCesm, "TS", 0.2);
  SzParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  SzStats stats;
  const auto stream = SzCompress(f.values, f.dims, p, &stats);
  const auto out = SzDecompress(stream);
  EXPECT_TRUE(WithinBound<float>(f.span(), out, stats.absolute_bound));
  EXPECT_GT(static_cast<double>(f.size_bytes()) /
                static_cast<double>(stream.size()),
            4.0);
}

TEST(Szref, ThreeDimensionalLorenzo) {
  const data::Field f =
      data::GenerateField(data::App::kMiranda, "pressure", 0.25);
  SzParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  SzStats stats;
  const auto stream = SzCompress(f.values, f.dims, p, &stats);
  const auto out = SzDecompress(stream);
  EXPECT_TRUE(WithinBound<float>(f.span(), out, stats.absolute_bound));
}

TEST(Szref, HigherDimPredictionBeatsOneD) {
  // The multidimensional Lorenzo predictor is the reason SZ leads Table 3;
  // on a smooth 3-D field it must beat treating the data as 1-D.
  const data::Field f =
      data::GenerateField(data::App::kMiranda, "density", 0.25);
  SzParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  const auto s3 = SzCompress(f.values, f.dims, p);
  const std::size_t flat[] = {f.size()};
  const auto s1 = SzCompress(f.values, flat, p);
  EXPECT_LT(s3.size(), s1.size());
}

TEST(Szref, UnpredictableEscapePath) {
  // Wild data forces escapes; bound must still hold exactly (stored raw).
  auto data = MakePattern<float>(Pattern::kMixedScales, 5000, 17);
  SzParams p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  const std::size_t dims[] = {data.size()};
  SzStats stats;
  const auto stream = SzCompress(data, dims, p, &stats);
  EXPECT_GT(stats.num_unpredictable, 0u);
  const auto out = SzDecompress(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, 1e-3));
}

TEST(Szref, NonFiniteValuesEscapeExactly) {
  auto data = MakePattern<float>(Pattern::kSmoothSine, 1000, 3);
  data[17] = std::numeric_limits<float>::quiet_NaN();
  data[500] = std::numeric_limits<float>::infinity();
  SzParams p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-2;
  const std::size_t dims[] = {data.size()};
  const auto out = SzDecompress(SzCompress(data, dims, p));
  EXPECT_TRUE(std::isnan(out[17]));
  EXPECT_EQ(out[500], std::numeric_limits<float>::infinity());
}

TEST(Szref, EmptyAndTinyInputs) {
  SzParams p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  {
    const std::size_t dims[] = {0};
    const auto out =
        SzDecompress(SzCompress(std::span<const float>(), dims, p));
    EXPECT_TRUE(out.empty());
  }
  {
    const std::vector<float> one = {42.0f};
    const std::size_t dims[] = {1};
    const auto out = SzDecompress(SzCompress(one, dims, p));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0], 42.0f, 1e-3);
  }
}

TEST(Szref, BadParamsRejected) {
  const std::vector<float> data(10, 1.0f);
  const std::size_t dims[] = {10};
  SzParams p;
  p.error_bound = 0.0;
  EXPECT_THROW(SzCompress(data, dims, p), Error);
  p.error_bound = 1e-3;
  p.quant_bits = 2;
  EXPECT_THROW(SzCompress(data, dims, p), Error);
  const std::size_t bad_dims[] = {7};
  SzParams ok;
  EXPECT_THROW(SzCompress(data, bad_dims, ok), Error);
}

TEST(Szref, TruncatedStreamRejected) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 10000, 9);
  SzParams p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  const std::size_t dims[] = {data.size()};
  const auto stream = SzCompress(data, dims, p);
  EXPECT_THROW(SzDecompress(ByteSpan(stream.data(), stream.size() / 2)),
               Error);
  EXPECT_THROW(SzDecompress(ByteSpan(stream.data(), 10)), Error);
}

TEST(Szref, QuantBitsSweepStillBounded) {
  // Fewer quantization bits force more escapes; the bound must hold at
  // every setting and escapes must grow as bits shrink.
  const auto data = MakePattern<float>(Pattern::kNoisySine, 20000, 5);
  const std::size_t dims[] = {data.size()};
  std::uint64_t prev_unpred = std::numeric_limits<std::uint64_t>::max();
  for (const int qb : {16, 12, 8, 5}) {
    SzParams p;
    p.mode = ErrorBoundMode::kAbsolute;
    p.error_bound = 1e-4;
    p.quant_bits = qb;
    SzStats stats;
    const auto stream = SzCompress(data, dims, p, &stats);
    const auto out = SzDecompress(stream);
    EXPECT_TRUE(WithinBound<float>(data, out, 1e-4)) << qb;
    EXPECT_LE(stats.num_unpredictable, data.size());
    if (qb < 16) {
      EXPECT_GE(stats.num_unpredictable, 0u);
    }
    prev_unpred = stats.num_unpredictable;
  }
  (void)prev_unpred;
}

TEST(SzrefOmp, ChunkedRoundTrip) {
  const data::Field f =
      data::GenerateField(data::App::kNyx, "temperature", 0.3);
  SzParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  SzStats stats;
  const auto stream = SzCompressOmp(f.values, f.dims, p, &stats, 4);
  const auto out = SzDecompressOmp(stream, 4);
  ASSERT_EQ(out.size(), f.size());
  EXPECT_TRUE(WithinBound<float>(f.span(), out, stats.absolute_bound));
  EXPECT_EQ(SzElementCount(stream), f.size());
}

TEST(SzrefOmp, SingleChunkMatchesSerialBound) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 8192, 5);
  SzParams p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-4;
  const std::size_t dims[] = {data.size()};
  const auto stream = SzCompressOmp(data, dims, p, nullptr, 1);
  const auto out = SzDecompressOmp(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, 1e-4));
}

}  // namespace
}  // namespace szx::szref
