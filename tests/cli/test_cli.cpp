// End-to-end integration tests of the szx_cli binary (path injected by
// CMake as SZX_CLI_PATH): compress / info / verify / decompress round
// trips through real files, plus failure modes.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/kernels/kernels.hpp"

#include "../test_util.hpp"

namespace {

#ifndef SZX_CLI_PATH
#error "SZX_CLI_PATH must be defined by the build"
#endif

std::string TempPath(const char* name) {
  // Unique per test case and per process: ctest runs these in parallel, and
  // a shared fixed path would let one test's TearDown delete another's files.
  const char* dir = std::getenv("TMPDIR");
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  return std::string(dir != nullptr ? dir : "/tmp") + "/szx_cli_test_" +
         info->name() + "_" + std::to_string(::getpid()) + "_" + name;
}

int RunCli(const std::string& args) {
  const std::string cmd =
      std::string(SZX_CLI_PATH) + " " + args + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

// Actual process exit code, for the documented contract:
// 0 success, 2 usage, 3 corruption/verification failure, 4 I/O error.
int CliExitCode(const std::string& args) {
  const int status = RunCli(args);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void WriteFloats(const std::string& path, const std::vector<float>& v) {
  std::ofstream out(path, std::ios::binary);
  // szx-lint: allow(reinterpret-cast) -- ofstream::write requires char*; file-I/O boundary
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(float)));
}

std::vector<float> ReadFloats(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<float> v(size / sizeof(float));
  // szx-lint: allow(reinterpret-cast) -- ifstream::read requires char*; file-I/O boundary
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size));
  return v;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = szx::testing::MakePattern<float>(
        szx::testing::Pattern::kNoisySine, 50000, 77);
    raw_ = TempPath("in.f32");
    compressed_ = TempPath("out.szx");
    recon_ = TempPath("recon.f32");
    WriteFloats(raw_, data_);
  }

  void TearDown() override {
    std::remove(raw_.c_str());
    std::remove(compressed_.c_str());
    std::remove(recon_.c_str());
  }

  std::vector<float> data_;
  std::string raw_, compressed_, recon_;
};

TEST_F(CliTest, CompressDecompressRoundTrip) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                " -m abs -e 1e-3"),
            0);
  ASSERT_EQ(RunCli("decompress -i " + compressed_ + " -o " + recon_), 0);
  const auto recon = ReadFloats(recon_);
  ASSERT_EQ(recon.size(), data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    ASSERT_NEAR(recon[i], data_[i], 1e-3) << i;
  }
}

TEST_F(CliTest, VerifyPassesOnValidStream) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ + " -e 1e-3"),
            0);
  EXPECT_EQ(RunCli("verify -i " + raw_ + " -z " + compressed_), 0);
}

TEST_F(CliTest, InfoSucceeds) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ + " -b 64"), 0);
  EXPECT_EQ(RunCli("info -i " + compressed_), 0);
}

TEST_F(CliTest, OmpFlagRoundTrip) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                " -e 1e-4 --omp 4"),
            0);
  ASSERT_EQ(RunCli("decompress -i " + compressed_ + " -o " + recon_ +
                " --omp 4"),
            0);
  const auto recon = ReadFloats(recon_);
  ASSERT_EQ(recon.size(), data_.size());
}

TEST_F(CliTest, ThreadsFlagRoundTrip) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                " -m abs -e 1e-3 --threads 4"),
            0);
  ASSERT_EQ(RunCli("decompress -i " + compressed_ + " -o " + recon_ +
                " --threads 4"),
            0);
  const auto recon = ReadFloats(recon_);
  ASSERT_EQ(recon.size(), data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    ASSERT_NEAR(recon[i], data_[i], 1e-3) << i;
  }
}

TEST_F(CliTest, KernelFlagProducesIdenticalStreams) {
  const std::string scalar_out = TempPath("scalar.szx");
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + scalar_out +
                " -e 1e-3 --kernel scalar"),
            0);
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                " -e 1e-3 --kernel avx2"),
            0);
  // Byte-identical streams regardless of implementation (the kernel
  // contract); on machines without AVX2 the flag falls back to scalar and
  // equality is trivially preserved.
  std::ifstream a(scalar_out, std::ios::binary | std::ios::ate);
  std::ifstream b(compressed_, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(a.tellg());
  ASSERT_EQ(a.tellg(), b.tellg());
  a.seekg(0);
  b.seekg(0);
  std::vector<char> abuf(size);
  std::vector<char> bbuf(size);
  a.read(abuf.data(), static_cast<std::streamsize>(size));
  b.read(bbuf.data(), static_cast<std::streamsize>(size));
  EXPECT_EQ(abuf, bbuf);
  // Decode under each kernel and check the reconstruction round-trips.
  ASSERT_EQ(RunCli("decompress -i " + compressed_ + " -o " + recon_ +
                " --kernel scalar --threads 2"),
            0);
  const auto recon = ReadFloats(recon_);
  ASSERT_EQ(recon.size(), data_.size());
  std::remove(scalar_out.c_str());
}

TEST_F(CliTest, ExecutorFlagProducesIdenticalStreams) {
  const std::string pool_out = TempPath("pool.szx");
  // Both backends must emit the byte-identical stream (the executor
  // contract); --executor omp in an OpenMP-free build falls back to the
  // pool with a warning and equality is trivially preserved.
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + pool_out +
                " -e 1e-3 --executor pool --threads 4"),
            0);
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                " -e 1e-3 --executor omp --threads 4"),
            0);
  std::ifstream a(pool_out, std::ios::binary | std::ios::ate);
  std::ifstream b(compressed_, std::ios::binary | std::ios::ate);
  ASSERT_EQ(a.tellg(), b.tellg());
  const auto size = static_cast<std::size_t>(a.tellg());
  a.seekg(0);
  b.seekg(0);
  std::vector<char> abuf(size);
  std::vector<char> bbuf(size);
  a.read(abuf.data(), static_cast<std::streamsize>(size));
  b.read(bbuf.data(), static_cast<std::streamsize>(size));
  EXPECT_EQ(abuf, bbuf);
  // --executor alone implies the parallel decode path, like --threads.
  ASSERT_EQ(RunCli("decompress -i " + compressed_ + " -o " + recon_ +
                " --executor pool"),
            0);
  const auto recon = ReadFloats(recon_);
  ASSERT_EQ(recon.size(), data_.size());
  std::remove(pool_out.c_str());
}

TEST_F(CliTest, RejectsBadKernelThreadsAndExecutor) {
  EXPECT_NE(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                " --kernel sse9"),
            0);
  EXPECT_NE(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                " --threads 0"),
            0);
  EXPECT_NE(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                " --executor fibers"),
            0);
}

TEST_F(CliTest, KernelListPrintsDispatchTable) {
  // `--kernel list` dumps the tier table and exits 0 without needing any
  // other arguments.
  const std::string listing = TempPath("kernels.txt");
  const std::string cmd = std::string(SZX_CLI_PATH) +
                          " compress --kernel list > " + listing + " 2>&1";
  ASSERT_EQ(WEXITSTATUS(std::system(cmd.c_str())), 0);
  std::ifstream in(listing);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  // One row per tier, in dispatch order.
  for (const char* name : {"scalar", "avx2", "avx512", "neon"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  std::remove(listing.c_str());
}

TEST_F(CliTest, WideKernelTiersErrorWhenUnavailable) {
  // avx512/neon are opt-in accelerators: requesting one that this build or
  // CPU cannot run is a usage error (exit 2), not a silent fallback.  When
  // the tier IS available the flag must work end to end and emit the exact
  // bytes of the scalar stream.
  for (const auto& [name, supported] :
       {std::pair<const char*, bool>{"avx512",
                                     szx::kernels::Avx512Supported()},
        std::pair<const char*, bool>{"neon", szx::kernels::NeonSupported()}}) {
    const std::string forced =
        TempPath((std::string("forced_") + name).c_str());
    if (!supported) {
      EXPECT_EQ(CliExitCode("compress -i " + raw_ + " -o " + forced +
                            " -e 1e-3 --kernel " + name),
                2)
          << name;
      continue;
    }
    ASSERT_EQ(CliExitCode("compress -i " + raw_ + " -o " + compressed_ +
                          " -e 1e-3 --kernel scalar"),
              0);
    ASSERT_EQ(CliExitCode("compress -i " + raw_ + " -o " + forced +
                          " -e 1e-3 --kernel " + name),
              0)
        << name;
    std::ifstream a(compressed_, std::ios::binary | std::ios::ate);
    std::ifstream b(forced, std::ios::binary | std::ios::ate);
    ASSERT_EQ(a.tellg(), b.tellg()) << name;
    const auto size = static_cast<std::size_t>(a.tellg());
    a.seekg(0);
    b.seekg(0);
    std::vector<char> abuf(size);
    std::vector<char> bbuf(size);
    a.read(abuf.data(), static_cast<std::streamsize>(size));
    b.read(bbuf.data(), static_cast<std::streamsize>(size));
    EXPECT_EQ(abuf, bbuf) << name;
    ASSERT_EQ(CliExitCode("decompress -i " + forced + " -o " + recon_ +
                          " --kernel " + name + " --threads 2"),
              0)
        << name;
    EXPECT_EQ(ReadFloats(recon_).size(), data_.size()) << name;
    std::remove(forced.c_str());
  }
}

TEST_F(CliTest, RejectsMissingInput) {
  EXPECT_NE(RunCli("compress -i /nonexistent.f32 -o " + compressed_), 0);
  EXPECT_NE(RunCli("decompress -i /nonexistent.szx -o " + recon_), 0);
}

TEST_F(CliTest, RejectsBadFlags) {
  EXPECT_NE(RunCli("compress -i " + raw_ + " -o " + compressed_ + " -t f16"),
            0);
  EXPECT_NE(RunCli("frobnicate -i " + raw_), 0);
  EXPECT_NE(RunCli(""), 0);
}

TEST_F(CliTest, RejectsCorruptStream) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_), 0);
  // Truncate the compressed file.
  {
    std::ifstream in(compressed_, std::ios::binary | std::ios::ate);
    const auto size = static_cast<std::size_t>(in.tellg());
    in.seekg(0);
    std::vector<char> buf(size / 2);
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    in.close();
    std::ofstream out(compressed_, std::ios::binary | std::ios::trunc);
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }
  EXPECT_NE(RunCli("decompress -i " + compressed_ + " -o " + recon_), 0);
}

TEST_F(CliTest, HybridRoundTrip) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                   " -e 1e-3 --hybrid"),
            0);
  EXPECT_EQ(RunCli("info -i " + compressed_), 0);
  EXPECT_EQ(RunCli("verify -i " + raw_ + " -z " + compressed_), 0);
  ASSERT_EQ(RunCli("decompress -i " + compressed_ + " -o " + recon_), 0);
  const auto recon = ReadFloats(recon_);
  ASSERT_EQ(recon.size(), data_.size());
}

TEST_F(CliTest, PointwiseRelativeMode) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_ +
                   " -m pwrel -e 1e-3"),
            0);
  ASSERT_EQ(RunCli("decompress -i " + compressed_ + " -o " + recon_), 0);
  const auto recon = ReadFloats(recon_);
  ASSERT_EQ(recon.size(), data_.size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    ASSERT_LE(std::fabs(recon[i] - data_[i]),
              1e-3 * std::fabs(data_[i]) + 1e-12)
        << i;
  }
}

TEST_F(CliTest, TuneSuggestsBlockSize) {
  EXPECT_EQ(RunCli("tune -i " + raw_ + " -e 1e-3"), 0);
}

TEST_F(CliTest, ValidateAcceptsGoodRejectsBad) {
  ASSERT_EQ(RunCli("compress -i " + raw_ + " -o " + compressed_), 0);
  EXPECT_EQ(RunCli("validate -i " + compressed_ + " --deep"), 0);
  // Corrupt a byte in the middle and expect rejection (shallow or deep).
  {
    std::fstream f(compressed_,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(80);
    const char junk = 0x5a;
    f.write(&junk, 1);
  }
  const int shallow = RunCli("validate -i " + compressed_);
  const int deep = RunCli("validate -i " + compressed_ + " --deep");
  EXPECT_TRUE(shallow != 0 || deep != 0);
}

TEST_F(CliTest, ExitCodeContract) {
  // 2: usage errors (bad flag, bad command, missing required argument).
  EXPECT_EQ(CliExitCode("frobnicate"), 2);
  EXPECT_EQ(CliExitCode("compress -i " + raw_ + " -o " + compressed_ +
                        " -t f16"),
            2);
  EXPECT_EQ(CliExitCode("verify"), 2);
  // 4: file-system failures.
  EXPECT_EQ(CliExitCode("compress -i /nonexistent.f32 -o " + compressed_), 4);
  EXPECT_EQ(CliExitCode("decompress -i /nonexistent.szx -o " + recon_), 4);
  // 3: stream corruption.
  ASSERT_EQ(CliExitCode("compress -i " + raw_ + " -o " + compressed_), 0);
  {
    std::fstream f(compressed_,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(2);
    const char junk = 0x77;
    f.write(&junk, 1);  // break the magic
  }
  EXPECT_EQ(CliExitCode("decompress -i " + compressed_ + " -o " + recon_), 3);
}

TEST_F(CliTest, IntegrityVerifyAndSalvage) {
  const std::string report = TempPath("report.json");
  ASSERT_EQ(CliExitCode("compress -i " + raw_ + " -o " + compressed_ +
                        " -m abs -e 1e-3 --integrity"),
            0);
  // Clean stream: checksum verification passes and decode round-trips.
  EXPECT_EQ(CliExitCode("verify -z " + compressed_), 0);
  ASSERT_EQ(CliExitCode("decompress -i " + compressed_ + " -o " + recon_), 0);
  ASSERT_EQ(ReadFloats(recon_).size(), data_.size());
  // Clean salvage: exit 0 and identical output to the normal decoder.
  const std::string salvaged = TempPath("salvaged.f32");
  EXPECT_EQ(CliExitCode("salvage -i " + compressed_ + " -o " + salvaged), 0);
  EXPECT_EQ(ReadFloats(salvaged), ReadFloats(recon_));

  // Damage a payload byte: verify fails with 3; salvage still produces
  // output plus a machine-readable report, also signalling 3.
  {
    std::fstream f(compressed_,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3000, std::ios::end);
    const char junk = 0x5a;
    f.write(&junk, 1);
  }
  EXPECT_EQ(CliExitCode("verify -z " + compressed_), 3);
  EXPECT_EQ(CliExitCode("salvage -i " + compressed_ + " -o " + salvaged +
                        " --report " + report),
            3);
  const auto out = ReadFloats(salvaged);
  EXPECT_EQ(out.size(), data_.size());
  std::ifstream rep(report);
  std::string json((std::istreambuf_iterator<char>(rep)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"usable\":true"), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  std::remove(salvaged.c_str());
  std::remove(report.c_str());
}

// ---------------------------------------------------------------------------
// `client` against a real szx_serve daemon over TCP loopback.

#ifndef SZX_SERVE_PATH
#error "SZX_SERVE_PATH must be defined by the build"
#endif

// Runs szx_serve with --port 0 (kernel-assigned) plus the given flags and
// parses the advertised port.  The daemon exits on its own once max_conns
// connections were served; Stop() then pcloses (and so reaps) it.
class ScopedDaemon {
 public:
  explicit ScopedDaemon(const std::string& flags) {
    const std::string cmd =
        std::string(SZX_SERVE_PATH) + " --port 0 " + flags + " 2>/dev/null";
    pipe_ = ::popen(cmd.c_str(), "r");
    if (pipe_ == nullptr) return;
    char line[128] = {};
    if (std::fgets(line, sizeof(line), pipe_) != nullptr) {
      unsigned parsed = 0;
      if (std::sscanf(line, "szx-serve listening on %u", &parsed) == 1) {
        port_ = static_cast<int>(parsed);
      }
    }
  }
  ~ScopedDaemon() { Stop(); }
  ScopedDaemon(const ScopedDaemon&) = delete;
  ScopedDaemon& operator=(const ScopedDaemon&) = delete;

  int port() const { return port_; }
  void Stop() {
    if (pipe_ != nullptr) {
      ::pclose(pipe_);
      pipe_ = nullptr;
    }
  }

 private:
  FILE* pipe_ = nullptr;
  int port_ = -1;
};

// Regression: a stop signal must terminate the daemon even while a
// connection sits idle inside a blocked read.  The graceful-stop path
// relies on FdTransport::Close using shutdown(2) to wake that reader; a
// bare close(2) would leave the connection thread parked and main hung in
// join() forever.
TEST_F(CliTest, DaemonStopsPromptlyWithAnIdleConnection) {
  int out[2] = {-1, -1};
  ASSERT_EQ(::pipe(out), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::dup2(out[1], STDOUT_FILENO);
    ::close(out[0]);
    ::close(out[1]);
    ::execl(SZX_SERVE_PATH, "szx_serve", "--port", "0",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(out[1]);
  FILE* from_daemon = ::fdopen(out[0], "r");
  ASSERT_NE(from_daemon, nullptr);
  char line[128] = {};
  ASSERT_NE(std::fgets(line, sizeof(line), from_daemon), nullptr);
  unsigned port = 0;
  ASSERT_EQ(std::sscanf(line, "szx-serve listening on %u", &port), 1);

  // Connect and then go idle: the daemon's connection thread is now
  // parked in a blocking read with no bytes coming.
  const int sock = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(sock, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  // szx-lint: allow(reinterpret-cast) -- the BSD socket ABI types connect against the sockaddr base struct
  ASSERT_EQ(::connect(sock, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  ASSERT_EQ(::kill(pid, SIGTERM), 0);
  int status = 0;
  pid_t reaped = 0;
  for (int i = 0; i < 100; ++i) {  // up to ~10 s before declaring a hang
    reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) break;
    ::usleep(100 * 1000);
  }
  if (reaped != pid) {
    ::kill(pid, SIGKILL);
    (void)::waitpid(pid, &status, 0);
    FAIL() << "daemon did not exit within 10s of SIGTERM "
              "(idle connection blocked the stop path)";
  }
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::close(sock);
  ::fclose(from_daemon);
}

TEST_F(CliTest, ClientUsageErrorsExitTwo) {
  EXPECT_EQ(CliExitCode("client --op ping"), 2);  // --port missing
  EXPECT_EQ(CliExitCode("client --port 1 --op transmogrify"), 2);
  EXPECT_EQ(CliExitCode("client --port 1 --op decompress"), 2);  // -i missing
  EXPECT_EQ(CliExitCode("client --port 70000 --op ping"), 2);
}

TEST_F(CliTest, ClientConnectionFailureExitsFour) {
  // Nothing listens on loopback port 1; connect is refused immediately.
  EXPECT_EQ(CliExitCode("client --host 127.0.0.1 --port 1 --op ping"), 4);
  // Unparseable address is also a connection-level failure, not usage.
  EXPECT_EQ(CliExitCode("client --host not.a.numeric.address --port 1"
                        " --op ping"),
            4);
}

TEST_F(CliTest, ClientTcpRoundTrip) {
  ScopedDaemon daemon("--max-conns 4");
  ASSERT_GT(daemon.port(), 0) << "daemon failed to start";
  const std::string port = std::to_string(daemon.port());
  const std::string report = TempPath("client_report.json");

  // Remote compress with integrity footers, then remote decompress.
  ASSERT_EQ(CliExitCode("client --port " + port + " --op compress -i " +
                        raw_ + " -o " + compressed_ +
                        " -m abs -e 1e-3 --integrity"),
            0);
  ASSERT_EQ(CliExitCode("client --port " + port + " --op decompress -i " +
                        compressed_ + " -o " + recon_),
            0);
  const std::vector<float> recon = ReadFloats(recon_);
  ASSERT_EQ(recon.size(), data_.size());
  for (std::size_t i = 0; i < recon.size(); i += 97) {
    ASSERT_NEAR(recon[i], data_[i], 1e-3) << i;
  }

  // Damage the stream: remote salvage degrades to partial (exit 3) and
  // still delivers elements plus a machine-readable report.
  {
    std::fstream f(compressed_,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-3000, std::ios::end);
    const char junk = 0x5a;
    f.write(&junk, 1);
  }
  const std::string salvaged = TempPath("client_salvaged.f32");
  EXPECT_EQ(CliExitCode("client --port " + port + " --op salvage -i " +
                        compressed_ + " -o " + salvaged + " --report " +
                        report),
            3);
  EXPECT_EQ(ReadFloats(salvaged).size(), data_.size());
  std::ifstream rep(report);
  const std::string json((std::istreambuf_iterator<char>(rep)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"usable\":true"), std::string::npos);
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);

  // Liveness after the degradation path: a plain ping still answers OK.
  EXPECT_EQ(CliExitCode("client --port " + port + " --op ping"), 0);

  daemon.Stop();  // 4 connections served: the daemon has already exited
  std::remove(salvaged.c_str());
  std::remove(report.c_str());
}

TEST_F(CliTest, VerifyWithoutIntegrityFooterDeepWalks) {
  // v1 streams have no checksums; verify -z falls back to the structural
  // validator and still reports a clean stream as 0.
  ASSERT_EQ(CliExitCode("compress -i " + raw_ + " -o " + compressed_), 0);
  EXPECT_EQ(CliExitCode("verify -z " + compressed_), 0);
}

TEST_F(CliTest, Float64RoundTrip) {
  const std::string raw64 = TempPath("in.f64");
  std::vector<double> d64(10000);
  for (std::size_t i = 0; i < d64.size(); ++i) {
    d64[i] = std::sin(0.001 * static_cast<double>(i));
  }
  {
    std::ofstream out(raw64, std::ios::binary);
    // szx-lint: allow(reinterpret-cast) -- ofstream::write requires char*; file-I/O boundary
    out.write(reinterpret_cast<const char*>(d64.data()),
              static_cast<std::streamsize>(d64.size() * sizeof(double)));
  }
  ASSERT_EQ(RunCli("compress -i " + raw64 + " -o " + compressed_ +
                " -t f64 -m abs -e 1e-6"),
            0);
  ASSERT_EQ(RunCli("decompress -i " + compressed_ + " -o " + recon_), 0);
  std::ifstream in(recon_, std::ios::binary | std::ios::ate);
  EXPECT_EQ(static_cast<std::size_t>(in.tellg()),
            d64.size() * sizeof(double));
  std::remove(raw64.c_str());
}

TEST_F(CliTest, ContainerPackQueryUnpackRoundTrip) {
  const std::string container = TempPath("c.szx3");
  // Two timesteps of 25000 elements each out of the 50000-element input.
  ASSERT_EQ(RunCli("pack -o " + container + " --field temp:" + raw_ +
                   " --timesteps 2 -m abs -e 1e-3 --chunk 4096"),
            0);
  ASSERT_EQ(RunCli("query -i " + container), 0);
  // info recognizes a container and prints the directory instead of
  // rejecting the magic.
  ASSERT_EQ(RunCli("info -i " + container), 0);
  // Full-timestep unpack obeys the bound.
  ASSERT_EQ(RunCli("unpack -i " + container + " -o " + recon_ +
                   " --field temp --timestep 1"),
            0);
  const auto full = ReadFloats(recon_);
  ASSERT_EQ(full.size(), 25000u);
  for (std::size_t i = 0; i < full.size(); ++i) {
    ASSERT_NEAR(full[i], data_[25000 + i], 1e-3) << i;
  }
  // ROI unpack is bit-identical to the full-decode slice.
  const std::string roi_path = TempPath("roi.f32");
  ASSERT_EQ(RunCli("unpack -i " + container + " -o " + roi_path +
                   " --field temp --timestep 1 --first 5000 --count 6000"),
            0);
  const auto roi = ReadFloats(roi_path);
  ASSERT_EQ(roi.size(), 6000u);
  for (std::size_t i = 0; i < roi.size(); ++i) {
    ASSERT_EQ(roi[i], full[5000 + i]) << i;
  }
  std::remove(container.c_str());
  std::remove(roi_path.c_str());
}

TEST_F(CliTest, ContainerExitCodeContract) {
  const std::string container = TempPath("c.szx3");
  ASSERT_EQ(CliExitCode("pack -o " + container + " --field a:" + raw_ +
                        " -m abs -e 1e-3"),
            0);
  // Usage errors.
  EXPECT_EQ(CliExitCode("pack -o " + container), 2);
  EXPECT_EQ(CliExitCode("pack --field a:" + raw_), 2);
  EXPECT_EQ(CliExitCode("query"), 2);
  EXPECT_EQ(CliExitCode("unpack -i " + container + " -o " + recon_ +
                        " --field a --first 3"),
            2);
  // Unknown field / bad timestep are corruption-contract failures (3).
  EXPECT_EQ(CliExitCode("unpack -i " + container + " -o " + recon_ +
                        " --field nope"),
            3);
  EXPECT_EQ(CliExitCode("unpack -i " + container + " -o " + recon_ +
                        " --field a --timestep 7"),
            3);
  // Missing file is I/O (4).
  EXPECT_EQ(CliExitCode("query -i /nonexistent/c.szx3"), 4);
  // A flipped payload byte shows up in query as a damaged chunk (3), and a
  // truncated directory makes the reader refuse outright (3).
  {
    std::ifstream in(container, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    bytes[100] = static_cast<char>(bytes[100] ^ 0x20);
    std::ofstream out(container + ".bad", std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    std::ofstream trunc(container + ".trunc", std::ios::binary);
    trunc.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() - 9));
  }
  EXPECT_EQ(CliExitCode("query -i " + container + ".bad"), 3);
  EXPECT_EQ(CliExitCode("query -i " + container + ".trunc"), 3);
  EXPECT_EQ(CliExitCode("unpack -i " + container + ".trunc -o " + recon_),
            3);
  std::remove(container.c_str());
  std::remove((container + ".bad").c_str());
  std::remove((container + ".trunc").c_str());
}

}  // namespace
