// Shared helpers for the test suites: deterministic data patterns and
// error-bound verification.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace szx::testing {

/// SplitMix64: tiny deterministic PRNG, no libstdc++ distribution
/// dependence, reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double Uniform() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Approximately standard normal (sum of uniforms).
  double Gaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += Uniform();
    return s - 6.0;
  }

 private:
  std::uint64_t state_;
};

enum class Pattern {
  kConstant,
  kRamp,
  kSmoothSine,
  kNoisySine,
  kUniformNoise,
  kMixedScales,     // alternating huge / tiny magnitudes
  kTinySubnormals,  // values near the subnormal range
  kSparseSpikes,    // mostly zero with occasional spikes
};

inline const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kConstant: return "constant";
    case Pattern::kRamp: return "ramp";
    case Pattern::kSmoothSine: return "smooth_sine";
    case Pattern::kNoisySine: return "noisy_sine";
    case Pattern::kUniformNoise: return "uniform_noise";
    case Pattern::kMixedScales: return "mixed_scales";
    case Pattern::kTinySubnormals: return "tiny_subnormals";
    case Pattern::kSparseSpikes: return "sparse_spikes";
  }
  return "unknown";
}

template <typename T>
std::vector<T> MakePattern(Pattern p, std::size_t n, std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<T> v(n);
  switch (p) {
    case Pattern::kConstant:
      for (auto& x : v) x = T(3.25);
      break;
    case Pattern::kRamp:
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<T>(0.001 * static_cast<double>(i) - 17.0);
      }
      break;
    case Pattern::kSmoothSine:
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<T>(
            100.0 * std::sin(0.01 * static_cast<double>(i)));
      }
      break;
    case Pattern::kNoisySine:
      for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<T>(
            10.0 * std::sin(0.05 * static_cast<double>(i)) +
            0.3 * rng.Gaussian());
      }
      break;
    case Pattern::kUniformNoise:
      for (auto& x : v) x = static_cast<T>(rng.Uniform(-1000.0, 1000.0));
      break;
    case Pattern::kMixedScales:
      for (std::size_t i = 0; i < n; ++i) {
        const double mag = (i % 7 == 0) ? 1e30 : ((i % 3 == 0) ? 1e-30 : 1.0);
        v[i] = static_cast<T>(mag * rng.Uniform(-1.0, 1.0));
      }
      break;
    case Pattern::kTinySubnormals:
      for (auto& x : v) {
        x = static_cast<T>(static_cast<double>(
                               std::numeric_limits<T>::denorm_min()) *
                           static_cast<double>(1 + (rng.Next() % 1000)));
      }
      break;
    case Pattern::kSparseSpikes:
      for (auto& x : v) {
        x = (rng.Next() % 50 == 0) ? static_cast<T>(rng.Uniform(-500.0, 500.0))
                                   : T(0);
      }
      break;
  }
  return v;
}

inline std::vector<Pattern> AllPatterns() {
  return {Pattern::kConstant,     Pattern::kRamp,
          Pattern::kSmoothSine,   Pattern::kNoisySine,
          Pattern::kUniformNoise, Pattern::kMixedScales,
          Pattern::kTinySubnormals, Pattern::kSparseSpikes};
}

/// Asserts |a[i] - b[i]| <= bound for all i (NaN positions must match NaN).
template <typename T>
::testing::AssertionResult WithinBound(std::span<const T> original,
                                       std::span<const T> recon,
                                       double bound) {
  if (original.size() != recon.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << original.size() << " vs " << recon.size();
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double a = static_cast<double>(original[i]);
    const double b = static_cast<double>(recon[i]);
    if (std::isnan(a) && std::isnan(b)) continue;
    const double err = std::fabs(a - b);
    if (!(err <= bound)) {
      return ::testing::AssertionFailure()
             << "error bound violated at " << i << ": |" << a << " - " << b
             << "| = " << err << " > " << bound;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace szx::testing
