// Fuzz tier: deterministic corruption/truncation campaign over real streams.
//
// Every iteration is derived from (seed, iteration) alone, so a failure
// printed here replays exactly: see docs/testing.md.  Environment overrides
// for longer local campaigns:
//   SZX_FUZZ_SEED=<n>        override the campaign seed
//   SZX_FUZZ_ITERATIONS=<n>  override the iteration count
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "core/compressor.hpp"
#include "testkit/fuzzer.hpp"
#include "testkit/generators.hpp"

namespace szx::testkit {
namespace {

std::uint64_t EnvOr(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
}

template <SupportedFloat T>
ByteBuffer MakeBase(Gen g, std::size_t n, std::uint64_t seed,
                    ErrorBoundMode mode, double eb, CommitSolution sol,
                    std::uint32_t bs = 128) {
  Params p;
  p.mode = mode;
  p.error_bound = eb;
  p.block_size = bs;
  p.solution = sol;
  const std::vector<T> data = Generate<T>(g, n, seed);
  return Compress<T>(data, p);
}

// A corpus that reaches every stream shape: all three solutions, all three
// modes, constant/lossless/raw-passthrough frames, both element widths
// (the f64 base doubles as a type-confusion input for the float probe).
std::vector<ByteBuffer> FuzzBases() {
  std::vector<ByteBuffer> bases;
  bases.push_back(MakeBase<float>(Gen::kWave, 2000, 21,
                                  ErrorBoundMode::kAbsolute, 1e-3,
                                  CommitSolution::kC));
  bases.push_back(MakeBase<float>(Gen::kNoise, 1500, 22,
                                  ErrorBoundMode::kValueRangeRelative, 1e-3,
                                  CommitSolution::kA));
  bases.push_back(MakeBase<float>(Gen::kZeroHeavy, 1500, 23,
                                  ErrorBoundMode::kPointwiseRelative, 1e-2,
                                  CommitSolution::kB));
  bases.push_back(MakeBase<float>(Gen::kNonFinite, 1200, 24,
                                  ErrorBoundMode::kValueRangeRelative, 1e-3,
                                  CommitSolution::kC));
  bases.push_back(MakeBase<float>(Gen::kConstantBlocks, 2000, 25,
                                  ErrorBoundMode::kAbsolute, 1e-2,
                                  CommitSolution::kC, 64));
  bases.push_back(MakeBase<float>(Gen::kNoise, 300, 26,
                                  ErrorBoundMode::kAbsolute, 1e-12,
                                  CommitSolution::kC));  // raw passthrough
  bases.push_back(MakeBase<double>(Gen::kWave, 900, 27,
                                   ErrorBoundMode::kAbsolute, 1e-6,
                                   CommitSolution::kC));
  return bases;
}

void ReportFailure(const FuzzReport& report, const FuzzConfig& config) {
  ASSERT_TRUE(report.failure.has_value());
  const FuzzFailure& f = *report.failure;
  std::string hex;
  for (std::size_t i = 0; i < std::min<std::size_t>(f.minimized.size(), 96);
       ++i) {
    static const char* kDigits = "0123456789abcdef";
    const auto b = std::to_integer<std::uint8_t>(f.minimized[i]);
    hex += kDigits[b >> 4];
    hex += kDigits[b & 0xf];
  }
  FAIL() << "fuzz invariant violated at iteration " << f.iteration
         << " (seed " << config.seed << "): " << f.what << "\n  "
         << f.Repro(config) << "\n  minimized stream ("
         << f.minimized.size() << " bytes, first 96 shown): " << hex;
}

TEST(FuzzSmoke, CorruptionCampaignFloat) {
  const std::vector<ByteBuffer> bases = FuzzBases();
  FuzzConfig config;
  config.seed = EnvOr("SZX_FUZZ_SEED", 0xc0ffee5eedull);
  config.iterations = EnvOr("SZX_FUZZ_ITERATIONS", 45000);
  const FuzzReport report = RunCorruptionFuzzer<float>(bases, config);
  if (report.failure.has_value()) ReportFailure(report, config);
  EXPECT_EQ(report.iterations_run, config.iterations);
  // Both verdicts must actually occur: an all-reject campaign means the
  // mutator is too destructive to test the decode paths at all.
  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.rejected, 0u);
  RecordProperty("mutations_applied",
                 static_cast<int>(report.mutations_applied));
}

TEST(FuzzSmoke, CorruptionCampaignDouble) {
  const std::vector<ByteBuffer> bases = FuzzBases();
  FuzzConfig config;
  config.seed = EnvOr("SZX_FUZZ_SEED", 0xd00b1e5eedull);
  config.iterations = EnvOr("SZX_FUZZ_ITERATIONS", 15000);
  const FuzzReport report = RunCorruptionFuzzer<double>(bases, config);
  if (report.failure.has_value()) ReportFailure(report, config);
  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.rejected, 0u);
}

// The acceptance gate: >= 100k mutations total across the two campaigns at
// their default settings.
TEST(FuzzSmoke, CampaignExecutesAtLeast100kMutations) {
  const std::vector<ByteBuffer> bases = FuzzBases();
  FuzzConfig config;
  config.seed = 0xc0ffee5eedull;
  config.iterations = 45000 + 15000;
  std::uint64_t mutations = 0;
  for (std::uint64_t i = 0; i < config.iterations; ++i) {
    std::uint64_t m = 0;
    MutatedStream(bases, config, i, nullptr, &m);
    mutations += m;
  }
  EXPECT_GE(mutations, 100000u);
}

// Determinism: the same (seed, iteration) must rebuild the same stream.
TEST(FuzzSmoke, MutationScheduleIsDeterministic) {
  const std::vector<ByteBuffer> bases = FuzzBases();
  FuzzConfig config;
  config.seed = 1234;
  for (std::uint64_t i = 0; i < 200; ++i) {
    const ByteBuffer a = MutatedStream(bases, config, i);
    const ByteBuffer b = MutatedStream(bases, config, i);
    ASSERT_EQ(a, b) << "iteration " << i;
  }
}

// Regression (found by construction of this fuzzer): a coordinated
// num_elements/num_blocks inflation must be rejected as szx::Error before
// the decoder sizes its output -- not surface as std::bad_alloc.
TEST(FuzzRegression, HeaderInflationRejectedCleanly) {
  const ByteBuffer base = MakeBase<float>(
      Gen::kWave, 1024, 31, ErrorBoundMode::kAbsolute, 1e-3,
      CommitSolution::kC);
  ByteBuffer bad = base;
  Header h = PeekHeader(bad);
  h.num_elements = std::uint64_t{1} << 61;       // ~9 exabytes of floats
  h.num_blocks = (h.num_elements + h.block_size - 1) / h.block_size;
  // szx-lint: allow(raw-memcpy) -- test forges a hostile header in place
  std::memcpy(bad.data(), &h, sizeof(Header));
  const auto why = ProbeStream<float>(bad);
  ASSERT_FALSE(why.has_value()) << *why;
}

// Regression (campaign seed 0xc0ffee5eed, iteration 5365): a header with
// num_elements == 0 but num_blocks > 0 used to pass the consistency check
// (which was gated on num_elements > 0) and drive every decoder's block
// loop past an empty output buffer -- an out-of-bounds write.
TEST(FuzzRegression, ZeroElementsNonzeroBlocksRejected) {
  const ByteBuffer base = MakeBase<float>(
      Gen::kConstantBlocks, 2000, 25, ErrorBoundMode::kAbsolute, 1e-2,
      CommitSolution::kC, 64);
  ByteBuffer bad = base;
  Header h = PeekHeader(bad);
  h.num_elements = 0;  // num_blocks stays at its original nonzero value
  // szx-lint: allow(raw-memcpy) -- test forges a hostile header in place
  std::memcpy(bad.data(), &h, sizeof(Header));
  const auto why = ProbeStream<float>(bad);
  ASSERT_FALSE(why.has_value()) << *why;
}

// A printed failure must carry everything needed to replay it.
TEST(FuzzSelfCheck, FailureReproLineIsInformative) {
  FuzzFailure f;
  f.iteration = 7;
  f.base_index = 2;
  f.stream.resize(100);
  f.minimized.resize(10);
  FuzzConfig config;
  const std::string repro = f.Repro(config);
  EXPECT_NE(repro.find("iteration=*/7"), std::string::npos) << repro;
  EXPECT_NE(repro.find("base 2"), std::string::npos) << repro;
}

}  // namespace
}  // namespace szx::testkit
