// Salvage fuzz smoke (fuzz-smoke tier, also wired into scripts/check.sh):
// a seeded corruption campaign over every fault class, replayable from any
// failing seed printed by SCOPED_TRACE.  Deeper per-class properties live
// in tests/resilience/test_salvage_property.cpp; this tier exists so the
// fuzz entry point keeps exercising salvage on every check.sh run, with
// stacked double faults the property harness does not cover.
#include <string>

#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "resilience/salvage.hpp"
#include "../test_util.hpp"
#include "testkit/fault_injector.hpp"

namespace szx::resilience {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testkit::FaultClass;
using szx::testkit::FaultClassName;
using szx::testkit::InjectFault;
using szx::testkit::kAllFaultClasses;

constexpr int kSeeds = 40;

ByteBuffer MakeStream(bool integrity) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  p.block_size = 64;
  p.integrity = integrity;
  const auto data = MakePattern<float>(Pattern::kNoisySine, 20000);
  return Compress<float>(data, p);
}

void SmokeOne(const ByteBuffer& clean, FaultClass a, FaultClass b,
              std::uint64_t seed) {
  ByteBuffer stream = clean;
  InjectFault(stream, a, seed);
  InjectFault(stream, b, seed + 1);  // stacked double fault
  SCOPED_TRACE(std::string(FaultClassName(a)) + "+" + FaultClassName(b) +
               " seed=" + std::to_string(seed));
  const auto res = SalvageDecode<float>(stream);
  if (res.report.usable) {
    EXPECT_EQ(res.data.size(), 20000u);
    EXPECT_EQ(res.report.blocks_recovered + res.report.blocks_mu_filled +
                  res.report.blocks_lost,
              res.report.num_blocks);
  } else {
    EXPECT_FALSE(res.report.error.empty());
    EXPECT_TRUE(res.data.empty());
  }
  // The report must serialize regardless of how mangled the stream is.
  const std::string json = res.report.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(SalvageFuzz, StackedFaultsOnIntegrityStream) {
  const ByteBuffer clean = MakeStream(/*integrity=*/true);
  for (const FaultClass a : kAllFaultClasses) {
    for (const FaultClass b : kAllFaultClasses) {
      for (int seed = 0; seed < kSeeds; ++seed) {
        SmokeOne(clean, a, b, static_cast<std::uint64_t>(seed));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(SalvageFuzz, StackedFaultsOnV1Stream) {
  const ByteBuffer clean = MakeStream(/*integrity=*/false);
  for (const FaultClass a : kAllFaultClasses) {
    for (const FaultClass b : kAllFaultClasses) {
      for (int seed = 0; seed < kSeeds; ++seed) {
        SmokeOne(clean, a, b, static_cast<std::uint64_t>(seed) + 7777);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

}  // namespace
}  // namespace szx::resilience
