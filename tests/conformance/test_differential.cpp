// Conformance tier: seeded property-based differential tests.
//
// For every (adversarial input x error mode x commit solution) cell, the
// serial, OpenMP, and cusim schedules must emit byte-identical streams,
// every decoder must reconstruct bit-identical values, and the
// reconstruction must satisfy the mode's error-bound oracle.  Inputs cover
// denormals, NaN/Inf, constant blocks, range collapse, 1-ulp steps, and
// sizes straddling block boundaries (src/testkit/generators.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "testkit/differential.hpp"
#include "testkit/generators.hpp"
#include "testkit/oracle.hpp"

namespace szx::testkit {
namespace {

struct Cell {
  ErrorBoundMode mode;
  CommitSolution solution;
  double eb;
};

std::vector<Cell> FullMatrix() {
  std::vector<Cell> cells;
  for (const ErrorBoundMode mode :
       {ErrorBoundMode::kAbsolute, ErrorBoundMode::kValueRangeRelative,
        ErrorBoundMode::kPointwiseRelative}) {
    for (const CommitSolution sol :
         {CommitSolution::kA, CommitSolution::kB, CommitSolution::kC}) {
      cells.push_back({mode, sol,
                       mode == ErrorBoundMode::kAbsolute ? 1e-3 : 1e-2});
    }
  }
  return cells;
}

class DifferentialMatrix : public ::testing::TestWithParam<int> {
 protected:
  Cell cell() const { return FullMatrix()[static_cast<std::size_t>(
      GetParam())]; }
  Params MakeParams(std::uint32_t block_size) const {
    Params p;
    p.mode = cell().mode;
    p.error_bound = cell().eb;
    p.block_size = block_size;
    p.solution = cell().solution;
    return p;
  }
};

template <SupportedFloat T>
void RunCases(const Params& params) {
  for (const InputCase& c : StandardCases(params.block_size)) {
    const std::vector<T> data = Generate<T>(c.gen, c.n, c.seed);
    const DifferentialReport r = RunDifferential<T>(data, params);
    ASSERT_TRUE(r.ok) << c.name << ": " << r.detail;
  }
}

TEST_P(DifferentialMatrix, Float32StandardCases) {
  RunCases<float>(MakeParams(128));
}

TEST_P(DifferentialMatrix, Float64StandardCases) {
  RunCases<double>(MakeParams(128));
}

std::string CellName(const ::testing::TestParamInfo<int>& info) {
  const Cell c = FullMatrix()[static_cast<std::size_t>(info.param)];
  const char* mode = c.mode == ErrorBoundMode::kAbsolute ? "abs"
                     : c.mode == ErrorBoundMode::kValueRangeRelative
                         ? "rel"
                         : "pwrel";
  const char sol = static_cast<char>('A' + static_cast<int>(c.solution));
  return std::string(mode) + "_sol" + sol;
}

INSTANTIATE_TEST_SUITE_P(AllCells, DifferentialMatrix,
                         ::testing::Range(0, 9), CellName);

// Block sizes at and around the admitted extremes: the tail-block and
// type-bit concatenation logic must hold at every granularity.
TEST(DifferentialBlockSizes, BoundaryBlockSizes) {
  for (const std::uint32_t bs : {kMinBlockSize, 32u, 500u, kMaxBlockSize}) {
    Params p;
    p.mode = ErrorBoundMode::kAbsolute;
    p.error_bound = 1e-3;
    p.block_size = bs;
    for (const Gen g : {Gen::kWave, Gen::kDenormals, Gen::kNonFinite,
                        Gen::kConstantBlocks}) {
      for (const std::size_t n :
           {std::size_t{1}, std::size_t{bs} - 1, std::size_t{bs},
            std::size_t{bs} + 1, 3 * std::size_t{bs} + 1}) {
        const std::vector<float> data = Generate<float>(g, n, 0xb5 + n);
        const DifferentialReport r = RunDifferential<float>(data, p);
        ASSERT_TRUE(r.ok) << GenName(g) << " bs=" << bs << " n=" << n << ": "
                          << r.detail;
      }
    }
  }
}

// Empty input is a legal stream in every cell.
TEST(DifferentialEdge, EmptyInput) {
  for (const CommitSolution sol :
       {CommitSolution::kA, CommitSolution::kB, CommitSolution::kC}) {
    Params p;
    p.solution = sol;
    const DifferentialReport r =
        RunDifferential<float>(std::span<const float>{}, p);
    ASSERT_TRUE(r.ok) << r.detail;
  }
}

// The harness itself must detect violations: feed the oracle a
// reconstruction that breaks the bound and a stream pair that diverges,
// and require both to be flagged.  This is the conformance tier's
// self-test against silently passing.
TEST(HarnessSelfCheck, OracleFlagsBoundViolation) {
  const std::vector<float> data = Generate<float>(Gen::kWave, 256, 1);
  std::vector<float> recon = data;
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  recon[100] += 1.0f;  // 1000x the bound
  const auto why =
      CheckErrorBound<float>(data, recon, p, p.error_bound);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("index 100"), std::string::npos) << *why;
}

TEST(HarnessSelfCheck, OracleFlagsNonFiniteDrift) {
  std::vector<float> data(8, 1.0f);
  data[3] = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> recon = data;
  recon[3] = 0.0f;  // NaN silently replaced
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1.0;
  ASSERT_TRUE(CheckErrorBound<float>(data, recon, p, 1.0).has_value());
}

TEST(HarnessSelfCheck, BitIdenticalFlagsSingleUlp) {
  std::vector<float> a(16, 1.5f);
  std::vector<float> b = a;
  b[7] = std::nextafterf(b[7], 2.0f);
  ASSERT_TRUE(CheckBitIdentical<float>(a, b, "selfcheck").has_value());
}

}  // namespace
}  // namespace szx::testkit
