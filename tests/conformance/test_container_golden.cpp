// Container tier: pinned format-v3 containers.
//
// Each checked-in container under tests/golden/ must be byte-reproducible
// from its recipe under the environment-selected executor backend and
// thread count (the env-matrix reruns in tests/CMakeLists.txt sweep
// SZX_EXECUTOR x SZX_THREADS), every (field, timestep) must decode within
// its bound, and ROI probes must equal the full-decode slice bit-for-bit.
// The damaged cases freeze container-salvage semantics: a payload-region
// fault degrades only the chunks it touches.
#include <string>

#include <gtest/gtest.h>

#include "testkit/golden.hpp"

namespace szx::testkit {
namespace {

#ifndef SZX_GOLDEN_DIR
#error "SZX_GOLDEN_DIR must be defined by the build"
#endif

class ContainerCorpus : public ::testing::TestWithParam<int> {
 protected:
  const ContainerGoldenCase& Case() const {
    return ContainerGoldenCases()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(ContainerCorpus, WriterAndReaderMatchPinnedContainer) {
  const auto why = VerifyContainerGoldenCase(Case(), SZX_GOLDEN_DIR);
  ASSERT_FALSE(why.has_value()) << *why;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, ContainerCorpus,
    ::testing::Range(0, static_cast<int>(ContainerGoldenCases().size())),
    [](const ::testing::TestParamInfo<int>& param) {
      std::string name =
          ContainerGoldenCases()[static_cast<std::size_t>(param.param)].file;
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(ContainerManifest, MatchesDisk) {
  const ByteBuffer pinned = ReadFileBytes(std::string(SZX_GOLDEN_DIR) + "/" +
                                          kContainerManifestFile);
  const std::string fresh = ContainerManifestText();
  const std::string on_disk(
      // szx-lint: allow(reinterpret-cast) -- checked-in manifest bytes back to text for comparison
      reinterpret_cast<const char*>(pinned.data()), pinned.size());
  EXPECT_EQ(fresh, on_disk)
      << "container manifest drifted -- regenerate with szx_goldengen";
}

TEST(DamagedContainer, EveryCaseVerifies) {
  for (const DamagedContainerGoldenCase& c : DamagedContainerGoldenCases()) {
    const auto err = VerifyDamagedContainerGoldenCase(c, SZX_GOLDEN_DIR);
    EXPECT_FALSE(err.has_value()) << *err;
  }
}

TEST(DamagedContainer, ManifestMatchesDisk) {
  const ByteBuffer pinned = ReadFileBytes(
      std::string(SZX_GOLDEN_DIR) + "/" + kDamagedContainerManifestFile);
  const std::string fresh = DamagedContainerManifestText();
  const std::string on_disk(
      // szx-lint: allow(reinterpret-cast) -- checked-in manifest bytes back to text for comparison
      reinterpret_cast<const char*>(pinned.data()), pinned.size());
  EXPECT_EQ(fresh, on_disk)
      << "damaged-container manifest drifted -- regenerate with szx_goldengen";
}

}  // namespace
}  // namespace szx::testkit
