// Conformance tier: golden-stream corpus.
//
// The checked-in streams under tests/golden/ pin the on-disk format.  Any
// encoder or format change shows up here as a byte diff and must be
// regenerated on purpose with tools/szx_goldengen (see docs/testing.md).
#include <gtest/gtest.h>

#include <cctype>

#include "testkit/fuzzer.hpp"
#include "testkit/golden.hpp"

namespace szx::testkit {
namespace {

class GoldenCorpus : public ::testing::TestWithParam<int> {
 protected:
  const GoldenCase& Case() const {
    return GoldenCases()[static_cast<std::size_t>(GetParam())];
  }
};

// Byte equality of the re-encoded stream plus error-bound conformance of
// the decoded golden file.
TEST_P(GoldenCorpus, EncoderAndDecoderMatchGoldenStream) {
  const auto why = VerifyGoldenCase(Case(), SZX_GOLDEN_DIR);
  ASSERT_FALSE(why.has_value()) << *why;
}

// Golden streams must satisfy every cross-decoder invariant (the same probe
// the fuzzer uses) -- catches decoder-side drift against old streams.
TEST_P(GoldenCorpus, GoldenStreamPassesCrossDecoderProbe) {
  const ByteBuffer stream =
      ReadFileBytes(std::string(SZX_GOLDEN_DIR) + "/" + Case().file);
  bool accepted = false;
  const auto why = Case().dtype == DataType::kFloat32
                       ? ProbeStream<float>(stream, &accepted)
                       : ProbeStream<double>(stream, &accepted);
  ASSERT_FALSE(why.has_value()) << Case().file << ": " << *why;
  EXPECT_TRUE(accepted) << Case().file << ": decoder rejects a golden stream";
}

std::string GoldenName(const ::testing::TestParamInfo<int>& info) {
  std::string name = GoldenCases()[static_cast<std::size_t>(info.param)].file;
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, GoldenCorpus,
    ::testing::Range(0, static_cast<int>(GoldenCases().size())), GoldenName);

// The manifest is regenerated in-process and must match the checked-in one:
// catches silently added/removed/renamed corpus files, not just content.
TEST(GoldenManifest, MatchesCheckedInManifest) {
  const ByteBuffer raw =
      ReadFileBytes(std::string(SZX_GOLDEN_DIR) + "/" + kManifestFile);
  // szx-lint: allow(reinterpret-cast) -- views manifest file bytes as text for comparison
  const std::string on_disk(reinterpret_cast<const char*>(raw.data()),
                            raw.size());
  EXPECT_EQ(on_disk, ManifestText())
      << "tests/golden/MANIFEST.txt is stale -- regenerate with szx_goldengen "
         "and review the diff";
}

// Self-check: a corrupted golden file must be detected.  Writes a mutated
// copy of the corpus into a temp dir and requires VerifyGoldenCase to flag
// it -- the demonstration that byte-level drift cannot pass silently.
TEST(GoldenSelfCheck, MutatedGoldenStreamIsDetected) {
  const GoldenCase& c = GoldenCases().front();
  ByteBuffer bytes = ReadFileBytes(std::string(SZX_GOLDEN_DIR) + "/" + c.file);
  bytes[bytes.size() / 2] ^= std::byte{0x40};
  const std::string dir = ::testing::TempDir();
  WriteFileBytes(dir + "/" + c.file, bytes);
  const auto why = VerifyGoldenCase(c, dir);
  ASSERT_TRUE(why.has_value())
      << "a flipped byte in " << c.file << " went undetected";
  EXPECT_NE(why->find("diverges"), std::string::npos) << *why;
}

TEST(GoldenSelfCheck, TruncatedGoldenStreamIsDetected) {
  const GoldenCase& c = GoldenCases().front();
  ByteBuffer bytes = ReadFileBytes(std::string(SZX_GOLDEN_DIR) + "/" + c.file);
  bytes.resize(bytes.size() - 1);
  const std::string dir = ::testing::TempDir();
  WriteFileBytes(dir + "/" + c.file, bytes);
  ASSERT_TRUE(VerifyGoldenCase(c, dir).has_value());
}

}  // namespace
}  // namespace szx::testkit
