// Damaged golden corpus (conformance tier): every pinned fault-injected
// stream must be byte-reproducible from its recipe, and salvaging it must
// produce exactly the checked-in DamageReport JSON.  This freezes salvage
// semantics the same way MANIFEST.txt freezes the encoder.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "testkit/golden.hpp"

namespace szx::testkit {
namespace {

#ifndef SZX_GOLDEN_DIR
#error "SZX_GOLDEN_DIR must be defined by the build"
#endif

TEST(DamagedGolden, CorpusCoversEveryFaultClass) {
  const auto& cases = DamagedGoldenCases();
  ASSERT_GE(cases.size(), 6u);
  for (const FaultClass cls : kAllFaultClasses) {
    const bool covered = std::any_of(
        cases.begin(), cases.end(),
        [&](const DamagedGoldenCase& c) { return c.cls == cls; });
    EXPECT_TRUE(covered) << "no pinned case for " << FaultClassName(cls);
  }
}

TEST(DamagedGolden, EveryCaseVerifies) {
  for (const DamagedGoldenCase& c : DamagedGoldenCases()) {
    const auto err = VerifyDamagedGoldenCase(c, SZX_GOLDEN_DIR);
    EXPECT_FALSE(err.has_value()) << *err;
  }
}

TEST(DamagedGolden, ManifestMatchesDisk) {
  const ByteBuffer pinned =
      ReadFileBytes(std::string(SZX_GOLDEN_DIR) + "/" + kDamagedManifestFile);
  const std::string fresh = DamagedManifestText();
  const std::string on_disk(
      // szx-lint: allow(reinterpret-cast) -- checked-in manifest bytes back to text for comparison
      reinterpret_cast<const char*>(pinned.data()), pinned.size());
  EXPECT_EQ(fresh, on_disk)
      << "DAMAGED_MANIFEST.txt is stale; regenerate with szx_goldengen";
}

TEST(DamagedGolden, ReportsAreNeverCleanAndAlwaysParseable) {
  for (const DamagedGoldenCase& c : DamagedGoldenCases()) {
    const ByteBuffer pinned =
        ReadFileBytes(std::string(SZX_GOLDEN_DIR) + "/" + c.file);
    const std::string json = SalvageReportJson(c, pinned);
    EXPECT_EQ(json.front(), '{') << c.file;
    EXPECT_EQ(json.back(), '}') << c.file;
    EXPECT_EQ(json.find("\"clean\":true"), std::string::npos)
        << c.file << " pins a clean report; the injection did nothing";
  }
}

}  // namespace
}  // namespace szx::testkit
