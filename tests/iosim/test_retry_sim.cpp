// Fault-injected dump simulation: exact collapse to the fault-free
// fair-share result at zero fault rate, retry accounting, and policy
// validation.
#include "iosim/retry_sim.hpp"

#include <gtest/gtest.h>

namespace szx::iosim {
namespace {

RankWorkload NyxLikeWorkload() {
  RankWorkload w;
  w.bytes_per_rank = 512ull << 20;
  w.compress_gbps = 30.0;
  w.decompress_gbps = 60.0;
  w.compression_ratio = 8.0;
  return w;
}

TEST(RetrySim, ZeroFaultRateCollapsesExactlyToFairShare) {
  const PfsSpec pfs;
  const RankWorkload w = NyxLikeWorkload();
  const WriteFaultModel no_faults{};  // prob = 0
  const RetryPolicy policy;
  for (const int ranks : {1, 16, 128}) {
    for (const double jitter : {0.0, 0.15}) {
      const JitteredJobResult ref =
          SimulateJitteredDump(pfs, ranks, w, jitter);
      const FaultyDumpResult res =
          SimulateFaultyDump(pfs, ranks, w, jitter, no_faults, policy);
      // Bit-exact: the retry path must perform the identical arithmetic.
      EXPECT_EQ(res.makespan_s, ref.makespan_s)
          << "ranks=" << ranks << " jitter=" << jitter;
      EXPECT_EQ(res.mean_finish_s, ref.mean_finish_s);
      EXPECT_EQ(res.attempts, static_cast<std::uint64_t>(ranks));
      EXPECT_EQ(res.retries, 0u);
      EXPECT_EQ(res.gave_up_ranks, 0u);
      EXPECT_EQ(res.max_backoff_s, 0.0);
    }
  }
}

TEST(RetrySim, DynamicCoreMatchesSpanEntryPoint) {
  const PfsSpec pfs;
  std::vector<WriteRequest> reqs;
  for (int i = 0; i < 32; ++i) {
    reqs.push_back({0.01 * i, 1e9 + 1e7 * i});
  }
  const auto a = SimulateFairShare(pfs, reqs);
  std::vector<WriteRequest> copy = reqs;
  const auto b = SimulateFairShareDynamic(pfs, copy, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_s, b[i].start_s);
    EXPECT_EQ(a[i].finish_s, b[i].finish_s);
  }
}

TEST(RetrySim, FaultsCostTimeAndAreRetried) {
  const PfsSpec pfs;
  const RankWorkload w = NyxLikeWorkload();
  const RetryPolicy policy;
  const int ranks = 64;

  WriteFaultModel faults;
  faults.transient_failure_prob = 0.2;
  const FaultyDumpResult faulty =
      SimulateFaultyDump(pfs, ranks, w, 0.1, faults, policy);
  const FaultyDumpResult clean =
      SimulateFaultyDump(pfs, ranks, w, 0.1, WriteFaultModel{}, policy);

  EXPECT_GT(faulty.retries, 0u);
  EXPECT_GT(faulty.attempts, static_cast<std::uint64_t>(ranks));
  EXPECT_EQ(faulty.attempts,
            static_cast<std::uint64_t>(ranks) + faulty.retries);
  EXPECT_GT(faulty.makespan_s, clean.makespan_s);
  // Backoff waits are bounded by the policy cap plus its jitter stretch.
  EXPECT_LE(faulty.max_backoff_s,
            policy.max_backoff_s * (1.0 + policy.jitter));
}

TEST(RetrySim, AttemptsGrowWithFaultRate) {
  const PfsSpec pfs;
  const RankWorkload w = NyxLikeWorkload();
  const RetryPolicy policy;
  std::uint64_t prev = 0;
  for (const double p : {0.0, 0.05, 0.2, 0.5}) {
    WriteFaultModel faults;
    faults.transient_failure_prob = p;
    const FaultyDumpResult res =
        SimulateFaultyDump(pfs, 64, w, 0.1, faults, policy);
    // The same per-attempt uniforms are compared against a growing
    // threshold, so the failure set (and attempt count) is monotone.
    EXPECT_GE(res.attempts, prev);
    prev = res.attempts;
  }
  EXPECT_GT(prev, 64u);
}

TEST(RetrySim, SingleAttemptPolicyGivesUpInsteadOfRetrying) {
  const PfsSpec pfs;
  const RankWorkload w = NyxLikeWorkload();
  RetryPolicy policy;
  policy.max_attempts = 1;
  WriteFaultModel faults;
  faults.transient_failure_prob = 0.5;
  const FaultyDumpResult res =
      SimulateFaultyDump(pfs, 64, w, 0.1, faults, policy);
  EXPECT_EQ(res.retries, 0u);
  EXPECT_EQ(res.attempts, 64u);
  EXPECT_GT(res.gave_up_ranks, 0u);
  EXPECT_LT(res.gave_up_ranks, 64u);
}

TEST(RetrySim, DeterministicForFixedSeeds) {
  const PfsSpec pfs;
  const RankWorkload w = NyxLikeWorkload();
  WriteFaultModel faults;
  faults.transient_failure_prob = 0.3;
  const RetryPolicy policy;
  const auto a = SimulateFaultyDump(pfs, 32, w, 0.1, faults, policy);
  const auto b = SimulateFaultyDump(pfs, 32, w, 0.1, faults, policy);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.retries, b.retries);
}

TEST(RetrySim, RejectsInvalidInputs) {
  const PfsSpec pfs;
  const RankWorkload w = NyxLikeWorkload();
  const RetryPolicy ok;
  EXPECT_THROW(
      SimulateFaultyDump(pfs, 0, w, 0.0, WriteFaultModel{}, ok),
      std::invalid_argument);
  WriteFaultModel bad;
  bad.transient_failure_prob = 1.0;
  EXPECT_THROW(SimulateFaultyDump(pfs, 4, w, 0.0, bad, ok),
               std::invalid_argument);
  RetryPolicy zero_attempts;
  zero_attempts.max_attempts = 0;
  EXPECT_THROW(
      SimulateFaultyDump(pfs, 4, w, 0.0, WriteFaultModel{}, zero_attempts),
      std::invalid_argument);
  RetryPolicy shrinking;
  shrinking.multiplier = 0.5;
  EXPECT_THROW(
      SimulateFaultyDump(pfs, 4, w, 0.0, WriteFaultModel{}, shrinking),
      std::invalid_argument);
}

}  // namespace
}  // namespace szx::iosim
