// PFS model tests: bandwidth sharing, phase accounting, and the Fig. 16
// qualitative property (faster compressor wins end-to-end when the PFS is
// fast).
#include "iosim/pfs_sim.hpp"

#include <gtest/gtest.h>

namespace szx::iosim {
namespace {

PfsSpec TestPfs() {
  PfsSpec pfs;
  pfs.aggregate_bw_gbps = 100.0;
  pfs.per_rank_bw_gbps = 2.0;
  pfs.latency_s = 0.01;
  return pfs;
}

TEST(Pfs, PerRankCapDominatesAtSmallScale) {
  const PfsSpec pfs = TestPfs();
  EXPECT_DOUBLE_EQ(EffectiveRankBandwidthGBps(pfs, 10), 2.0);
}

TEST(Pfs, AggregateCapDominatesAtLargeScale) {
  const PfsSpec pfs = TestPfs();
  EXPECT_DOUBLE_EQ(EffectiveRankBandwidthGBps(pfs, 1000), 0.1);
}

TEST(Pfs, InvalidRanksThrow) {
  EXPECT_THROW(EffectiveRankBandwidthGBps(TestPfs(), 0),
               std::invalid_argument);
  EXPECT_THROW(EffectiveRankBandwidthGBps(TestPfs(), -4),
               std::invalid_argument);
}

TEST(Dump, PhaseAccounting) {
  const PfsSpec pfs = TestPfs();
  RankWorkload w;
  w.bytes_per_rank = 1'000'000'000;  // 1 GB
  w.compress_gbps = 1.0;
  w.decompress_gbps = 2.0;
  w.compression_ratio = 10.0;
  const PhaseTime t = SimulateDump(pfs, 10, w);
  EXPECT_NEAR(t.compute_s, 1.0, 1e-9);             // 1 GB at 1 GB/s
  EXPECT_NEAR(t.io_s, 0.1 / 2.0 + 0.01, 1e-9);     // 0.1 GB at 2 GB/s
  const PhaseTime l = SimulateLoad(pfs, 10, w);
  EXPECT_NEAR(l.compute_s, 0.5, 1e-9);
  EXPECT_NEAR(l.io_s, t.io_s, 1e-12);
}

TEST(Dump, MoreRanksNeverFaster) {
  const PfsSpec pfs = TestPfs();
  RankWorkload w;
  w.bytes_per_rank = 500'000'000;
  w.compress_gbps = 3.0;
  w.decompress_gbps = 4.0;
  w.compression_ratio = 5.0;
  double prev = 0.0;
  for (int ranks : {64, 128, 256, 512, 1024}) {
    const double total = SimulateDump(pfs, ranks, w).total();
    EXPECT_GE(total, prev) << ranks;
    prev = total;
  }
}

TEST(Dump, CompressionBeatsRawOnSlowPfs) {
  // The whole point of compressed I/O: when the PFS share per rank is thin,
  // even a slow compressor wins against writing raw.
  const PfsSpec pfs = TestPfs();
  RankWorkload w;
  w.bytes_per_rank = 1'000'000'000;
  w.compress_gbps = 0.25;  // slow compressor
  w.decompress_gbps = 0.5;
  w.compression_ratio = 20.0;
  const double with = SimulateDump(pfs, 1024, w).total();
  const double raw = SimulateRawDump(pfs, 1024, w.bytes_per_rank).total();
  EXPECT_LT(with, raw);
}

TEST(Dump, FasterCompressorWinsWhenIoIsCheap) {
  // Fig. 16's key conclusion: at high PFS bandwidth the compression stage
  // dominates, so the 5x-faster compressor (SZx-like) wins end to end even
  // with a lower compression ratio.
  PfsSpec fast = TestPfs();
  fast.aggregate_bw_gbps = 10000.0;
  RankWorkload szx_like;
  szx_like.bytes_per_rank = 1'000'000'000;
  szx_like.compress_gbps = 1.0;
  szx_like.decompress_gbps = 1.4;
  szx_like.compression_ratio = 6.0;
  RankWorkload sz_like = szx_like;
  sz_like.compress_gbps = 0.2;
  sz_like.decompress_gbps = 0.4;
  sz_like.compression_ratio = 60.0;
  EXPECT_LT(SimulateDump(fast, 256, szx_like).total(),
            SimulateDump(fast, 256, sz_like).total());
  EXPECT_LT(SimulateLoad(fast, 256, szx_like).total(),
            SimulateLoad(fast, 256, sz_like).total());
}

TEST(Dump, RatioWinsWhenIoIsScarce) {
  // Conversely the crossover: starve the PFS and the high-ratio compressor
  // wins despite its speed.
  PfsSpec slow = TestPfs();
  slow.aggregate_bw_gbps = 5.0;
  RankWorkload szx_like;
  szx_like.bytes_per_rank = 1'000'000'000;
  szx_like.compress_gbps = 1.0;
  szx_like.decompress_gbps = 1.4;
  szx_like.compression_ratio = 6.0;
  RankWorkload sz_like = szx_like;
  sz_like.compress_gbps = 0.2;
  sz_like.decompress_gbps = 0.4;
  sz_like.compression_ratio = 60.0;
  EXPECT_GT(SimulateDump(slow, 1024, szx_like).total(),
            SimulateDump(slow, 1024, sz_like).total());
}

TEST(Workload, InvalidRatesRejected) {
  RankWorkload w;
  w.bytes_per_rank = 100;
  w.compress_gbps = 0.0;
  w.decompress_gbps = 1.0;
  w.compression_ratio = 2.0;
  EXPECT_THROW(SimulateDump(TestPfs(), 4, w), std::invalid_argument);
}

}  // namespace
}  // namespace szx::iosim
