// Discrete-event fair-share PFS simulator tests, including the collapse to
// the analytic model under zero jitter.
#include "iosim/event_sim.hpp"

#include <gtest/gtest.h>

namespace szx::iosim {
namespace {

PfsSpec TestPfs() {
  PfsSpec pfs;
  pfs.aggregate_bw_gbps = 100.0;
  pfs.per_rank_bw_gbps = 2.0;
  pfs.latency_s = 0.0;  // isolate the bandwidth dynamics
  return pfs;
}

TEST(FairShare, SingleWriterGetsStreamCap) {
  const PfsSpec pfs = TestPfs();
  const WriteRequest reqs[] = {{0.0, 2e9}};  // 2 GB at 2 GB/s
  const auto done = SimulateFairShare(pfs, reqs);
  EXPECT_NEAR(done[0].finish_s, 1.0, 1e-9);
  EXPECT_NEAR(done[0].start_s, 0.0, 1e-12);
}

TEST(FairShare, ManyWritersShareAggregate) {
  const PfsSpec pfs = TestPfs();
  // 100 simultaneous writers of 1 GB each: share = min(2, 100/100) = 1 GB/s.
  std::vector<WriteRequest> reqs(100, {0.0, 1e9});
  const auto done = SimulateFairShare(pfs, reqs);
  for (const auto& c : done) {
    EXPECT_NEAR(c.finish_s, 1.0, 1e-6);
  }
}

TEST(FairShare, LateArrivalSpeedsUpAfterOthersDrain) {
  PfsSpec pfs = TestPfs();
  pfs.aggregate_bw_gbps = 2.0;  // two writers split 2 GB/s
  // Writer 0: 2 GB at t=0.  Writer 1: 1 GB at t=0.
  const WriteRequest reqs[] = {{0.0, 2e9}, {0.0, 1e9}};
  const auto done = SimulateFairShare(pfs, reqs);
  // Both get 1 GB/s until writer 1 finishes at t=1 (1 GB done);
  // writer 0 then has 1 GB left at 2 GB/s -> finishes at 1.5.
  EXPECT_NEAR(done[1].finish_s, 1.0, 1e-6);
  EXPECT_NEAR(done[0].finish_s, 1.5, 1e-6);
}

TEST(FairShare, StaggeredArrivals) {
  PfsSpec pfs = TestPfs();
  pfs.aggregate_bw_gbps = 2.0;
  // Writer 0 alone for 1 s (writes 2 GB of 3 GB), then shares.
  const WriteRequest reqs[] = {{0.0, 3e9}, {1.0, 1e9}};
  const auto done = SimulateFairShare(pfs, reqs);
  // After t=1: both at 1 GB/s. Writer 0 has 1 GB left -> t=2; writer 1
  // 1 GB -> t=2.
  EXPECT_NEAR(done[0].finish_s, 2.0, 1e-6);
  EXPECT_NEAR(done[1].finish_s, 2.0, 1e-6);
  EXPECT_NEAR(done[1].start_s, 1.0, 1e-9);
}

TEST(FairShare, IdleGapsAreSkipped) {
  const PfsSpec pfs = TestPfs();
  const WriteRequest reqs[] = {{5.0, 2e9}};
  const auto done = SimulateFairShare(pfs, reqs);
  EXPECT_NEAR(done[0].finish_s, 6.0, 1e-6);
}

TEST(FairShare, EmptyAndZeroByteRequests) {
  const PfsSpec pfs = TestPfs();
  EXPECT_TRUE(SimulateFairShare(pfs, {}).empty());
  const WriteRequest reqs[] = {{1.0, 0.0}};
  const auto done = SimulateFairShare(pfs, reqs);
  EXPECT_NEAR(done[0].finish_s, 1.0, 1e-6);
}

TEST(FairShare, InvalidRequestRejected) {
  const PfsSpec pfs = TestPfs();
  const WriteRequest reqs[] = {{-1.0, 100.0}};
  EXPECT_THROW(SimulateFairShare(pfs, reqs), std::invalid_argument);
}

TEST(JitteredDump, ZeroJitterMatchesAnalyticModel) {
  const PfsSpec pfs = TestPfs();
  RankWorkload w;
  w.bytes_per_rank = 1'000'000'000;
  w.compress_gbps = 1.0;
  w.decompress_gbps = 1.0;
  w.compression_ratio = 10.0;
  for (const int ranks : {10, 100, 1000}) {
    const auto sim = SimulateJitteredDump(pfs, ranks, w, 0.0);
    const auto analytic = SimulateDump(pfs, ranks, w);
    EXPECT_NEAR(sim.makespan_s, analytic.total(), analytic.total() * 1e-6)
        << ranks;
    // Contention stretch vs. an uncontended stream: zero while the
    // per-rank cap binds (ranks <= aggregate/per_rank), then exactly the
    // fair-share slowdown.
    const double bytes =
        static_cast<double>(w.bytes_per_rank) / w.compression_ratio;
    const double share = EffectiveRankBandwidthGBps(pfs, ranks) * 1e9;
    const double expected_wait =
        bytes / share - bytes / (pfs.per_rank_bw_gbps * 1e9);
    EXPECT_NEAR(sim.max_io_wait_s, expected_wait, 1e-6) << ranks;
  }
}

TEST(JitteredDump, JitterStretchesMakespanModestly) {
  const PfsSpec pfs = TestPfs();
  RankWorkload w;
  w.bytes_per_rank = 1'000'000'000;
  w.compress_gbps = 1.0;
  w.decompress_gbps = 1.0;
  w.compression_ratio = 10.0;
  const auto tight = SimulateJitteredDump(pfs, 256, w, 0.0);
  const auto loose = SimulateJitteredDump(pfs, 256, w, 0.3);
  EXPECT_GT(loose.makespan_s, tight.makespan_s);
  // Staggered arrivals can only help the I/O stage (less contention), so
  // the stretch is bounded by the compute jitter itself.
  EXPECT_LT(loose.makespan_s, tight.makespan_s * 1.5);
}

TEST(JitteredDump, JitterReducesPeakContention) {
  // With everyone arriving together the PFS is saturated; staggering
  // arrivals lowers the worst per-rank I/O wait.
  PfsSpec pfs = TestPfs();
  pfs.aggregate_bw_gbps = 10.0;  // scarce
  RankWorkload w;
  w.bytes_per_rank = 1'000'000'000;
  w.compress_gbps = 2.0;
  w.decompress_gbps = 2.0;
  w.compression_ratio = 2.0;
  const auto tight = SimulateJitteredDump(pfs, 512, w, 0.0);
  const auto loose = SimulateJitteredDump(pfs, 512, w, 0.5);
  EXPECT_LT(loose.max_io_wait_s, tight.max_io_wait_s);
}

TEST(JitteredDump, InvalidArgsRejected) {
  RankWorkload w;
  w.bytes_per_rank = 100;
  w.compress_gbps = 1.0;
  w.decompress_gbps = 1.0;
  w.compression_ratio = 2.0;
  EXPECT_THROW(SimulateJitteredDump(TestPfs(), 0, w, 0.1),
               std::invalid_argument);
  EXPECT_THROW(SimulateJitteredDump(TestPfs(), 4, w, 1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace szx::iosim
