// Real-file chunk backend: round-trip fidelity, mutator bookkeeping, the
// deterministic transient-fault model (retries restart at the same offset,
// so nothing is lost or duplicated), and the pipelined-dump overlap model
// that makes the Fig. 16 serial-sum makespan the baseline to beat.
#include "iosim/file_backend.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "iosim/pfs_sim.hpp"

namespace szx::iosim {
namespace {

std::string TempPath(const char* tag) {
  return testing::TempDir() + "szx_file_backend_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

std::vector<std::byte> Pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  unsigned x = seed * 2654435761U + 1U;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525U + 1013904223U;
    v[i] = static_cast<std::byte>(x >> 24);
  }
  return v;
}

class FileBackendTest : public testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) {
      std::remove(p.c_str());
    }
  }
  std::string Path(const char* tag) {
    paths_.push_back(TempPath(tag));
    return paths_.back();
  }
  std::vector<std::string> paths_;
};

TEST_F(FileBackendTest, RoundTripsChunksByteExactly) {
  const auto path = Path("roundtrip");
  const auto payload = Pattern(10'000, 1);
  const std::size_t chunk = 1'024;

  ChunkFileWriter out(path);
  for (std::size_t pos = 0; pos < payload.size(); pos += chunk) {
    const std::size_t n = std::min(chunk, payload.size() - pos);
    out.WriteChunk(std::span<const std::byte>(payload).subspan(pos, n));
  }
  out.Close();
  EXPECT_EQ(out.stats().chunks, 10U);
  EXPECT_EQ(out.stats().bytes, payload.size());
  EXPECT_EQ(out.stats().mutated, 0U);
  EXPECT_EQ(FileSizeBytes(path), payload.size());

  ChunkFileReader in(path);
  std::vector<std::byte> got;
  std::vector<std::byte> buf(chunk);
  for (std::size_t n = in.ReadChunk(buf); n != 0; n = in.ReadChunk(buf)) {
    got.insert(got.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  EXPECT_EQ(got, payload);
  EXPECT_EQ(in.stats().chunks, 10U);
  EXPECT_EQ(in.stats().retries, 0U);
  EXPECT_EQ(in.stats().attempts, 11U);  // 10 chunks + 1 EOF probe
}

TEST_F(FileBackendTest, MutatorRewritesChunksInFlight) {
  const auto path = Path("mutator");
  const auto payload = Pattern(256, 2);

  ChunkFileWriter out(path);
  out.set_mutator([](std::uint64_t index, std::vector<std::byte>& chunk) {
    if (index == 1) {
      chunk[0] ^= std::byte{0xFF};  // corrupt
    } else if (index == 2) {
      chunk.resize(chunk.size() / 2);  // truncate
    }
  });
  for (int c = 0; c < 4; ++c) {
    out.WriteChunk(std::span<const std::byte>(payload).subspan(
        static_cast<std::size_t>(64 * c), 64));
  }
  out.Close();
  EXPECT_EQ(out.stats().chunks, 4U);
  EXPECT_EQ(out.stats().mutated, 2U);
  EXPECT_EQ(out.stats().bytes, 64U + 64U + 32U + 64U);
  EXPECT_EQ(FileSizeBytes(path), 224U);
}

TEST_F(FileBackendTest, TransientFaultsRetryFromSameOffset) {
  const auto path = Path("faults");
  const auto payload = Pattern(9'000, 3);
  {
    ChunkFileWriter out(path);
    out.WriteChunk(payload);
    out.Close();
  }

  TransientReadFaults faults;
  faults.period = 3;  // chunks 3, 6, 9 fail on first attempt
  faults.max_attempts = 2;
  ChunkFileReader in(path, faults);
  std::vector<std::byte> got;
  std::vector<std::byte> buf(1'000);
  for (std::size_t n = in.ReadChunk(buf); n != 0; n = in.ReadChunk(buf)) {
    got.insert(got.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  // The retried chunks are byte-identical: nothing lost, nothing repeated.
  EXPECT_EQ(got, payload);
  EXPECT_EQ(in.stats().chunks, 9U);
  EXPECT_EQ(in.stats().retries, 3U);
  EXPECT_EQ(in.stats().attempts, 9U + 3U + 1U);
}

TEST_F(FileBackendTest, ExhaustedRetriesThrow) {
  const auto path = Path("exhausted");
  {
    ChunkFileWriter out(path);
    const auto payload = Pattern(64, 4);
    out.WriteChunk(payload);
    out.Close();
  }
  TransientReadFaults faults;
  faults.period = 1;        // every chunk faults once...
  faults.max_attempts = 1;  // ...and no retry budget exists
  ChunkFileReader in(path, faults);
  std::vector<std::byte> buf(64);
  EXPECT_THROW(in.ReadChunk(buf), std::runtime_error);
}

TEST_F(FileBackendTest, InvalidInputsThrow) {
  EXPECT_THROW(ChunkFileReader in("/nonexistent/szx/file.bin"),
               std::runtime_error);
  EXPECT_THROW(FileSizeBytes("/nonexistent/szx/file.bin"),
               std::runtime_error);
  const auto path = Path("badattempts");
  {
    ChunkFileWriter out(path);
    const auto payload = Pattern(8, 5);
    out.WriteChunk(payload);
    out.Close();
  }
  TransientReadFaults faults;
  faults.max_attempts = 0;
  EXPECT_THROW(ChunkFileReader in(path, faults), std::runtime_error);
}

TEST_F(FileBackendTest, WriteAfterCloseThrows) {
  const auto path = Path("closed");
  ChunkFileWriter out(path);
  const auto payload = Pattern(16, 6);
  out.WriteChunk(payload);
  out.Close();
  EXPECT_THROW(out.WriteChunk(payload), std::runtime_error);
}

// --- EINTR / short-I/O hardening (injected raw ops) -----------------------
//
// The raw ops serve an in-memory file image so the tests can script exact
// interrupted-syscall schedules.  Before the resume loop, a short read
// mid-chunk surfaced as a torn chunk (trailing garbage bytes); these tests
// pin the repaired contract byte-for-byte.

// Positioned read over `image` that never moves more than `cap` bytes per
// call and fails with EINTR on the call ordinals in `eintr_on` (1-based).
RawReadOp ScriptedRead(const std::vector<std::byte>& image, std::size_t cap,
                       std::vector<int> eintr_on, int* calls) {
  return [&image, cap, eintr_on = std::move(eintr_on), calls](
             std::byte* dst, std::size_t n, std::uint64_t offset,
             int& err) -> long long {
    const int call = ++*calls;
    if (std::find(eintr_on.begin(), eintr_on.end(), call) != eintr_on.end()) {
      err = EINTR;
      return -1;
    }
    if (offset >= image.size()) return 0;
    const std::size_t give =
        std::min({n, image.size() - static_cast<std::size_t>(offset), cap});
    std::copy_n(image.begin() + static_cast<std::ptrdiff_t>(offset), give,
                dst);
    return static_cast<long long>(give);
  };
}

TEST_F(FileBackendTest, ShortReadsMidChunkAreResumedByteExactly) {
  const auto path = Path("shortread");
  const auto payload = Pattern(4'096, 11);
  {
    ChunkFileWriter out(path);
    out.WriteChunk(payload);
    out.Close();
  }
  ChunkFileReader in(path);
  int calls = 0;
  in.set_raw_read(ScriptedRead(payload, 100, {}, &calls));
  std::vector<std::byte> out(payload.size());
  ASSERT_EQ(in.ReadChunk(out), payload.size());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(calls, 41);  // ceil(4096 / 100)
  EXPECT_EQ(in.stats().short_ios, 40u);    // every call but the last
  EXPECT_EQ(in.stats().chunks, 1u);
  EXPECT_EQ(in.stats().retries, 0u);  // resumes are not chunk-level retries
  EXPECT_EQ(in.stats().bytes, payload.size());
}

TEST_F(FileBackendTest, EintrMidChunkIsRetriedNotSurfaced) {
  const auto path = Path("eintrread");
  const auto payload = Pattern(1'000, 12);
  {
    ChunkFileWriter out(path);
    out.WriteChunk(payload);
    out.Close();
  }
  ChunkFileReader in(path);
  int calls = 0;
  // Interrupt the 1st and 3rd syscalls; serve 400 bytes otherwise.
  in.set_raw_read(ScriptedRead(payload, 400, {1, 3}, &calls));
  std::vector<std::byte> out(payload.size());
  ASSERT_EQ(in.ReadChunk(out), payload.size());
  EXPECT_EQ(out, payload);
  EXPECT_EQ(in.stats().eintr_retries, 2u);
  EXPECT_EQ(in.stats().retries, 0u);  // EINTR is below the chunk-retry model
}

TEST_F(FileBackendTest, PersistentEintrExhaustsTheBudgetAndThrows) {
  const auto path = Path("eintrstuck");
  {
    ChunkFileWriter out(path);
    out.WriteChunk(Pattern(64, 13));
    out.Close();
  }
  ChunkFileReader in(path);
  in.set_raw_read([](std::byte*, std::size_t, std::uint64_t,
                     int& err) -> long long {
    err = EINTR;
    return -1;  // interrupted forever: must error out, not livelock
  });
  std::vector<std::byte> out(64);
  EXPECT_THROW((void)in.ReadChunk(out), std::runtime_error);
}

TEST_F(FileBackendTest, HardReadErrorsAreNotRetried) {
  const auto path = Path("hardread");
  {
    ChunkFileWriter out(path);
    out.WriteChunk(Pattern(64, 14));
    out.Close();
  }
  ChunkFileReader in(path);
  int calls = 0;
  in.set_raw_read([&calls](std::byte*, std::size_t, std::uint64_t,
                           int& err) -> long long {
    ++calls;
    err = EIO;
    return -1;
  });
  std::vector<std::byte> out(64);
  EXPECT_THROW((void)in.ReadChunk(out), std::runtime_error);
  EXPECT_EQ(calls, 1);  // EIO is terminal, not a transient to spin on
}

TEST_F(FileBackendTest, ShortAndInterruptedWritesAreResumed) {
  const auto path = Path("shortwrite");
  const auto payload = Pattern(1'024, 15);
  ChunkFileWriter out(path);
  std::vector<std::byte> sink;  // what "the kernel" accepted, in order
  int calls = 0;
  out.set_raw_write([&](const std::byte* src, std::size_t n,
                        int& err) -> long long {
    ++calls;
    if (calls % 4 == 0) {
      err = EINTR;
      return -1;
    }
    const std::size_t give = std::min<std::size_t>(n, 50);
    sink.insert(sink.end(), src, src + give);
    return static_cast<long long>(give);
  });
  out.WriteChunk(payload);
  // The file image must be the payload exactly once, in order -- the
  // resume loop may never re-send an accepted byte or drop an unsent one.
  EXPECT_EQ(sink, payload);
  EXPECT_GT(out.stats().eintr_retries, 0u);
  EXPECT_GT(out.stats().short_ios, 0u);
  EXPECT_EQ(out.stats().chunks, 1u);
  EXPECT_EQ(out.stats().bytes, payload.size());
}

TEST_F(FileBackendTest, PersistentWriteEintrThrows) {
  const auto path = Path("writestuck");
  ChunkFileWriter out(path);
  out.set_raw_write([](const std::byte*, std::size_t, int& err) -> long long {
    err = EINTR;
    return -1;
  });
  EXPECT_THROW(out.WriteChunk(Pattern(16, 16)), std::runtime_error);
}

TEST_F(FileBackendTest, RestoredRawOpsUseTheRealFileAgain) {
  const auto path = Path("restore");
  const auto payload = Pattern(256, 17);
  {
    ChunkFileWriter out(path);
    out.WriteChunk(payload);
    out.Close();
  }
  ChunkFileReader in(path);
  int calls = 0;
  in.set_raw_read(ScriptedRead(payload, 64, {}, &calls));
  std::vector<std::byte> first(payload.size());
  ASSERT_EQ(in.ReadChunk(first), payload.size());
  ASSERT_GT(calls, 1);
  // Empty op = back to the real pread; the second chunk read hits EOF on
  // the real (one-chunk) file rather than the in-memory script.
  in.set_raw_read(RawReadOp{});
  std::vector<std::byte> second(payload.size());
  EXPECT_EQ(in.ReadChunk(second), 0u);
}

// --- Overlap makespan model (SimulatePipelinedDump) -----------------------

RankWorkload NyxLikeWorkload() {
  RankWorkload w;
  w.bytes_per_rank = std::uint64_t{512} * 1024 * 1024;
  w.compress_gbps = 8.0;
  w.decompress_gbps = 12.0;
  w.compression_ratio = 6.0;
  return w;
}

TEST(PipelinedDump, NeverSlowerThanSerialSum) {
  const PfsSpec pfs;
  const auto w = NyxLikeWorkload();
  for (const int ranks : {1, 64, 256, 1024}) {
    for (const std::uint32_t chunks : {1U, 2U, 4U, 16U, 64U}) {
      const PipelinedTime t = SimulatePipelinedDump(pfs, ranks, w, chunks);
      EXPECT_LE(t.pipelined_s, t.serial_s + 1e-12)
          << "ranks=" << ranks << " chunks=" << chunks;
      EXPECT_GE(t.speedup(), 1.0 - 1e-12);
      EXPECT_LT(t.speedup(), 2.0);  // overlap hides at most the shorter phase
    }
  }
}

TEST(PipelinedDump, SingleChunkDegeneratesToSerial) {
  const PfsSpec pfs;
  const PipelinedTime t = SimulatePipelinedDump(pfs, 128, NyxLikeWorkload(), 1);
  EXPECT_DOUBLE_EQ(t.pipelined_s, t.serial_s);
}

TEST(PipelinedDump, SerialSumMatchesFig16Model) {
  const PfsSpec pfs;
  const auto w = NyxLikeWorkload();
  const PhaseTime serial = SimulateDump(pfs, 256, w);
  const PipelinedTime t = SimulatePipelinedDump(pfs, 256, w, 8);
  EXPECT_NEAR(t.serial_s, serial.total(), 1e-9);
}

TEST(PipelinedDump, MoreChunksNeverHurt) {
  const PfsSpec pfs;
  const auto w = NyxLikeWorkload();
  double prev = SimulatePipelinedDump(pfs, 512, w, 1).pipelined_s;
  for (const std::uint32_t chunks : {2U, 4U, 8U, 32U, 128U}) {
    const double cur = SimulatePipelinedDump(pfs, 512, w, chunks).pipelined_s;
    EXPECT_LE(cur, prev + 1e-12) << "chunks=" << chunks;
    prev = cur;
  }
}

TEST(PipelinedDump, ApproachesMaxPhaseBound) {
  const PfsSpec pfs;
  const auto w = NyxLikeWorkload();
  // With many chunks the makespan approaches max(compute, transfer) +
  // latency: the shorter phase is fully hidden behind the longer one.
  // (PhaseTime::io_s folds the latency in, so strip it before the max.)
  const PhaseTime serial = SimulateDump(pfs, 256, w);
  const double bound =
      std::max(serial.compute_s, serial.io_s - pfs.latency_s) +
      pfs.latency_s;
  const PipelinedTime t = SimulatePipelinedDump(pfs, 256, w, 1'024);
  EXPECT_NEAR(t.pipelined_s, bound, 0.05 * bound);
  EXPECT_GE(t.pipelined_s, bound - 1e-12);
}

TEST(PipelinedDump, ZeroChunksThrows) {
  const PfsSpec pfs;
  EXPECT_THROW(SimulatePipelinedDump(pfs, 64, NyxLikeWorkload(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace szx::iosim
