// Hybrid (SZx + lossless post-pass) tests: round trips, the size-never-
// worse-than-wrapper guarantee, and the ratio gain on structured data.
#include "hybrid/hybrid.hpp"

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "../test_util.hpp"

namespace szx::hybrid {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testing::WithinBound;

class HybridSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(HybridSweep, RoundTripRespectsBound) {
  const auto [pat, eb] = GetParam();
  const auto data = MakePattern<float>(static_cast<Pattern>(pat), 20000, 3);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = eb;
  HybridStats stats;
  const auto stream = hybrid::Compress<float>(data, p, &stats);
  EXPECT_TRUE(IsHybridStream(stream));
  EXPECT_EQ(stats.final_bytes, stream.size());
  const auto out = hybrid::Decompress<float>(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, eb));
}

INSTANTIATE_TEST_SUITE_P(Sweep, HybridSweep,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(1e-2, 1e-5)));

TEST(Hybrid, DoubleRoundTrip) {
  const auto data = MakePattern<double>(Pattern::kNoisySine, 30000, 5);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-4;
  const auto stream = hybrid::Compress<double>(data, p);
  const auto inner = Unwrap(stream);
  const double abs = PeekHeader(inner).error_bound_abs;
  EXPECT_TRUE(WithinBound<double>(data, hybrid::Decompress<double>(stream), abs));
}

TEST(Hybrid, ReconstructionIdenticalToPlainSzx) {
  // The lossless stage must be transparent: reconstructions match the
  // plain SZx path bit for bit.
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 50000, 9);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  const auto plain = szx::Decompress<float>(szx::Compress<float>(data, p));
  const auto via_hybrid =
      hybrid::Decompress<float>(hybrid::Compress<float>(data, p));
  EXPECT_EQ(plain, via_hybrid);
}

TEST(Hybrid, GainsOnStructuredData) {
  // Constant-heavy fields leave redundancy (repeated mu values, lead runs)
  // that the lossless stage recovers.
  const data::Field f =
      data::GenerateField(data::App::kHurricane, "QSNOW", 0.3);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-2;
  HybridStats stats;
  hybrid::Compress<float>(f.values, p, &stats);
  EXPECT_TRUE(stats.lossless_stage_used);
  EXPECT_GT(stats.LosslessGain(), 1.1);
}

TEST(Hybrid, NeverWorseThanWrapperOverhead) {
  // Incompressible SZx output: the stored stage caps the cost at 8 bytes.
  szx::testing::Rng rng(3);
  std::vector<float> data(20000);
  for (auto& v : data) {
    v = std::bit_cast<float>(
        static_cast<std::uint32_t>(rng.Next() & 0x7f7fffffu));
  }
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-30;
  HybridStats stats;
  const auto stream = hybrid::Compress<float>(data, p, &stats);
  EXPECT_LE(stream.size(), stats.szx_bytes + 8);
  const auto out = hybrid::Decompress<float>(stream);
  for (std::size_t i = 0; i < data.size(); ++i) ASSERT_EQ(data[i], out[i]);
}

TEST(Hybrid, UnwrapExposesInnerHeader) {
  const auto data = MakePattern<float>(Pattern::kRamp, 5000, 1);
  Params p;
  p.block_size = 64;
  const auto stream = hybrid::Compress<float>(data, p);
  const Header h = PeekHeader(Unwrap(stream));
  EXPECT_EQ(h.num_elements, 5000u);
  EXPECT_EQ(h.block_size, 64u);
}

TEST(Hybrid, RejectsCorruptWrapper) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 1000, 1);
  Params p;
  auto stream = hybrid::Compress<float>(data, p);
  {
    auto bad = stream;
    bad[0] = std::byte{'Q'};
    EXPECT_THROW(hybrid::Decompress<float>(bad), Error);
  }
  {
    auto bad = stream;
    bad[4] = std::byte{9};  // version
    EXPECT_THROW(hybrid::Decompress<float>(bad), Error);
  }
  {
    auto bad = stream;
    bad[5] = std::byte{7};  // stage
    EXPECT_THROW(hybrid::Decompress<float>(bad), Error);
  }
  EXPECT_THROW(hybrid::Decompress<float>(ByteSpan(stream.data(), 6)),
               Error);
}

TEST(Hybrid, IsHybridStreamDiscriminates) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 1000, 1);
  Params p;
  EXPECT_TRUE(IsHybridStream(hybrid::Compress<float>(data, p)));
  EXPECT_FALSE(IsHybridStream(szx::Compress<float>(data, p)));
  EXPECT_FALSE(IsHybridStream({}));
}

}  // namespace
}  // namespace szx::hybrid
