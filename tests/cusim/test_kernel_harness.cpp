// Fiber-based kernel harness tests: true barrier semantics, shared memory,
// divergence detection -- and the cuSZx block-encode phases expressed as a
// real cooperative kernel, cross-checked against the serial encoder.
#include "cusim/kernel_harness.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/block_stats.hpp"
#include "core/encode.hpp"
#include "../test_util.hpp"

namespace szx::cusim {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;

TEST(KernelHarness, GridAndThreadIndexingCoverAllLanes) {
  LaunchConfig cfg;
  cfg.grid = {3, 2, 1};
  cfg.block = {8, 4, 1};
  std::vector<int> hits(3 * 2 * 8 * 4, 0);
  LaunchKernel(cfg, [&](ThreadCtx& ctx) {
    const unsigned block = ctx.block_idx.y * ctx.grid_dim.x + ctx.block_idx.x;
    const unsigned global = block * ctx.block_dim.Count() + ctx.Lane();
    hits[global] += 1;
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(KernelHarness, BarrierSeparatesPhases) {
  // Phase 1: every lane writes its id.  Phase 2 (after Sync): every lane
  // verifies it can see *all* phase-1 writes -- impossible without a
  // correct barrier under any schedule.
  LaunchConfig cfg;
  cfg.grid = {1, 1, 1};
  cfg.block = {64, 1, 1};
  std::vector<int> failures(64, 0);
  LaunchKernel(cfg, [&](ThreadCtx& ctx) {
    auto stage = ctx.Shared<std::uint32_t>(64);
    stage[ctx.Lane()] = ctx.Lane() + 1;
    ctx.Sync();
    for (unsigned i = 0; i < 64; ++i) {
      if (stage[i] != i + 1) failures[ctx.Lane()] += 1;
    }
  });
  for (const int f : failures) EXPECT_EQ(f, 0);
}

TEST(KernelHarness, TreeReductionMatchesSerialSum) {
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 256, 3);
  double result = 0.0;
  LaunchConfig cfg;
  cfg.block = {256, 1, 1};
  LaunchKernel(cfg, [&](ThreadCtx& ctx) {
    auto buf = ctx.Shared<double>(256);
    buf[ctx.Lane()] = static_cast<double>(data[ctx.Lane()]);
    ctx.Sync();
    for (unsigned stride = 128; stride > 0; stride >>= 1) {
      if (ctx.Lane() < stride) {
        buf[ctx.Lane()] += buf[ctx.Lane() + stride];
      }
      ctx.Sync();
    }
    if (ctx.Lane() == 0) result = buf[0];
  });
  double expect = 0.0;
  for (const float v : data) expect += static_cast<double>(v);
  EXPECT_NEAR(result, expect, std::fabs(expect) * 1e-12 + 1e-9);
}

TEST(KernelHarness, RecursiveDoublingScanMatchesSerial) {
  std::vector<std::uint32_t> input(128);
  szx::testing::Rng rng(5);
  for (auto& v : input) v = rng.Next() % 10;
  std::vector<std::uint32_t> result(128);
  LaunchConfig cfg;
  cfg.block = {128, 1, 1};
  LaunchKernel(cfg, [&](ThreadCtx& ctx) {
    auto buf = ctx.Shared<std::uint32_t>(128);
    auto tmp = ctx.Shared<std::uint32_t>(128);
    const unsigned i = ctx.Lane();
    buf[i] = input[i];
    ctx.Sync();
    for (unsigned stride = 1; stride < 128; stride <<= 1) {
      tmp[i] = buf[i];
      ctx.Sync();
      if (i >= stride) buf[i] = tmp[i] + tmp[i - stride];
      ctx.Sync();
    }
    result[i] = buf[i];
  });
  std::vector<std::uint32_t> expect = input;
  std::partial_sum(expect.begin(), expect.end(), expect.begin());
  EXPECT_EQ(result, expect);
}

TEST(KernelHarness, BarrierDivergenceDetected) {
  LaunchConfig cfg;
  cfg.block = {8, 1, 1};
  EXPECT_THROW(LaunchKernel(cfg,
                            [&](ThreadCtx& ctx) {
                              if (ctx.Lane() == 0) return;  // early exit
                              ctx.Sync();
                            }),
               KernelError);
}

TEST(KernelHarness, SharedOverflowDetected) {
  LaunchConfig cfg;
  cfg.block = {4, 1, 1};
  cfg.shared_bytes = 64;
  EXPECT_THROW(LaunchKernel(cfg,
                            [&](ThreadCtx& ctx) {
                              auto big = ctx.Shared<double>(1024);
                              big[0] = 1.0;
                            }),
               KernelError);
}

TEST(KernelHarness, DivergentAllocationSequencesDetected) {
  LaunchConfig cfg;
  cfg.block = {4, 1, 1};
  EXPECT_THROW(LaunchKernel(cfg,
                            [&](ThreadCtx& ctx) {
                              if (ctx.Lane() == 0) {
                                ctx.Shared<std::uint32_t>(8);
                              } else {
                                ctx.Shared<std::uint64_t>(8);
                              }
                              ctx.Sync();
                            }),
               KernelError);
}

TEST(KernelHarness, KernelExceptionsPropagate) {
  LaunchConfig cfg;
  cfg.block = {4, 1, 1};
  EXPECT_THROW(LaunchKernel(cfg,
                            [&](ThreadCtx& ctx) {
                              if (ctx.Lane() == 2) {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
}

TEST(KernelHarness, BadConfigsRejected) {
  LaunchConfig cfg;
  cfg.block = {0, 1, 1};
  EXPECT_THROW(LaunchKernel(cfg, [](ThreadCtx&) {}), KernelError);
  cfg.block = {kMaxBlockThreads + 1, 1, 1};
  EXPECT_THROW(LaunchKernel(cfg, [](ThreadCtx&) {}), KernelError);
  cfg.block = {4, 1, 1};
  cfg.grid = {0, 1, 1};
  EXPECT_THROW(LaunchKernel(cfg, [](ThreadCtx&) {}), KernelError);
}

// ---------------------------------------------------------------------------
// The cuSZx non-constant block encode (paper Fig. 9 steps 1-4 + Solution 1
// prefix scan) as a genuine cooperative kernel, one lane per data point.
// ---------------------------------------------------------------------------

TEST(KernelHarness, CuszxBlockEncodeKernelMatchesSerialEncoder) {
  constexpr unsigned kBlock = 128;
  const auto data = MakePattern<float>(Pattern::kNoisySine, kBlock, 17);
  const auto st = ComputeBlockStatsScalar<float>(std::span<const float>(data));
  ASSERT_TRUE(st.all_finite);
  const ReqPlan plan =
      ComputeReqPlan<float>(ExponentOf(st.radius), ExponentOf(1e-4));
  const float mu = st.mu;

  // Serial reference.
  ByteBuffer expected;
  EncodeBlockC<float>(data, mu, plan, expected);

  // Cooperative kernel.
  const std::size_t lead_bytes = LeadArrayBytes(kBlock);
  ByteBuffer payload(lead_bytes + kBlock * plan.num_bytes, std::byte{0});
  std::uint32_t total_mid = 0;

  LaunchConfig cfg;
  cfg.block = {kBlock, 1, 1};
  LaunchKernel(cfg, [&](ThreadCtx& ctx) {
    const unsigned i = ctx.Lane();
    auto trunc = ctx.Shared<std::uint32_t>(kBlock);
    auto counts = ctx.Shared<std::uint32_t>(kBlock);
    auto tmp = ctx.Shared<std::uint32_t>(kBlock);

    const int nb = plan.num_bytes;
    const std::uint32_t keep = KeepMask<float>(nb);
    // Step 1-2: truncate own and predecessor's value (depth-1 dependency).
    auto trunc_of = [&](unsigned j) {
      return static_cast<std::uint32_t>(
          (std::bit_cast<std::uint32_t>(
               static_cast<float>(data[j] - mu)) >>
           plan.shift) &
          keep);
    };
    const std::uint32_t t = trunc_of(i);
    const std::uint32_t prev = i == 0 ? 0u : trunc_of(i - 1);
    const int lead = LeadingIdenticalBytes<float>(t, prev);
    const int copy = lead < nb ? lead : nb;
    trunc[i] = t;
    counts[i] = static_cast<std::uint32_t>(nb - copy);
    // Lead code (2 bits per lane; byte-atomic writes via lane 0 of each
    // 4-lane group to avoid racing within a byte).
    ctx.Sync();
    if (i % 4 == 0) {
      std::uint8_t packed = 0;
      for (unsigned j = i; j < std::min(i + 4, kBlock); ++j) {
        const std::uint32_t x = trunc[j] ^ (j == 0 ? 0u : trunc[j - 1]);
        int lj = x == 0 ? 3 : std::min(3, std::countl_zero(x) >> 3);
        packed |= static_cast<std::uint8_t>(lj << (6 - 2 * (j - i)));
      }
      payload[i / 4] = std::byte{packed};
    }
    // Step 4 prep (Solution 1): exclusive prefix scan of mid counts.
    ctx.Sync();
    std::uint32_t own = counts[i];
    for (unsigned stride = 1; stride < kBlock; stride <<= 1) {
      tmp[i] = counts[i];
      ctx.Sync();
      if (i >= stride) counts[i] = tmp[i] + tmp[i - stride];
      ctx.Sync();
    }
    const std::uint32_t offset = counts[i] - own;  // exclusive
    if (i == kBlock - 1) total_mid = counts[i];
    // Step 4: scatter mid bytes.
    const int copy2 = nb - static_cast<int>(own);
    for (int j = copy2; j < nb; ++j) {
      payload[lead_bytes + offset + static_cast<std::uint32_t>(j - copy2)] =
          std::byte{TopByte<float>(trunc[i], j)};
    }
  });

  payload.resize(lead_bytes + total_mid);
  ASSERT_EQ(payload.size(), expected.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), expected.begin()));
}

// ---------------------------------------------------------------------------
// The cuSZx decode's leading-byte retrieval (paper Fig. 11) as a cooperative
// kernel: per byte position, index propagation by recursive doubling, then
// hazard-free gather -- cross-checked against the serial block decoder.
// ---------------------------------------------------------------------------

TEST(KernelHarness, CuszxIndexPropagationDecodeKernelMatchesSerial) {
  constexpr unsigned kBlock = 64;
  const auto data = MakePattern<float>(Pattern::kSmoothSine, kBlock, 23);
  const auto st = ComputeBlockStatsScalar<float>(std::span<const float>(data));
  const ReqPlan plan =
      ComputeReqPlan<float>(ExponentOf(st.radius), ExponentOf(1e-3));
  const float mu = st.mu;
  ByteBuffer payload;
  EncodeBlockC<float>(data, mu, plan, payload);

  // Serial reference decode.
  std::vector<float> expected(kBlock);
  DecodeBlockC<float>(payload, mu, plan, expected);

  // Cooperative decode kernel.
  const std::size_t lead_bytes = LeadArrayBytes(kBlock);
  std::vector<float> out(kBlock);
  LaunchConfig cfg;
  cfg.block = {kBlock, 1, 1};
  LaunchKernel(cfg, [&](ThreadCtx& ctx) {
    const unsigned i = ctx.Lane();
    const int nb = plan.num_bytes;
    auto copies = ctx.Shared<std::uint32_t>(kBlock);
    auto offsets = ctx.Shared<std::uint32_t>(kBlock);
    auto tmp = ctx.Shared<std::uint32_t>(kBlock);
    auto chain = ctx.Shared<std::uint32_t>(kBlock);
    auto words = ctx.Shared<std::uint32_t>(kBlock);

    // Phase 1: lead codes -> per-lane mid counts.
    const unsigned code =
        (std::to_integer<unsigned>(payload[i >> 2]) >>
         (6 - 2 * static_cast<int>(i & 3))) &
        3u;
    const int copy = static_cast<int>(code) < nb ? static_cast<int>(code)
                                                 : nb;
    copies[i] = static_cast<std::uint32_t>(copy);
    offsets[i] = static_cast<std::uint32_t>(nb - copy);
    words[i] = 0;
    ctx.Sync();
    // Phase 2: exclusive scan for payload offsets (Solution 1).
    std::uint32_t own = offsets[i];
    for (unsigned stride = 1; stride < kBlock; stride <<= 1) {
      tmp[i] = offsets[i];
      ctx.Sync();
      if (i >= stride) offsets[i] = tmp[i] + tmp[i - stride];
      ctx.Sync();
    }
    const std::uint32_t my_off = offsets[i] - own;
    // Phase 3: per byte position, Fig. 11 index propagation + gather.
    for (int j = 0; j < nb; ++j) {
      chain[i] = j >= static_cast<int>(copies[i]) ? i + 1 : 0u;
      ctx.Sync();
      for (unsigned stride = 1; stride < kBlock; stride <<= 1) {
        tmp[i] = chain[i];
        ctx.Sync();
        if (i >= stride) chain[i] = std::max(tmp[i], tmp[i - stride]);
        ctx.Sync();
      }
      if (chain[i] != 0) {
        const unsigned src = chain[i] - 1;
        const std::uint32_t src_off = offsets[src] -
                                      (static_cast<std::uint32_t>(nb) -
                                       copies[src]);
        const std::uint32_t pos =
            src_off + (static_cast<std::uint32_t>(j) - copies[src]);
        words[i] |= PlaceTopByte<float>(
            std::to_integer<std::uint8_t>(payload[lead_bytes + pos]), j);
      }
      ctx.Sync();
    }
    // Phase 4: left shift + de-normalize.
    const float v =
        std::bit_cast<float>(static_cast<std::uint32_t>(words[i]
                                                        << plan.shift));
    out[i] = v + mu;
    (void)my_off;
  });

  for (unsigned i = 0; i < kBlock; ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(out[i]),
              std::bit_cast<std::uint32_t>(expected[i]))
        << i;
  }
}

}  // namespace
}  // namespace szx::cusim
