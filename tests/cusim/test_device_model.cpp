// Device roofline model unit tests: monotonicity and regime behaviour.
#include "cusim/device_model.hpp"

#include <gtest/gtest.h>

namespace szx::cusim {
namespace {

KernelProfile LightProfile() { return {10.0, 8.0, 0.99}; }

TEST(DeviceModel, MoreBandwidthNeverSlower) {
  GpuSpec a = A100();
  GpuSpec b = a;
  b.mem_bw_gbps *= 2.0;
  EXPECT_GE(ModelThroughputGBps(b, LightProfile(), 1.0),
            ModelThroughputGBps(a, LightProfile(), 1.0));
}

TEST(DeviceModel, MoreOpsNeverFaster) {
  KernelProfile heavy = LightProfile();
  heavy.ops_per_elem *= 100.0;
  EXPECT_LE(ModelThroughputGBps(A100(), heavy, 1.0),
            ModelThroughputGBps(A100(), LightProfile(), 1.0));
}

TEST(DeviceModel, MoreBytesNeverFaster) {
  KernelProfile heavy = LightProfile();
  heavy.bytes_per_elem *= 10.0;
  EXPECT_LT(ModelThroughputGBps(A100(), heavy, 1.0),
            ModelThroughputGBps(A100(), LightProfile(), 1.0));
}

TEST(DeviceModel, SerializationIsExpensive) {
  KernelProfile serial = LightProfile();
  serial.parallel_fraction = 0.8;  // 20% serial
  EXPECT_LT(ModelThroughputGBps(A100(), serial, 1.0),
            ModelThroughputGBps(A100(), LightProfile(), 1.0) / 2.0);
}

TEST(DeviceModel, LaunchOverheadDominatesTinyInputs) {
  const double tiny = ModelThroughputGBps(A100(), LightProfile(), 1e-6);
  const double big = ModelThroughputGBps(A100(), LightProfile(), 1.0);
  EXPECT_LT(tiny, big / 10.0);
}

TEST(DeviceModel, A100BeatsV100OnMemoryBoundKernels) {
  // Memory-bound profile: the 1555 vs 900 GB/s HBM gap should show.
  KernelProfile mem = {2.0, 16.0, 0.999};
  const double a = ModelThroughputGBps(A100(), mem, 1.0);
  const double v = ModelThroughputGBps(V100(), mem, 1.0);
  EXPECT_GT(a, v);
  EXPECT_NEAR(a / v, 1555.0 / 900.0, 0.3);
}

TEST(DeviceModel, BaselineProfilesOrderAsInPaper) {
  // cuSZx's executed profile is far lighter than the literature profiles
  // for cuSZ and cuZFP at any input size.
  KernelCounters c;
  c.elements = 1 << 20;
  c.lane_ops = 12ull << 20;
  c.bytes_moved = 6ull << 20;
  const double gb = 4.0 * static_cast<double>(c.elements) / 1e9;
  const double szx =
      ModelThroughputGBps(A100(), CuszxCompressProfile(c), gb);
  EXPECT_GT(szx, ModelThroughputGBps(A100(), CuszProfile(false), gb));
  EXPECT_GT(szx, ModelThroughputGBps(A100(), CuzfpProfile(false), gb));
}

}  // namespace
}  // namespace szx::cusim
