// cuSZx CPU-port tests: the GPU kernel schedule must match the serial codec
// bit for bit (streams and reconstructions), and the warp collectives must
// match their serial definitions.
#include "cusim/cusim_codec.hpp"

#include <gtest/gtest.h>

#include "core/omp_codec.hpp"
#include "cusim/device_model.hpp"
#include "cusim/warp_ops.hpp"
#include "../test_util.hpp"

namespace szx::cusim {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testing::Rng;

TEST(WarpOps, InclusiveScanMatchesSerial) {
  Rng rng(1);
  for (std::size_t n : {0u, 1u, 2u, 3u, 31u, 32u, 33u, 128u, 1000u}) {
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) x = static_cast<std::uint32_t>(rng.Next() % 100);
    std::vector<std::uint32_t> expect = v;
    for (std::size_t i = 1; i < n; ++i) expect[i] += expect[i - 1];
    InclusiveScan(std::span(v));
    EXPECT_EQ(v, expect) << n;
  }
}

TEST(WarpOps, ExclusiveScanReturnsTotal) {
  std::vector<std::uint32_t> v = {3, 0, 5, 2};
  const std::uint32_t total = ExclusiveScan(std::span(v));
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(v, (std::vector<std::uint32_t>{0, 3, 3, 8}));
}

TEST(WarpOps, IndexPropagateResolvesChains) {
  // Fig. 11 semantics: 0 = leading byte (inherit), i+1 = mid byte (own).
  std::vector<std::uint32_t> idx = {1, 0, 0, 4, 0, 6, 0, 0};
  IndexPropagate(std::span(idx));
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 1, 1, 4, 4, 6, 6, 6}));
}

TEST(WarpOps, IndexPropagateAllInherit) {
  std::vector<std::uint32_t> idx(16, 0);
  IndexPropagate(std::span(idx));
  for (const auto v : idx) EXPECT_EQ(v, 0u);  // rooted at the zero word
}

TEST(WarpOps, IndexPropagateMatchesPrefixMax) {
  Rng rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.Next() % 200;
    std::vector<std::uint32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      idx[i] = rng.Next() % 3 == 0 ? static_cast<std::uint32_t>(i + 1) : 0;
    }
    std::vector<std::uint32_t> expect = idx;
    for (std::size_t i = 1; i < n; ++i) {
      expect[i] = std::max(expect[i], expect[i - 1]);
    }
    IndexPropagate(std::span(idx));
    EXPECT_EQ(idx, expect) << trial;
  }
}

class CusimSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(CusimSweep, StreamBitIdenticalToSerial) {
  const auto [pat, block, eb] = GetParam();
  const auto data =
      MakePattern<float>(static_cast<Pattern>(pat), 50000, 123);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = eb;
  p.block_size = static_cast<std::uint32_t>(block);
  CompressionStats serial_stats, cuda_stats;
  const auto serial = Compress<float>(data, p, &serial_stats);
  const auto cuda = CompressCuda<float>(data, p, &cuda_stats);
  ASSERT_EQ(serial.size(), cuda.size());
  EXPECT_TRUE(std::equal(serial.begin(), serial.end(), cuda.begin()));
  EXPECT_EQ(serial_stats.num_constant_blocks, cuda_stats.num_constant_blocks);
}

TEST_P(CusimSweep, DecompressBitIdenticalToSerial) {
  const auto [pat, block, eb] = GetParam();
  const auto data =
      MakePattern<float>(static_cast<Pattern>(pat), 50000, 321);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = eb;
  p.block_size = static_cast<std::uint32_t>(block);
  const auto stream = Compress<float>(data, p);
  const auto serial = Decompress<float>(stream);
  const auto cuda = DecompressCuda<float>(stream);
  ASSERT_EQ(serial.size(), cuda.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(serial[i]),
              std::bit_cast<std::uint32_t>(cuda[i]))
        << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CusimSweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(32, 128, 333),
                       ::testing::Values(1e-2, 1e-4)));

TEST(Cusim, DoublePrecisionRoundTrip) {
  const auto data = MakePattern<double>(Pattern::kNoisySine, 30000, 9);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-4;
  const auto serial = Compress<double>(data, p);
  const auto cuda = CompressCuda<double>(data, p);
  EXPECT_EQ(serial, cuda);
  EXPECT_EQ(Decompress<double>(serial), DecompressCuda<double>(cuda));
}

TEST(Cusim, RejectsNonSolutionC) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 1000, 1);
  Params p;
  p.solution = CommitSolution::kA;
  EXPECT_THROW(CompressCuda<float>(data, p), Error);
  p.solution = CommitSolution::kC;
  auto stream = Compress<float>(data, p);
  Params pa;
  pa.solution = CommitSolution::kA;
  const auto stream_a = Compress<float>(data, pa);
  EXPECT_THROW(DecompressCuda<float>(stream_a), Error);
}

TEST(Cusim, CountersPopulated) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 100000, 2);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-4;
  KernelCounters cc, dc;
  const auto stream = CompressCuda<float>(data, p, nullptr, &cc);
  DecompressCuda<float>(stream, &dc);
  EXPECT_EQ(cc.elements, data.size());
  EXPECT_GT(cc.lane_ops, 0u);
  EXPECT_GT(cc.scan_rounds, 0u);
  EXPECT_GT(dc.propagate_rounds, 0u);
  EXPECT_GT(dc.bytes_moved, 0u);
}

TEST(DeviceModel, ShapesMatchPaperOrdering) {
  // cuSZx must model faster than cuSZ and cuZFP on both devices, and the
  // A100 faster than the V100 for the same kernel (Figs. 14-15).
  const auto data = MakePattern<float>(Pattern::kNoisySine, 500000, 5);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  KernelCounters cc, dc;
  const auto stream = CompressCuda<float>(data, p, nullptr, &cc);
  DecompressCuda<float>(stream, &dc);
  const double gb = static_cast<double>(data.size()) * 4 / 1e9;
  for (const GpuSpec& gpu : {A100(), V100()}) {
    const double szx_c = ModelThroughputGBps(gpu, CuszxCompressProfile(cc), gb);
    const double szx_d =
        ModelThroughputGBps(gpu, CuszxDecompressProfile(dc), gb);
    const double sz_c = ModelThroughputGBps(gpu, CuszProfile(false), gb);
    const double zfp_c = ModelThroughputGBps(gpu, CuzfpProfile(false), gb);
    EXPECT_GT(szx_c, 2.0 * sz_c) << gpu.name;
    EXPECT_GT(szx_c, 2.0 * zfp_c) << gpu.name;
    EXPECT_GT(szx_d, 2.0 * ModelThroughputGBps(gpu, CuszProfile(true), gb))
        << gpu.name;
  }
  const double a100 =
      ModelThroughputGBps(A100(), CuszxCompressProfile(cc), gb);
  const double v100 =
      ModelThroughputGBps(V100(), CuszxCompressProfile(cc), gb);
  EXPECT_GT(a100, v100);
}

}  // namespace
}  // namespace szx::cusim
