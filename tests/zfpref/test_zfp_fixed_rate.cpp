// Fixed-rate mode tests (cuZFP's only mode per the paper): exact stream
// sizes, monotone quality in the rate, and budgeted plane-codec symmetry.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "zfpref/zfp_block.hpp"
#include "zfpref/zfpref.hpp"
#include "../test_util.hpp"

namespace szx::zfpref {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testing::Rng;

TEST(PlaneCodecBudget, FullBudgetMatchesUnbudgeted) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<UInt> coeffs(16);
    for (auto& c : coeffs) {
      c = static_cast<UInt>(rng.Next()) & static_cast<UInt>(rng.Next()) &
          0x7fffffffu;
    }
    // Unbudgeted reference.
    ByteBuffer ref;
    BitWriter bw_ref(ref);
    EncodePlanes(coeffs, 0, bw_ref);
    const std::uint64_t ref_bits = bw_ref.bits_written();
    bw_ref.Flush();
    // Budget comfortably above the reference size -> identical decode.
    ByteBuffer buf;
    BitWriter bw(buf);
    EncodePlanesBudget(coeffs, 0, ref_bits + 64, bw);
    bw.Flush();
    std::vector<UInt> out(16);
    BitReader br(buf);
    DecodePlanesBudget(std::span<UInt>(out), 0, ref_bits + 64, br);
    EXPECT_EQ(out, coeffs) << trial;
  }
}

TEST(PlaneCodecBudget, ConsumesExactBudget) {
  Rng rng(2);
  for (const std::uint64_t budget : {5u, 64u, 200u, 777u}) {
    std::vector<UInt> coeffs(64);
    for (auto& c : coeffs) c = static_cast<UInt>(rng.Next()) & 0x7fffffffu;
    ByteBuffer buf;
    BitWriter bw(buf);
    EncodePlanesBudget(coeffs, 0, budget, bw);
    EXPECT_EQ(bw.bits_written(), budget);
    bw.Flush();
    std::vector<UInt> out(64);
    BitReader br(buf);
    DecodePlanesBudget(std::span<UInt>(out), 0, budget, br);
    EXPECT_EQ(br.position_bits(), budget);
  }
}

TEST(PlaneCodecBudget, TruncationIsAProjection) {
  // Encoding an already-truncated reconstruction under the same budget
  // must reproduce it exactly: budget truncation is idempotent.
  Rng rng(3);
  for (const std::uint64_t budget : {50u, 150u, 400u}) {
    std::vector<UInt> coeffs(16);
    for (auto& c : coeffs) c = static_cast<UInt>(rng.Next()) & 0x7fffffffu;
    ByteBuffer buf;
    BitWriter bw(buf);
    EncodePlanesBudget(coeffs, 0, budget, bw);
    bw.Flush();
    std::vector<UInt> once(16);
    BitReader br(buf);
    DecodePlanesBudget(std::span<UInt>(once), 0, budget, br);

    ByteBuffer buf2;
    BitWriter bw2(buf2);
    EncodePlanesBudget(once, 0, budget, bw2);
    bw2.Flush();
    std::vector<UInt> twice(16);
    BitReader br2(buf2);
    DecodePlanesBudget(std::span<UInt>(twice), 0, budget, br2);
    EXPECT_EQ(once, twice) << "budget=" << budget;
  }
}

TEST(ZfpFixedRate, StreamSizeIsExact) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 10000, 3);
  const std::size_t dims[] = {data.size()};
  for (const double rate : {4.0, 8.0, 16.0}) {
    ZfpStats stats;
    const auto stream = ZfpCompressFixedRate(data, dims, rate, &stats);
    const std::uint64_t nblocks = (data.size() + 3) / 4;
    const auto block_bits = static_cast<std::uint64_t>(rate * 4);
    const std::size_t expected =
        48 /*header*/ + (nblocks * block_bits + 7) / 8;
    EXPECT_EQ(stream.size(), expected) << rate;
    EXPECT_EQ(stats.num_blocks, nblocks);
  }
}

TEST(ZfpFixedRate, QualityImprovesWithRate) {
  const auto f = MakePattern<float>(Pattern::kSmoothSine, 65536, 7);
  const std::size_t dims[] = {256, 256};
  double prev_psnr = 0.0;
  for (const double rate : {2.0, 4.0, 8.0, 16.0}) {
    const auto stream = ZfpCompressFixedRate(f, dims, rate);
    const auto out = ZfpDecompressFixedRate(stream);
    const auto d = metrics::ComputeDistortion<float>(f, out);
    EXPECT_GT(d.psnr_db, prev_psnr) << rate;
    prev_psnr = d.psnr_db;
  }
  EXPECT_GT(prev_psnr, 60.0);  // 16 bits/value is high quality
}

TEST(ZfpFixedRate, ThreeDimensionalRoundTrip) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 17 * 23 * 29, 5);
  const std::size_t dims[] = {17, 23, 29};
  const auto stream = ZfpCompressFixedRate(data, dims, 12.0);
  const auto out = ZfpDecompressFixedRate(stream);
  ASSERT_EQ(out.size(), data.size());
  const auto d = metrics::ComputeDistortion<float>(data, out);
  EXPECT_GT(d.psnr_db, 40.0);
}

TEST(ZfpFixedRate, ZeroBlocksAreCheapAndExact) {
  std::vector<float> data(4096, 0.0f);
  data[2000] = 5.0f;
  const std::size_t dims[] = {data.size()};
  ZfpStats stats;
  const auto stream = ZfpCompressFixedRate(data, dims, 8.0, &stats);
  EXPECT_GT(stats.num_empty_blocks, 1000u);
  const auto out = ZfpDecompressFixedRate(stream);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_NEAR(out[2000], 5.0f, 0.5f);  // 8 bits/value on a 4-wide block
}

TEST(ZfpFixedRate, InvalidRatesRejected) {
  const std::vector<float> data(64, 1.0f);
  const std::size_t dims[] = {64};
  EXPECT_THROW(ZfpCompressFixedRate(data, dims, 0.5), Error);
  EXPECT_THROW(ZfpCompressFixedRate(data, dims, 100.0), Error);
  EXPECT_THROW(ZfpCompressFixedRate(data, dims, 2.0), Error);  // < header
}

TEST(ZfpFixedRate, TruncatedStreamRejected) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 5000, 1);
  const std::size_t dims[] = {data.size()};
  const auto stream = ZfpCompressFixedRate(data, dims, 8.0);
  EXPECT_THROW(
      ZfpDecompressFixedRate(ByteSpan(stream.data(), stream.size() / 2)),
      Error);
}

TEST(ZfpFixedRate, LowRateLowQuality) {
  // The paper's Sec. 2 point: to be safe, fixed rate must be provisioned
  // high, which caps the compression ratio.  At a low rate the error is
  // visibly large.
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 65536, 9);
  const std::size_t dims[] = {256, 256};
  const auto out =
      ZfpDecompressFixedRate(ZfpCompressFixedRate(data, dims, 2.0));
  const auto d = metrics::ComputeDistortion<float>(data, out);
  EXPECT_GT(d.max_abs_error, 1.0);  // no error bound at low rates
}

}  // namespace
}  // namespace szx::zfpref
