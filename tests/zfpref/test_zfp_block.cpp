// ZFP block primitive tests: exact lifting inverse, permutation validity,
// negabinary, and bit-plane codec round trips.
#include "zfpref/zfp_block.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx::zfpref {
namespace {

using szx::testing::Rng;

TEST(Lift, InverseIsNearExact) {
  // ZFP's lossy-mode lifting is deliberately *not* bit-exact: each ">>= 1"
  // discards one bit, so a round trip may be off by a few integer units.
  // (zfp's reversible mode uses a different transform.)  The bound here is
  // part of the error budget the guard bits in CutoffPlane cover.
  Rng rng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    Int v[4];
    for (Int& x : v) {
      x = static_cast<Int>(rng.Next() % (1u << 30)) - (1 << 29);
    }
    Int w[4] = {v[0], v[1], v[2], v[3]};
    FwdLift(w, 1);
    InvLift(w, 1);
    for (int i = 0; i < 4; ++i) {
      EXPECT_LE(std::abs(static_cast<std::int64_t>(w[i]) - v[i]), 2)
          << trial;
    }
  }
}

TEST(Lift, StridedAccess) {
  Int block[16];
  Rng rng(2);
  for (Int& x : block) {
    x = static_cast<Int>(rng.Next() % (1u << 28)) - (1 << 27);
  }
  Int copy[16];
  std::copy(block, block + 16, copy);
  FwdLift(block, 4);  // column 0 of a 4x4 block
  InvLift(block, 4);
  for (int i = 0; i < 16; ++i) {
    EXPECT_LE(std::abs(static_cast<std::int64_t>(block[i]) - copy[i]), 2)
        << i;
  }
}

class XformDims : public ::testing::TestWithParam<int> {};

TEST_P(XformDims, InverseIsNearExact) {
  // Round-trip error grows with dimensionality (one lost bit per lifting
  // pass, compounded across dimensions) but stays bounded by a couple of
  // dozen integer units -- the guard bits in the accuracy mode absorb it.
  const int dims = GetParam();
  const std::size_t n = BlockSize(dims);
  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Int> v(n);
    for (Int& x : v) {
      x = static_cast<Int>(rng.Next() % (1u << 29)) - (1 << 28);
    }
    std::vector<Int> w = v;
    FwdXform(w.data(), dims);
    InvXform(w.data(), dims);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LE(std::abs(static_cast<std::int64_t>(w[i]) - v[i]), 24)
          << "dims=" << dims << " i=" << i;
    }
  }
}

TEST_P(XformDims, DecorrelatesSmoothData) {
  // On a linear ramp the transform must concentrate energy in the first
  // (lowest-sequency) coefficients.
  const int dims = GetParam();
  const std::size_t n = BlockSize(dims);
  std::vector<Int> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<Int>(1000 * (i & 3) + 100 * ((i >> 2) & 3) +
                            10 * ((i >> 4) & 3) + 100000);
  }
  FwdXform(v.data(), dims);
  const auto perm = SequencyPerm(dims);
  // DC coefficient dominates.
  std::int64_t dc = std::abs(static_cast<std::int64_t>(v[perm[0]]));
  std::int64_t rest = 0;
  for (std::size_t i = 1; i < n; ++i) {
    rest = std::max<std::int64_t>(
        rest, std::abs(static_cast<std::int64_t>(v[perm[i]])));
  }
  EXPECT_GT(dc, rest);
}

INSTANTIATE_TEST_SUITE_P(Dims, XformDims, ::testing::Values(1, 2, 3));

TEST(SequencyPerm, IsAPermutation) {
  for (int dims : {1, 2, 3}) {
    const auto perm = SequencyPerm(dims);
    std::vector<bool> seen(BlockSize(dims), false);
    for (const std::uint16_t p : perm) {
      ASSERT_LT(p, seen.size());
      EXPECT_FALSE(seen[p]);
      seen[p] = true;
    }
    EXPECT_EQ(perm.size(), BlockSize(dims));
    EXPECT_EQ(perm[0], 0);  // DC first
  }
}

TEST(Negabinary, RoundTripsAllMagnitudes) {
  Rng rng(4);
  EXPECT_EQ(Uint2Int(Int2Uint(0)), 0);
  EXPECT_EQ(Uint2Int(Int2Uint(-1)), -1);
  EXPECT_EQ(Uint2Int(Int2Uint(1)), 1);
  for (int trial = 0; trial < 10000; ++trial) {
    const Int v = static_cast<Int>(rng.Next());
    EXPECT_EQ(Uint2Int(Int2Uint(v)), v);
  }
}

TEST(Negabinary, SmallMagnitudesHaveSmallCodes) {
  // The point of negabinary: values near zero use only low-order bits.
  for (Int v = -100; v <= 100; ++v) {
    EXPECT_LT(Int2Uint(v), 1u << 9) << v;
  }
}

class PlaneCodec : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PlaneCodec, RoundTripsExactlyAboveCutoff) {
  const auto [size, kmin] = GetParam();
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<UInt> coeffs(size);
    for (auto& c : coeffs) {
      // Mix sparse and dense planes like real transform output.
      c = static_cast<UInt>(rng.Next()) &
          static_cast<UInt>(rng.Next()) & 0x7fffffffu;
    }
    ByteBuffer buf;
    BitWriter bw(buf);
    EncodePlanes(coeffs, kmin, bw);
    bw.Flush();
    std::vector<UInt> out(size);
    BitReader br(buf);
    DecodePlanes(std::span<UInt>(out), kmin, br);
    for (int i = 0; i < size; ++i) {
      const UInt mask = kmin >= 32 ? 0u : ~((UInt{1} << kmin) - 1);
      EXPECT_EQ(out[i], coeffs[i] & mask) << "i=" << i << " kmin=" << kmin;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlaneCodec,
    ::testing::Combine(::testing::Values(4, 16, 64),
                       ::testing::Values(0, 7, 20, 31)));

TEST(PlaneCodec, SparseDataCodesCompactly) {
  // One significant coefficient out of 64: the group testing must spend
  // far fewer bits than 64 x 32 verbatim.
  std::vector<UInt> coeffs(64, 0);
  coeffs[40] = 1u << 28;
  ByteBuffer buf;
  BitWriter bw(buf);
  EncodePlanes(coeffs, 0, bw);
  bw.Flush();
  // After the value becomes significant its bit is sent verbatim on every
  // lower plane, so the cost is ~n_planes * 42 bits -- still far below the
  // 2048-bit verbatim encoding of the block.
  EXPECT_LT(buf.size() * 8, 1400u);
}

TEST(PlaneCodec, AllZeroIsTiny) {
  std::vector<UInt> coeffs(64, 0);
  ByteBuffer buf;
  BitWriter bw(buf);
  EncodePlanes(coeffs, 0, bw);
  bw.Flush();
  EXPECT_LE(buf.size(), 4u + 1u);  // one group bit per plane
}

}  // namespace
}  // namespace szx::zfpref
