// ZFP-style baseline end-to-end tests: error bound property across
// dimensionalities, bounds, and data patterns.
#include "zfpref/zfpref.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "data/datasets.hpp"
#include "../test_util.hpp"

namespace szx::zfpref {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testing::WithinBound;

using Case = std::tuple<int /*pattern*/, double /*eb*/>;

class ZfpSweep1D : public ::testing::TestWithParam<Case> {};

TEST_P(ZfpSweep1D, AbsoluteBoundHolds) {
  const auto [pat, eb] = GetParam();
  if (static_cast<Pattern>(pat) == Pattern::kMixedScales) {
    GTEST_SKIP() << "non-smooth extreme-magnitude data is out of scope for "
                    "the transform baseline (as for real ZFP)";
  }
  const auto data = MakePattern<float>(static_cast<Pattern>(pat), 20000, 3);
  ZfpParams p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = eb;
  const std::size_t dims[] = {data.size()};
  ZfpStats stats;
  const auto stream = ZfpCompress(data, dims, p, &stats);
  const auto out = ZfpDecompress(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, eb));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ZfpSweep1D,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 6, 7),
                       ::testing::Values(1e-1, 1e-3, 1e-5)));

TEST(Zfpref, TwoDimensionalRoundTrip) {
  const data::Field f = data::GenerateField(data::App::kCesm, "TS", 0.2);
  ZfpParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  ZfpStats stats;
  const auto stream = ZfpCompress(f.values, f.dims, p, &stats);
  const auto out = ZfpDecompress(stream);
  EXPECT_TRUE(WithinBound<float>(f.span(), out, stats.absolute_bound));
}

TEST(Zfpref, ThreeDimensionalRoundTrip) {
  const data::Field f =
      data::GenerateField(data::App::kMiranda, "density", 0.25);
  ZfpParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  ZfpStats stats;
  const auto stream = ZfpCompress(f.values, f.dims, p, &stats);
  const auto out = ZfpDecompress(stream);
  EXPECT_TRUE(WithinBound<float>(f.span(), out, stats.absolute_bound));
  EXPECT_GT(static_cast<double>(f.size_bytes()) /
                static_cast<double>(stream.size()),
            3.0);
}

TEST(Zfpref, NonMultipleOfFourDims) {
  // Partial blocks with edge replication.
  for (std::size_t nx : {5u, 6u, 7u, 9u, 13u}) {
    std::vector<float> data(nx * 7 * 3);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<float>(i) * 0.01f;
    }
    const std::size_t dims[] = {3, 7, nx};
    ZfpParams p;
    p.mode = ErrorBoundMode::kAbsolute;
    p.error_bound = 1e-3;
    const auto out = ZfpDecompress(ZfpCompress(data, dims, p));
    EXPECT_TRUE(WithinBound<float>(data, out, 1e-3)) << nx;
  }
}

TEST(Zfpref, SparseFieldsProduceEmptyBlocks) {
  const data::Field f = data::GenerateField(data::App::kHurricane, "QSNOW", 0.3);
  ZfpParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  ZfpStats stats;
  ZfpCompress(f.values, f.dims, p, &stats);
  EXPECT_GT(stats.num_empty_blocks, stats.num_blocks / 4);
}

TEST(Zfpref, LooserBoundNeverBigger) {
  const data::Field f =
      data::GenerateField(data::App::kNyx, "temperature", 0.25);
  ZfpParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  std::size_t prev = 0;
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    p.error_bound = eb;
    const auto stream = ZfpCompress(f.values, f.dims, p);
    EXPECT_GE(stream.size(), prev) << eb;
    prev = stream.size();
  }
}

TEST(Zfpref, TransformBeatsSzxOnSmoothData) {
  // The paper's Table 3 ordering: ZFP's CR sits above SZx's on smooth
  // fields thanks to the decorrelating transform.
  const data::Field f =
      data::GenerateField(data::App::kMiranda, "pressure", 0.25);
  ZfpParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  const auto stream = ZfpCompress(f.values, f.dims, p);
  EXPECT_GT(static_cast<double>(f.size_bytes()) /
                static_cast<double>(stream.size()),
            5.0);
}

TEST(Zfpref, EmptyInput) {
  ZfpParams p;
  const std::size_t dims[] = {0};
  const auto out =
      ZfpDecompress(ZfpCompress(std::span<const float>(), dims, p));
  EXPECT_TRUE(out.empty());
}

TEST(Zfpref, BadParamsRejected) {
  const std::vector<float> data(16, 1.0f);
  const std::size_t dims[] = {16};
  ZfpParams p;
  p.error_bound = -1.0;
  EXPECT_THROW(ZfpCompress(data, dims, p), Error);
  const std::size_t bad[] = {15};
  ZfpParams ok;
  EXPECT_THROW(ZfpCompress(data, bad, ok), Error);
}

TEST(Zfpref, TruncatedStreamRejected) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 10000, 3);
  const std::size_t dims[] = {data.size()};
  ZfpParams p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  const auto stream = ZfpCompress(data, dims, p);
  EXPECT_THROW(ZfpDecompress(ByteSpan(stream.data(), stream.size() / 2)),
               Error);
  EXPECT_THROW(ZfpDecompress(ByteSpan(stream.data(), 3)), Error);
}

TEST(ZfprefOmp, ChunkedCompressionRoundTrip) {
  const data::Field f =
      data::GenerateField(data::App::kScaleLetkf, "T", 0.25);
  ZfpParams p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  ZfpStats stats;
  const auto stream = ZfpCompressOmp(f.values, f.dims, p, &stats, 4);
  const auto out = ZfpDecompress(stream);
  ASSERT_EQ(out.size(), f.size());
  EXPECT_TRUE(WithinBound<float>(f.span(), out, stats.absolute_bound));
}

}  // namespace
}  // namespace szx::zfpref
