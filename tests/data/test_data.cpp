// Dataset generator tests: determinism, shape, and the block-smoothness
// characteristics the paper's Figs. 1-2 rely on.
#include "data/datasets.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "data/noise.hpp"
#include "metrics/metrics.hpp"

namespace szx::data {
namespace {

TEST(Noise, LatticeHashDeterministicAndBounded) {
  for (std::int64_t x = -50; x < 50; x += 7) {
    for (std::int64_t y = -50; y < 50; y += 11) {
      const double v = LatticeHash(x, y, 3, 42);
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
      EXPECT_EQ(v, LatticeHash(x, y, 3, 42));
      EXPECT_NE(v, LatticeHash(x, y, 3, 43));
    }
  }
}

TEST(Noise, ValueNoiseInterpolatesLattice) {
  // At integer coordinates the noise equals the lattice hash.
  for (int i = 0; i < 10; ++i) {
    EXPECT_NEAR(ValueNoise3(i, 2.0, 3.0, 9), LatticeHash(i, 2, 3, 9), 1e-12);
  }
}

TEST(Noise, ValueNoiseIsContinuous) {
  double prev = ValueNoise3(0.0, 0.5, 0.5, 1);
  for (double x = 0.001; x < 3.0; x += 0.001) {
    const double v = ValueNoise3(x, 0.5, 0.5, 1);
    EXPECT_LT(std::fabs(v - prev), 0.02) << x;
    prev = v;
  }
}

TEST(Noise, FbmRowMatchesPointwiseFbm) {
  const std::size_t n = 257;
  std::vector<float> row(n);
  FbmRow(0.3, 0.017, n, 1.7, 2.9, 77, 4, 0.5, row.data());
  for (std::size_t i = 0; i < n; i += 13) {
    const double expect = Fbm3(0.3 + 0.017 * static_cast<double>(i), 1.7,
                               2.9, 77, 4, 0.5);
    EXPECT_NEAR(row[i], expect, 1e-5) << i;
  }
}

TEST(Datasets, AllFieldsGenerateWithCorrectShape) {
  for (App app : AllApps()) {
    const auto dims = GridDims(app, 0.25);
    std::size_t expect = 1;
    for (const std::size_t d : dims) expect *= d;
    for (const auto& name : FieldNames(app)) {
      const Field f = GenerateField(app, name, 0.25);
      EXPECT_EQ(f.size(), expect) << AppName(app) << "/" << name;
      EXPECT_EQ(f.DimProduct(), f.size());
      for (const float v : f.values) {
        ASSERT_TRUE(std::isfinite(v)) << AppName(app) << "/" << name;
      }
    }
  }
}

TEST(Datasets, Deterministic) {
  const Field a = GenerateField(App::kMiranda, "density", 0.2);
  const Field b = GenerateField(App::kMiranda, "density", 0.2);
  EXPECT_EQ(a.values, b.values);
  const Field c = GenerateField(App::kMiranda, "pressure", 0.2);
  EXPECT_NE(a.values, c.values);
}

TEST(Datasets, FieldCountsMatchPresets) {
  EXPECT_EQ(FieldNames(App::kMiranda).size(), 7u);   // paper: 7
  EXPECT_EQ(FieldNames(App::kNyx).size(), 6u);       // paper: 6
  EXPECT_EQ(FieldNames(App::kQmcpack).size(), 2u);   // paper: 2
  EXPECT_EQ(FieldNames(App::kHurricane).size(), 13u); // paper: 13
  EXPECT_EQ(FieldNames(App::kScaleLetkf).size(), 12u); // paper: 12
  EXPECT_EQ(FieldNames(App::kCesm).size(), 12u);     // paper: 77, subset
}

TEST(Datasets, ExtendedRosterMatchesTable2Counts) {
  // Paper Table 2: CESM-ATM has 77 fields; other apps' rosters are
  // already complete.
  EXPECT_EQ(ExtendedFieldNames(App::kCesm).size(), 77u);
  EXPECT_EQ(ExtendedFieldNames(App::kMiranda), FieldNames(App::kMiranda));
  EXPECT_EQ(ExtendedFieldNames(App::kNyx), FieldNames(App::kNyx));
  // Every extended name generates a valid, finite field, and distinct
  // names yield distinct data.
  const Field a = GenerateField(App::kCesm, "FLD013", 0.15);
  const Field b = GenerateField(App::kCesm, "FLD014", 0.15);
  EXPECT_EQ(a.size(), a.DimProduct());
  EXPECT_NE(a.values, b.values);
  for (const float v : a.values) ASSERT_TRUE(std::isfinite(v));
  // Spot-check a handful across the archetype space.
  for (const char* name : {"FLD020", "FLD045", "FLD076"}) {
    const Field f = GenerateField(App::kCesm, name, 0.1);
    EXPECT_GT(f.size(), 0u) << name;
  }
}

TEST(Datasets, DimensionalityMatchesTable2) {
  EXPECT_EQ(GridDims(App::kCesm, 1.0).size(), 2u);
  EXPECT_EQ(GridDims(App::kHurricane, 1.0).size(), 3u);
  EXPECT_EQ(GridDims(App::kNyx, 1.0).size(), 3u);
}

TEST(Datasets, ScaleChangesGridSize) {
  const auto small = GridDims(App::kNyx, 0.5);
  const auto big = GridDims(App::kNyx, 1.0);
  for (std::size_t k = 0; k < small.size(); ++k) {
    EXPECT_LT(small[k], big[k]);
  }
  EXPECT_THROW(GridDims(App::kNyx, 0.0), std::invalid_argument);
  EXPECT_THROW(GridDims(App::kNyx, 100.0), std::invalid_argument);
}

TEST(Datasets, UnknownFieldThrows) {
  EXPECT_THROW(GenerateField(App::kNyx, "bogus", 0.25),
               std::invalid_argument);
}

TEST(Datasets, SparseFieldsHaveZeroPlateaus) {
  // Hydrometeor-style fields must be mostly exact zero (the property that
  // gives the paper's huge CRs on QSNOW-like fields).
  const Field f = GenerateField(App::kHurricane, "QSNOW", 0.4);
  std::size_t zeros = 0;
  for (const float v : f.values) {
    EXPECT_GE(v, 0.0f);
    zeros += v == 0.0f ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(zeros) / static_cast<double>(f.size()), 0.5);
}

TEST(Datasets, SmoothFieldsHaveSmallBlockRanges) {
  // Fig. 2 regime check: for the smooth Miranda-style fields a large
  // fraction of 8-sample blocks must have small relative value range.
  const Field f = GenerateField(App::kMiranda, "pressure", 0.5);
  const auto ranges = metrics::BlockRelativeRanges<float>(f.values, 8);
  std::size_t small = 0;
  for (const double r : ranges) small += r <= 0.02 ? 1 : 0;
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(ranges.size()),
            0.6)
      << "pressure field too rough for the paper's smoothness regime";
}

TEST(Datasets, CloudFractionFieldsAreBounded) {
  const Field f = GenerateField(App::kCesm, "CLDHGH", 0.3);
  for (const float v : f.values) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Datasets, NyxDensityHasLargeDynamicRange) {
  const Field f = GenerateField(App::kNyx, "baryon_density", 0.4);
  float vmin = f.values[0], vmax = f.values[0];
  for (const float v : f.values) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  EXPECT_GT(vmax / vmin, 20.0f);  // log-normal-like tail
  EXPECT_GT(vmin, 0.0f);
}

}  // namespace
}  // namespace szx::data
