// Tier bit-identity for the baseline-codec kernels: every BaselineOps table
// (scalar, AVX2, AVX-512, NEON) must reproduce ScalarBaselineOps exactly --
// same int32 codes, same float bit patterns -- or compressed streams would
// depend on the CPU.  Unsupported tiers fall back via BaselineOpsFor, so the
// comparisons are trivially true there and the suite stays portable.
#include "core/kernels/kernels.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx::kernels {
namespace {

using szx::testing::Rng;

std::vector<Kind> SupportedKinds() {
  std::vector<Kind> kinds;
  for (const TierInfo& tier : KernelTiers()) {
    if (tier.supported) kinds.push_back(tier.kind);
  }
  return kinds;
}

// Floats chosen to stress every prequant branch: rounding ties, the +-2^27
// clamp, non-finites, subnormals, and signed zeros.
std::vector<float> EdgeCaseFloats() {
  std::vector<float> v = {
      0.0f,
      -0.0f,
      1.0f,
      -1.0f,
      0.5f,
      -0.5f,
      1.5f,
      2.5f,  // round-to-nearest-even tie cases (for half_inv = 1)
      3.5f,
      -2.5f,
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::max(),
      std::numeric_limits<float>::lowest(),
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      1.0e30f,  // far beyond the clamp
      -1.0e30f,
      1.34217728e8f,  // 2^27, exactly at the clamp
      -1.34217728e8f,
      1.34217727e8f,
      std::nextafter(1.0f, 2.0f),
  };
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    v.push_back(static_cast<float>(rng.Uniform(-1e6, 1e6)));
  }
  return v;
}

TEST(BaselineKernels, PrequantMatchesScalarOnEveryTier) {
  const std::vector<float> src = EdgeCaseFloats();
  const std::vector<double> half_invs = {1.0, 0.5, 1234.5, 1.0 / 3.0, 5e8};
  for (const Kind kind : SupportedKinds()) {
    const BaselineOps& ops = BaselineOpsFor(kind);
    for (const double half_inv : half_invs) {
      // Vary the length to hit both the vector body and the scalar tail.
      for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{7}, std::size_t{15}, std::size_t{16},
                            std::size_t{17}, src.size()}) {
        std::vector<std::int32_t> got(n + 1, -99);
        std::vector<std::int32_t> want(n + 1, -99);
        ops.prequant_f32(src.data(), n, half_inv, got.data());
        ScalarBaselineOps().prequant_f32(src.data(), n, half_inv,
                                         want.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], PrequantOne(src[i], half_inv))
              << KindName(kind) << " n=" << n << " i=" << i;
        }
        // No write past n (the sentinel survives).
        ASSERT_EQ(got, want) << KindName(kind) << " n=" << n;
      }
    }
  }
}

TEST(BaselineKernels, LorenzoDeltaMatchesScalarOnEveryTier) {
  Rng rng(22);
  constexpr std::size_t kRow = 37;  // odd, exercises every tail length
  std::vector<std::int32_t> q(4 * (kRow + 1));
  for (auto& x : q) {
    // Values inside the kPrequantClamp contract plus a few wild ones, to
    // confirm the int64 intermediate wraps identically everywhere.
    x = static_cast<std::int32_t>(rng.Next());
    if (rng.Next() % 2 == 0) x %= kPrequantClamp;
  }
  // Pointers sit one element into each backing row so that has_left=true
  // (index -1 is a valid left-neighbour column) stays in bounds, exactly
  // like an interior block row in sz2.
  // szx-lint: allow(ptr-arith) -- fixed offsets into rows of kRow+1 elements allocated just above; the kernel ABI takes raw row pointers
  const std::int32_t* row = q.data() + 1;
  // szx-lint: allow(ptr-arith) -- same fixed row offsets
  const std::int32_t* ry = q.data() + (kRow + 1) + 1;
  // szx-lint: allow(ptr-arith) -- same fixed row offsets
  const std::int32_t* rz = q.data() + 2 * (kRow + 1) + 1;
  // szx-lint: allow(ptr-arith) -- same fixed row offsets
  const std::int32_t* ryz = q.data() + 3 * (kRow + 1) + 1;
  struct Config {
    const std::int32_t* qy;
    const std::int32_t* qz;
    const std::int32_t* qyz;
  };
  const Config configs[] = {
      {nullptr, nullptr, nullptr},  // 1-D / first row
      {ry, nullptr, nullptr},       // 2-D interior
      {nullptr, rz, nullptr},       // 3-D, first row of a plane
      {ry, rz, ryz},                // 3-D interior
  };
  for (const Kind kind : SupportedKinds()) {
    const BaselineOps& ops = BaselineOpsFor(kind);
    for (const Config& c : configs) {
      for (const bool has_left : {false, true}) {
        for (std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{15},
                              std::size_t{16}, std::size_t{17}, kRow}) {
          std::vector<std::int32_t> got(n, -1);
          std::vector<std::int32_t> want(n, -2);
          ops.lorenzo_delta_i32(row, c.qy, c.qz, c.qyz, has_left, n,
                                got.data());
          ScalarBaselineOps().lorenzo_delta_i32(row, c.qy, c.qz, c.qyz,
                                                has_left, n, want.data());
          ASSERT_EQ(got, want)
              << KindName(kind) << " has_left=" << has_left << " n=" << n;
        }
      }
    }
  }
}

TEST(BaselineKernels, DequantMatchesScalarBitExactlyOnEveryTier) {
  Rng rng(33);
  std::vector<std::int32_t> q = {0,
                                 1,
                                 -1,
                                 kPrequantClamp,
                                 -kPrequantClamp,
                                 std::numeric_limits<std::int32_t>::max(),
                                 std::numeric_limits<std::int32_t>::min()};
  for (int i = 0; i < 200; ++i) {
    q.push_back(static_cast<std::int32_t>(rng.Next()) % kPrequantClamp);
  }
  for (const Kind kind : SupportedKinds()) {
    const BaselineOps& ops = BaselineOpsFor(kind);
    for (const double twice_eb : {2e-3, 1.0, 7.5e6}) {
      for (std::size_t n : {std::size_t{0}, std::size_t{5}, std::size_t{16},
                            std::size_t{31}, q.size()}) {
        std::vector<float> got(n + 1, -7.0f);
        std::vector<float> want(n + 1, -7.0f);
        ops.dequant_f32(q.data(), n, twice_eb, got.data());
        ScalarBaselineOps().dequant_f32(q.data(), n, twice_eb, want.data());
        for (std::size_t i = 0; i <= n; ++i) {
          // Bit-level equality: 0.0f == -0.0f would mask a sign difference.
          ASSERT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                    std::bit_cast<std::uint32_t>(want[i]))
              << KindName(kind) << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

std::vector<std::int32_t> RandomBlock(Rng& rng, int dims, bool extreme) {
  std::vector<std::int32_t> block(std::size_t{1} << (2 * dims));
  for (auto& x : block) {
    x = static_cast<std::int32_t>(rng.Next());
    // Mostly in-range coefficients, occasionally int32 extremes so the
    // wrap-around contract is exercised too.
    if (!extreme) x >>= 4;
  }
  return block;
}

TEST(BaselineKernels, ZfpTransformsMatchScalarOnEveryTier) {
  Rng rng(44);
  for (const Kind kind : SupportedKinds()) {
    const BaselineOps& ops = BaselineOpsFor(kind);
    for (int dims = 1; dims <= 3; ++dims) {
      for (int trial = 0; trial < 50; ++trial) {
        const auto block = RandomBlock(rng, dims, trial % 5 == 0);
        auto fwd_got = block;
        auto fwd_want = block;
        ops.zfp_fwd_xform(fwd_got.data(), dims);
        ScalarBaselineOps().zfp_fwd_xform(fwd_want.data(), dims);
        ASSERT_EQ(fwd_got, fwd_want)
            << KindName(kind) << " fwd dims=" << dims << " trial=" << trial;

        auto inv_got = block;
        auto inv_want = block;
        ops.zfp_inv_xform(inv_got.data(), dims);
        ScalarBaselineOps().zfp_inv_xform(inv_want.data(), dims);
        ASSERT_EQ(inv_got, inv_want)
            << KindName(kind) << " inv dims=" << dims << " trial=" << trial;
      }
    }
  }
}

TEST(BaselineKernels, ZfpInverseNearlyUndoesForwardOnEveryTier) {
  // The lifting steps use floor shifts, so fwd-then-inv can lose a few low
  // bits per element (that loss is inside zfp's error budget).  Two
  // properties must hold on every tier: the reconstruction error stays a
  // tiny additive constant, and every tier reconstructs the *same* value.
  Rng rng(55);
  for (const Kind kind : SupportedKinds()) {
    const BaselineOps& ops = BaselineOpsFor(kind);
    for (int dims = 1; dims <= 3; ++dims) {
      for (int trial = 0; trial < 20; ++trial) {
        auto block = RandomBlock(rng, dims, /*extreme=*/false);
        for (auto& x : block) x >>= 2;
        auto work = block;
        ops.zfp_fwd_xform(work.data(), dims);
        ops.zfp_inv_xform(work.data(), dims);
        auto ref = block;
        ScalarBaselineOps().zfp_fwd_xform(ref.data(), dims);
        ScalarBaselineOps().zfp_inv_xform(ref.data(), dims);
        ASSERT_EQ(work, ref) << KindName(kind) << " dims=" << dims;
        for (std::size_t i = 0; i < block.size(); ++i) {
          ASSERT_LE(std::abs(static_cast<std::int64_t>(work[i]) - block[i]),
                    64)
              << KindName(kind) << " dims=" << dims << " i=" << i;
        }
      }
    }
  }
}

TEST(BaselineKernels, TierTableIsConsistent) {
  const auto tiers = KernelTiers();
  ASSERT_EQ(tiers.size(), static_cast<std::size_t>(kNumKinds));
  EXPECT_EQ(tiers[0].kind, Kind::kScalar);
  EXPECT_TRUE(tiers[0].compiled);
  EXPECT_TRUE(tiers[0].supported);
  for (const TierInfo& tier : tiers) {
    // Supported implies compiled; BaselineOpsFor never returns null entries.
    if (tier.supported) {
      EXPECT_TRUE(tier.compiled) << KindName(tier.kind);
    }
    const BaselineOps& ops = BaselineOpsFor(tier.kind);
    EXPECT_NE(ops.prequant_f32, nullptr);
    EXPECT_NE(ops.lorenzo_delta_i32, nullptr);
    EXPECT_NE(ops.dequant_f32, nullptr);
    EXPECT_NE(ops.zfp_fwd_xform, nullptr);
    EXPECT_NE(ops.zfp_inv_xform, nullptr);
  }
  // Every spelled name parses back to its Kind.
  for (const TierInfo& tier : tiers) {
    Kind parsed{};
    ASSERT_TRUE(ParseKind(KindName(tier.kind), parsed));
    EXPECT_EQ(parsed, tier.kind);
  }
  Kind parsed{};
  EXPECT_FALSE(ParseKind("sse9", parsed));
}

TEST(BaselineKernels, LorenzoPredictAtInvertsDeltaOnGrid) {
  // Encode-side delta (row-pointer form) and decode-side prediction
  // (flat-index form) must be exact inverses over a full 3-D grid.
  constexpr std::size_t nx = 9, ny = 5, nz = 4;
  Rng rng(66);
  std::vector<std::int32_t> q(nx * ny * nz);
  for (auto& x : q) {
    x = static_cast<std::int32_t>(rng.Next() % (2 * kPrequantClamp)) -
        kPrequantClamp;
  }
  std::vector<std::int32_t> delta(q.size());
  const BaselineOps& ops = ScalarBaselineOps();
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      const std::size_t row = (z * ny + y) * nx;
      // szx-lint: allow(ptr-arith) -- row indexes the nx*ny*nz grid built above; the kernel ABI takes raw row pointers
      const std::int32_t* qrow = q.data() + row;
      const std::int32_t* qy = y > 0 ? qrow - nx : nullptr;
      const std::int32_t* qz = z > 0 ? qrow - nx * ny : nullptr;
      const std::int32_t* qyz =
          (y > 0 && z > 0) ? qrow - nx - nx * ny : nullptr;
      // szx-lint: allow(ptr-arith) -- same row offset into the delta grid of identical size
      std::int32_t* drow = delta.data() + row;
      ops.lorenzo_delta_i32(qrow, qy, qz, qyz, /*has_left=*/false, nx, drow);
    }
  }
  std::vector<std::int32_t> recon(q.size());
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const std::size_t i = (z * ny + y) * nx + x;
        const std::int64_t pred =
            LorenzoPredictAt(recon.data(), i, x, y, z, nx, nx * ny);
        recon[i] = static_cast<std::int32_t>(pred + delta[i]);
      }
    }
  }
  EXPECT_EQ(recon, q);
}

}  // namespace
}  // namespace szx::kernels
