// Cooperative-cancellation unit tests: CancelToken semantics, ScopedCancel
// nesting, and the ParallelFor unwind contract on both executor backends.
#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "core/executor.hpp"

namespace szx::exec {
namespace {

TEST(CancelToken, DefaultIsNotCancelled) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_NO_THROW(token.ThrowIfCancelled());
}

TEST(CancelToken, CancelArmsImmediately) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_THROW(token.ThrowIfCancelled(), Cancelled);
  // Cancelled is an Error: generic failure handling still catches it.
  EXPECT_THROW(token.ThrowIfCancelled(), Error);
}

TEST(CancelToken, DeadlineArmsWhenTheClockPasses) {
  CancelToken token;
  token.CancelAt(std::chrono::steady_clock::now() +
                 std::chrono::hours(24));
  EXPECT_FALSE(token.cancelled());
  token.CancelAt(std::chrono::steady_clock::now() -
                 std::chrono::milliseconds(1));
  EXPECT_TRUE(token.cancelled());
}

TEST(ScopedCancel, InstallsAndRestoresNested) {
  EXPECT_EQ(CurrentCancelToken(), nullptr);
  CancelToken outer;
  CancelToken inner;
  {
    ScopedCancel a(&outer);
    EXPECT_EQ(CurrentCancelToken(), &outer);
    {
      ScopedCancel b(&inner);
      EXPECT_EQ(CurrentCancelToken(), &inner);
      {
        // nullptr shields an inner region from the outer token.
        ScopedCancel shield(nullptr);
        EXPECT_EQ(CurrentCancelToken(), nullptr);
      }
      EXPECT_EQ(CurrentCancelToken(), &inner);
    }
    EXPECT_EQ(CurrentCancelToken(), &outer);
  }
  EXPECT_EQ(CurrentCancelToken(), nullptr);
}

class CancelParallelFor : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override { prev_ = SetActiveBackend(GetParam()); }
  void TearDown() override { SetActiveBackend(prev_); }
  Backend prev_ = Backend::kPool;
};

TEST_P(CancelParallelFor, PreArmedTokenRunsNoTasks) {
  CancelToken token;
  token.Cancel();
  ScopedCancel scope(&token);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      ParallelFor(256, 4,
                  [&](std::uint64_t) {
                    // szx-mo: relaxed; test-only tally, the join is the ordering
                    ran.fetch_add(1, std::memory_order_relaxed);
                  }),
      Cancelled);
  // szx-mo: relaxed; test-only tally, the join is the ordering
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 0);
}

TEST_P(CancelParallelFor, MidRegionCancelUnwindsEarly) {
  CancelToken token;
  ScopedCancel scope(&token);
  std::atomic<int> ran{0};
  constexpr int kTasks = 4096;
  EXPECT_THROW(
      ParallelFor(kTasks, 4,
                  [&](std::uint64_t i) {
                    if (i == 0) token.Cancel();  // first task pulls the plug
                    // szx-mo: relaxed; test-only tally, the join is the ordering
                    ran.fetch_add(1, std::memory_order_relaxed);
                  }),
      Cancelled);
  // Tasks already past their check complete (task-count conservation for
  // the in-flight ones), but the region must not run to completion.
  // szx-mo: relaxed; test-only tally, the join is the ordering
  EXPECT_LT(ran.load(std::memory_order_relaxed), kTasks);
}

TEST_P(CancelParallelFor, NoTokenMeansNoOverheadPath) {
  ASSERT_EQ(CurrentCancelToken(), nullptr);
  std::atomic<int> ran{0};
  ParallelFor(128, 4, [&](std::uint64_t) {
    // szx-mo: relaxed; test-only tally, the join is the ordering
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  // szx-mo: relaxed; test-only tally, the join is the ordering
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 128);
}

TEST_P(CancelParallelFor, TokenPropagatesIntoNestedRegions) {
  CancelToken token;
  ScopedCancel scope(&token);
  std::atomic<int> inner_ran{0};
  EXPECT_THROW(
      ParallelFor(8, 2,
                  [&](std::uint64_t i) {
                    if (i == 0) token.Cancel();
                    // Nested region on a worker thread: the adapter must
                    // have re-installed the token there, so this region is
                    // cancellable too (and with the token armed, it throws
                    // before running anything).
                    ParallelFor(64, 2, [&](std::uint64_t) {
                      // szx-mo: relaxed; test-only tally, the join is the ordering
                      inner_ran.fetch_add(1, std::memory_order_relaxed);
                    });
                  }),
      Cancelled);
  // szx-mo: relaxed; test-only tally, the join is the ordering
  EXPECT_LT(inner_ran.load(std::memory_order_relaxed), 8 * 64);
}

TEST_P(CancelParallelFor, ExternalThreadCanCancel) {
  CancelToken token;
  ScopedCancel scope(&token);
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    // szx-mo: acquire; pairs with the release store in the region body
    while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
    token.Cancel();
  });
  try {
    ParallelFor(1u << 20, 4, [&](std::uint64_t) {
      // szx-mo: release; publishes started to the canceller's acquire spin
      started.store(true, std::memory_order_release);
    });
    // Completing without the cancel landing is legal (tiny tasks may finish
    // first); the contract under test is "no crash, no deadlock, and if it
    // throws, it throws Cancelled".
  } catch (const Cancelled&) {
  }
  canceller.join();
}

INSTANTIATE_TEST_SUITE_P(Backends, CancelParallelFor,
                         ::testing::Values(Backend::kOmp, Backend::kPool),
                         [](const auto& param_info) {
                           return std::string(BackendName(param_info.param));
                         });

}  // namespace
}  // namespace szx::exec
