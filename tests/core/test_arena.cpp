// ScratchArena unit tests plus the PR's acceptance property: after a warm-up
// call or two, CompressInto performs zero heap allocations.  The property is
// asserted with a counting global operator new/delete, so this test must stay
// in its own binary (other suites' fixtures would inflate the counters).
#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/compressor.hpp"
#include "../test_util.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting replacements for the global allocator.  Only the allocation count
// matters; the forms all funnel through malloc/free.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; pure allocation counter, single-threaded sampling around the calls under test
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; pure allocation counter, single-threaded sampling around the calls under test
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace szx {
namespace {

TEST(ScratchArena, AllocateRespectsAlignment) {
  ScratchArena arena;
  for (std::size_t align : {1u, 2u, 8u, 32u, 64u}) {
    std::byte* p = arena.Allocate(13, align);
    // szx-lint: allow(reinterpret-cast) -- address-to-integer only, to assert the alignment contract
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
  }
  EXPECT_THROW(arena.Allocate(8, 3), Error);
  EXPECT_THROW(arena.Allocate(8, 0), Error);
}

TEST(ScratchArena, PointersStayValidUntilReset) {
  // Force several chunk spills; earlier pointers must remain dereferenceable.
  ScratchArena arena(64);
  std::vector<std::byte*> ptrs;
  for (int i = 0; i < 20; ++i) {
    std::byte* p = arena.Allocate(100);
    p[0] = std::byte{static_cast<unsigned char>(i)};
    p[99] = std::byte{static_cast<unsigned char>(i + 1)};
    ptrs.push_back(p);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(ptrs[i][0], std::byte{static_cast<unsigned char>(i)});
    EXPECT_EQ(ptrs[i][99], std::byte{static_cast<unsigned char>(i + 1)});
  }
}

TEST(ScratchArena, AllocateSpanTypes) {
  ScratchArena arena;
  auto u16 = arena.AllocateSpan<std::uint16_t>(33);
  auto f64 = arena.AllocateSpan<double>(7);
  EXPECT_EQ(u16.size(), 33u);
  EXPECT_EQ(f64.size(), 7u);
  // szx-lint: allow(reinterpret-cast) -- address-to-integer only, to assert the alignment contract
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(f64.data()) % alignof(double), 0u);
  EXPECT_TRUE(arena.AllocateSpan<float>(0).empty());
  EXPECT_THROW(arena.AllocateSpan<double>(SIZE_MAX / 2), Error);
}

TEST(ScratchArena, ResetCoalescesToSteadyState) {
  ScratchArena arena;
  auto churn = [&arena] {
    arena.Reset();
    for (int i = 0; i < 8; ++i) arena.Allocate(3000);
  };
  churn();  // cold: several chunk spills
  churn();  // warm-up: coalesced chunk may still be one spill short
  const std::size_t warm = arena.HeapAllocations();
  for (int round = 0; round < 5; ++round) churn();
  EXPECT_EQ(arena.HeapAllocations(), warm)
      << "steady-state churn must not allocate";
  EXPECT_GE(arena.Capacity(), 8u * 3000u);
}

TEST(ScratchArena, UsedTracksBumpAndWaste) {
  ScratchArena arena;
  EXPECT_EQ(arena.Used(), 0u);
  arena.Allocate(100, 1);
  EXPECT_GE(arena.Used(), 100u);
  arena.Reset();
  EXPECT_EQ(arena.Used(), 0u);
}

TEST(ScratchArena, MoveTransfersOwnership) {
  ScratchArena a(256);
  std::byte* p = a.Allocate(16);
  p[0] = std::byte{42};
  ScratchArena b = std::move(a);
  EXPECT_EQ(p[0], std::byte{42});
  EXPECT_GE(b.Capacity(), 256u);
}

TEST(ScratchArena, CompressIntoIsAllocationFreeWhenWarm) {
  const auto data =
      testing::MakePattern<float>(testing::Pattern::kNoisySine, 40000, 3);
  Params params;  // REL 1e-3, block 128, Solution C
  ScratchArena arena;
  CompressionStats stats;

  // Warm-up: two calls let the arena coalesce to its high-water chunk and
  // any thread_local scratch inside the codec reach steady size.
  const ByteSpan first = CompressInto<float>(data, params, arena, &stats);
  const ByteBuffer expect(first.begin(), first.end());
  (void)CompressInto<float>(data, params, arena, &stats);

  const std::uint64_t before = g_news.load(std::memory_order_relaxed);  // szx-mo: relaxed; single-threaded sample
  const ByteSpan frame = CompressInto<float>(data, params, arena, &stats);
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);  // szx-mo: relaxed; single-threaded sample
  EXPECT_EQ(after - before, 0u)
      << "steady-state CompressInto must not touch the heap";

  // The zero-allocation path must still produce the exact same stream.
  ASSERT_EQ(frame.size(), expect.size());
  EXPECT_TRUE(std::equal(frame.begin(), frame.end(), expect.begin()));
  const auto recon = Decompress<float>(frame);
  EXPECT_EQ(recon.size(), data.size());
}

TEST(ScratchArena, CompressIntoStaysWarmAcrossBounds) {
  // Changing the error bound changes section sizes but not the worst case;
  // a warmed arena must absorb all of them without allocating.
  const auto data =
      testing::MakePattern<float>(testing::Pattern::kMixedScales, 20000, 9);
  ScratchArena arena;
  Params params;
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    params.error_bound = eb;
    (void)CompressInto<float>(data, params, arena);
    (void)CompressInto<float>(data, params, arena);
  }
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);  // szx-mo: relaxed; single-threaded sample
  for (double eb : {1e-2, 1e-3, 1e-4}) {
    params.error_bound = eb;
    (void)CompressInto<float>(data, params, arena);
  }
  EXPECT_EQ(g_news.load(std::memory_order_relaxed) - before, 0u);  // szx-mo: relaxed; single-threaded sample
}

}  // namespace
}  // namespace szx
