// Random-access decompression: every sub-range must agree exactly with the
// corresponding slice of a full decompression.
#include "core/random_access.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::Rng;

class RangeSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RangeSweep, MatchesFullDecompressionSlice) {
  const auto [pat, sol] = GetParam();
  const auto data = MakePattern<float>(static_cast<Pattern>(pat), 30000, 7);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  p.solution = static_cast<CommitSolution>(sol);
  const auto stream = Compress<float>(data, p);
  const auto full = Decompress<float>(stream);

  Rng rng(55);
  for (int trial = 0; trial < 60; ++trial) {
    const std::uint64_t first = rng.Next() % data.size();
    const std::uint64_t count =
        std::min<std::uint64_t>(1 + rng.Next() % 4000, data.size() - first);
    const auto range = DecompressRange<float>(stream, first, count);
    for (std::uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(range[i], full[first + i])
          << "first=" << first << " count=" << count << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RangeSweep,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(0, 1, 2)));

TEST(RandomAccess, ExactBlockBoundaries) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 10000, 3);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  p.block_size = 64;
  const auto stream = Compress<float>(data, p);
  const auto full = Decompress<float>(stream);
  const std::pair<std::uint64_t, std::uint64_t> cases[] = {
      {0, 64}, {64, 64}, {64, 128}, {9984, 16} /*ragged*/, {0, 10000}};
  for (const auto& [first, count] : cases) {
    const auto range = DecompressRange<float>(stream, first, count);
    for (std::uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(range[i], full[first + i]);
    }
  }
}

TEST(RandomAccess, SingleElements) {
  const auto data = MakePattern<float>(Pattern::kSparseSpikes, 5000, 9);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-4;
  const auto stream = Compress<float>(data, p);
  const auto full = Decompress<float>(stream);
  for (const std::uint64_t i : {0ull, 1ull, 127ull, 128ull, 4999ull}) {
    const auto one = DecompressRange<float>(stream, i, 1);
    ASSERT_EQ(one[0], full[i]) << i;
  }
}

TEST(RandomAccess, EmptyRange) {
  const auto data = MakePattern<float>(Pattern::kRamp, 1000, 1);
  Params p;
  const auto stream = Compress<float>(data, p);
  EXPECT_TRUE(DecompressRange<float>(stream, 500, 0).empty());
}

TEST(RandomAccess, OutOfBoundsRejected) {
  const auto data = MakePattern<float>(Pattern::kRamp, 1000, 1);
  Params p;
  const auto stream = Compress<float>(data, p);
  EXPECT_THROW(DecompressRange<float>(stream, 990, 20), Error);
  EXPECT_THROW(DecompressRange<float>(stream, 1001, 1), Error);
  EXPECT_NO_THROW(DecompressRange<float>(stream, 1000, 0));
}

TEST(RandomAccess, RangeEndWrappingPastElementCountRejected) {
  // Forged request whose first + count wraps past UINT64_MAX: unchecked
  // addition would come out small, pass the num_elements comparison, and
  // index blocks far outside the stream.  CheckedAdd must refuse before
  // any allocation or block arithmetic.
  const auto data = MakePattern<float>(Pattern::kRamp, 1000, 1);
  Params p;
  const auto stream = Compress<float>(data, p);
  EXPECT_THROW(DecompressRange<float>(stream, UINT64_MAX - 2, 4), Error);
  EXPECT_THROW(DecompressRange<float>(stream, 4, UINT64_MAX - 2), Error);
  std::vector<float> out(4);
  EXPECT_THROW(DecompressRangeInto<float>(stream, UINT64_MAX - 2,
                                          std::span<float>(out)),
               Error);
}

TEST(RandomAccess, RawPassthroughStreams) {
  Rng rng(17);
  std::vector<float> data(5000);
  for (auto& v : data) {
    v = std::bit_cast<float>(
        static_cast<std::uint32_t>(rng.Next() & 0x7f7fffffu));
  }
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-30;  // forces raw passthrough
  const auto stream = Compress<float>(data, p);
  const auto range = DecompressRange<float>(stream, 1234, 777);
  for (std::size_t i = 0; i < 777; ++i) {
    ASSERT_EQ(range[i], data[1234 + i]);
  }
}

TEST(RandomAccess, DoubleType) {
  const auto data = MakePattern<double>(Pattern::kSmoothSine, 20000, 5);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-5;
  const auto stream = Compress<double>(data, p);
  const auto full = Decompress<double>(stream);
  const auto range = DecompressRange<double>(stream, 7777, 3333);
  for (std::size_t i = 0; i < 3333; ++i) {
    ASSERT_EQ(range[i], full[7777 + i]);
  }
}

}  // namespace
}  // namespace szx
