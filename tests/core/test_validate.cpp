// Stream validation tests: good streams pass (shallow and deep), every
// kind of surgical corruption is caught, and validation never throws.
#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::Rng;

ByteBuffer GoodStream(double eb = 1e-3) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 20000, 3);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = eb;
  return Compress<float>(data, p);
}

TEST(Validate, AcceptsGoodStreams) {
  const auto stream = GoodStream();
  const auto shallow = ValidateStream<float>(stream, false);
  EXPECT_TRUE(shallow.ok) << shallow.error;
  EXPECT_EQ(shallow.header.num_elements, 20000u);
  const auto deep = ValidateStream<float>(stream, true);
  EXPECT_TRUE(deep.ok) << deep.error;
  EXPECT_EQ(deep.payload_bytes_walked, deep.header.payload_bytes);
}

TEST(Validate, AcceptsAllSolutionsAndRawPassthrough) {
  for (const CommitSolution sol :
       {CommitSolution::kA, CommitSolution::kB, CommitSolution::kC}) {
    const auto data = MakePattern<float>(Pattern::kSmoothSine, 5000, 1);
    Params p;
    p.solution = sol;
    const auto stream = Compress<float>(data, p);
    EXPECT_TRUE(ValidateStream<float>(stream, true).ok);
  }
  // Raw passthrough.
  Rng rng(1);
  std::vector<float> noise(2000);
  for (auto& v : noise) {
    v = std::bit_cast<float>(
        static_cast<std::uint32_t>(rng.Next() & 0x7f7fffffu));
  }
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-30;
  EXPECT_TRUE(ValidateStream<float>(Compress<float>(noise, p), true).ok);
}

TEST(Validate, RejectsTypeMismatch) {
  const auto stream = GoodStream();
  const auto r = ValidateStream<double>(stream, false);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Validate, RejectsTruncation) {
  const auto stream = GoodStream();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{40}, stream.size() / 2,
        stream.size() - 1}) {
    EXPECT_FALSE(
        ValidateStream<float>(ByteSpan(stream.data(), keep), false).ok)
        << keep;
  }
}

// ValidateStream(deep) advertises itself as a throw-free preflight for
// Decompress, so it must flag every prefix length the decoder throws on --
// not just the coarse sample above.  Checked at every truncation point.
TEST(Validate, DeepRejectsEveryTruncationDecompressThrowsOn) {
  const auto stream = GoodStream();
  for (std::size_t keep = 0; keep < stream.size(); ++keep) {
    const ByteSpan prefix(stream.data(), keep);
    bool decompress_throws = false;
    try {
      (void)Decompress<float>(prefix);
    } catch (const Error&) {
      decompress_throws = true;
    }
    ASSERT_TRUE(decompress_throws) << "prefix of " << keep << " bytes";
    ASSERT_FALSE(ValidateStream<float>(prefix, true).ok)
        << "deep validation accepted a " << keep
        << "-byte prefix Decompress throws on";
  }
}

TEST(Validate, ShallowCatchesStructuralCorruption) {
  auto stream = GoodStream();
  // Flip a type bit: constant/non-constant censuses diverge.
  stream[sizeof(Header)] ^= std::byte{0x01};
  EXPECT_FALSE(ValidateStream<float>(stream, false).ok);
}

TEST(Validate, NeverThrowsOnGarbage) {
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    ByteBuffer junk(rng.Next() % 2048);
    for (auto& b : junk) {
      b = std::byte{static_cast<std::uint8_t>(rng.Next() & 0xff)};
    }
    EXPECT_NO_THROW({
      const auto r = ValidateStream<float>(junk, true);
      EXPECT_FALSE(r.ok);
    });
  }
}

TEST(Validate, FlipSweepNeverThrows) {
  const auto original = GoodStream();
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    ByteBuffer bad = original;
    bad[rng.Next() % bad.size()] ^= std::byte{
        static_cast<std::uint8_t>(1u << (rng.Next() % 8))};
    EXPECT_NO_THROW(ValidateStream<float>(bad, true));
  }
}

}  // namespace
}  // namespace szx
