// Double-buffered pipeline correctness: the overlapped path must produce a
// container byte-identical to a plain read-then-append loop on every
// backend, account for every chunk and element exactly once, and propagate
// reader/codec failures after joining the in-flight prefetch.  The
// real-file leg runs the same contract through iosim's ChunkFileReader,
// including transient read faults absorbed by its bounded retry.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/streaming.hpp"
#include "iosim/file_backend.hpp"

namespace szx {
namespace {

Params TestParams() {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  p.block_size = 64;
  return p;
}

std::vector<float> MakeSignal(std::size_t n, std::uint64_t seed) {
  std::vector<float> data(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> noise(-0.05F, 0.05F);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = std::sin(static_cast<float>(i) * 0.01F) + noise(rng);
  }
  return data;
}

/// Reference container: the plain sequential loop the pipeline must match.
ByteBuffer SequentialContainer(const std::vector<float>& data,
                               std::size_t chunk_elems) {
  StreamWriter<float> writer(TestParams());
  for (std::size_t pos = 0; pos < data.size(); pos += chunk_elems) {
    const std::size_t n = std::min(chunk_elems, data.size() - pos);
    writer.Append(std::span<const float>(data).subspan(pos, n));
  }
  return std::move(writer).Finish();
}

/// Pull-callback over an in-memory vector.
ChunkReadFn<float> VectorSource(const std::vector<float>& data,
                                std::size_t* cursor) {
  return [&data, cursor](std::span<float> buf) {
    const std::size_t n = std::min(buf.size(), data.size() - *cursor);
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(*cursor), n,
                buf.begin());
    *cursor += n;
    return n;
  };
}

/// Restores the backend selection on scope exit.
class BackendGuard {
 public:
  BackendGuard() : saved_(exec::ActiveBackend()) {}
  ~BackendGuard() { exec::SetActiveBackend(saved_); }

 private:
  exec::Backend saved_;
};

std::string TempPath(const char* tag) {
  return testing::TempDir() + "szx_pipeline_" + tag + "_" +
         std::to_string(::getpid()) + ".bin";
}

TEST(Pipeline, ByteIdenticalToSequentialLoopOnEveryBackend) {
  const auto data = MakeSignal(10'000, 42);
  const std::size_t chunk_elems = 768;  // last chunk partial
  const ByteBuffer reference = SequentialContainer(data, chunk_elems);

  BackendGuard guard;
  const exec::Backend backends[2] = {exec::Backend::kPool,
                                     exec::Backend::kOmp};
  const int backend_count = exec::OmpAvailable() ? 2 : 1;
  for (int b = 0; b < backend_count; ++b) {
    exec::SetActiveBackend(backends[b]);
    for (const bool overlap : {true, false}) {
      SCOPED_TRACE(std::string(exec::BackendName(backends[b])) +
                   (overlap ? "/overlap" : "/sequential"));
      StreamWriter<float> writer(TestParams());
      std::size_t cursor = 0;
      const PipelineResult r = CompressChunksPipelined<float>(
          writer, VectorSource(data, &cursor), chunk_elems, overlap);
      EXPECT_EQ(r.chunks, (data.size() + chunk_elems - 1) / chunk_elems);
      EXPECT_EQ(r.elements, data.size());
      EXPECT_EQ(r.overlapped,
                overlap && backends[b] == exec::Backend::kPool);
      const ByteBuffer got = std::move(writer).Finish();
      ASSERT_EQ(got.size(), reference.size());
      EXPECT_TRUE(std::equal(got.begin(), got.end(), reference.begin()));
    }
  }
}

TEST(Pipeline, DecodesBackToWithinBound) {
  const auto data = MakeSignal(4'096, 7);
  StreamWriter<float> writer(TestParams());
  std::size_t cursor = 0;
  CompressChunksPipelined<float>(writer, VectorSource(data, &cursor), 512);
  const ByteBuffer container = std::move(writer).Finish();

  StreamReader<float> reader(container);
  std::vector<float> frame;
  std::size_t pos = 0;
  while (reader.Next(frame)) {
    for (const float v : frame) {
      ASSERT_LT(pos, data.size());
      EXPECT_NEAR(v, data[pos], 1e-3 + 1e-6);
      ++pos;
    }
  }
  EXPECT_EQ(pos, data.size());
}

TEST(Pipeline, ZeroChunkElemsThrows) {
  StreamWriter<float> writer(TestParams());
  const ChunkReadFn<float> never = [](std::span<float>) -> std::size_t {
    ADD_FAILURE() << "reader must not be called";
    return 0;
  };
  EXPECT_THROW(CompressChunksPipelined<float>(writer, never, 0), Error);
}

TEST(Pipeline, EmptySourceProducesEmptyContainer) {
  StreamWriter<float> writer(TestParams());
  const ChunkReadFn<float> empty = [](std::span<float>) -> std::size_t {
    return 0;
  };
  const PipelineResult r = CompressChunksPipelined<float>(writer, empty, 128);
  EXPECT_EQ(r.chunks, 0U);
  EXPECT_EQ(r.elements, 0U);
  const ByteBuffer container = std::move(writer).Finish();
  StreamReader<float> reader(container);
  std::vector<float> frame;
  EXPECT_FALSE(reader.Next(frame));
}

TEST(Pipeline, ReaderExceptionPropagatesInBothModes) {
  for (const bool overlap : {true, false}) {
    SCOPED_TRACE(overlap ? "overlap" : "sequential");
    StreamWriter<float> writer(TestParams());
    int calls = 0;
    const ChunkReadFn<float> failing =
        [&calls](std::span<float> buf) -> std::size_t {
      if (++calls >= 3) {
        throw std::runtime_error("simulated source failure");
      }
      std::fill(buf.begin(), buf.end(), 1.5F);
      return buf.size();
    };
    EXPECT_THROW(
        CompressChunksPipelined<float>(writer, failing, 256, overlap),
        std::runtime_error);
  }
}

/// End-to-end through the real-file backend: raw floats staged to disk by
/// ChunkFileWriter, pulled back by ChunkFileReader inside the pipeline,
/// with transient read faults absorbed by the reader's retry loop.  The
/// container must still match the all-in-memory sequential reference.
TEST(Pipeline, FileBackedSourceWithTransientFaultsMatchesReference) {
  const auto data = MakeSignal(6'000, 99);
  const std::size_t chunk_elems = 1'000;
  const ByteBuffer reference = SequentialContainer(data, chunk_elems);
  const std::string path = TempPath("source");

  {
    iosim::ChunkFileWriter out(path);
    // szx-lint: allow(reinterpret-cast) -- staging raw floats to the test file
    const auto* bytes = reinterpret_cast<const std::byte*>(data.data());
    out.WriteChunk(std::span<const std::byte>(bytes,
                                              data.size() * sizeof(float)));
    out.Close();
  }

  iosim::TransientReadFaults faults;
  faults.period = 2;  // every 2nd chunk read fails once, then succeeds
  faults.max_attempts = 3;
  iosim::ChunkFileReader in(path, faults);
  const ChunkReadFn<float> file_source =
      [&in](std::span<float> buf) -> std::size_t {
    // szx-lint: allow(reinterpret-cast) -- file bytes are exactly the floats staged above
    auto* bytes = reinterpret_cast<std::byte*>(buf.data());
    const std::size_t got = in.ReadChunk(
        std::span<std::byte>(bytes, buf.size() * sizeof(float)));
    EXPECT_EQ(got % sizeof(float), 0U);
    return got / sizeof(float);
  };

  StreamWriter<float> writer(TestParams());
  const PipelineResult r =
      CompressChunksPipelined<float>(writer, file_source, chunk_elems);
  EXPECT_EQ(r.chunks, 6U);
  EXPECT_EQ(r.elements, data.size());

  const ByteBuffer got = std::move(writer).Finish();
  ASSERT_EQ(got.size(), reference.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), reference.begin()));

  // Retries happened and chunks were neither lost nor duplicated: the
  // reader saw 6 data chunks + 1 EOF probe, retrying the faulted ones.
  EXPECT_EQ(in.stats().chunks, 6U);
  EXPECT_EQ(in.stats().bytes, data.size() * sizeof(float));
  EXPECT_EQ(in.stats().retries, 3U);  // chunks 2, 4, 6 each retried once
  EXPECT_EQ(in.stats().attempts, in.stats().chunks + in.stats().retries + 1);

  std::remove(path.c_str());
}

TEST(Pipeline, AccountingCoversWallClock) {
  const auto data = MakeSignal(8'192, 3);
  StreamWriter<float> writer(TestParams());
  std::size_t cursor = 0;
  const PipelineResult r = CompressChunksPipelined<float>(
      writer, VectorSource(data, &cursor), 1'024);
  EXPECT_GE(r.read_s, 0.0);
  EXPECT_GE(r.compress_s, 0.0);
  EXPECT_GT(r.wall_s, 0.0);
  // Without overlap the stage times are nested inside the wall time; with
  // overlap their sum may exceed it (that surplus is the hidden I/O).
  if (!r.overlapped) {
    EXPECT_LE(r.read_s + r.compress_s, r.wall_s + 1e-3);
  }
  (void)std::move(writer).Finish();
}

}  // namespace
}  // namespace szx
