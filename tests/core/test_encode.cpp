// Block encoder/decoder property tests for all three commit solutions
// (Fig. 5): round trips must respect the error bound implied by the
// required-length plan for every (type, pattern, block size, bound).
#include "core/encode.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "core/block_stats.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::WithinBound;

template <SupportedFloat T>
void RoundTripOne(CommitSolution sol, Pattern pattern, std::size_t n,
                  double eb) {
  SCOPED_TRACE(std::string("pattern=") + testing::PatternName(pattern) +
               " n=" + std::to_string(n) + " eb=" + std::to_string(eb) +
               " sol=" + std::to_string(int(sol)));
  const auto data = MakePattern<T>(pattern, n, 3);
  const auto st = ComputeBlockStats<T>(std::span<const T>(data));
  ASSERT_TRUE(st.all_finite);
  if (st.radius <= eb) {
    GTEST_SKIP() << "block is constant at this bound";
  }
  // Mirror the codec: fall back to the exact lossless plan when truncation
  // cannot deliver the requested bound.
  ReqPlan plan = ComputeReqPlan<T>(ExponentOf(st.radius), ExponentOf(eb));
  T mu = st.mu;
  if (plan.exceeds_precision) {
    plan = LosslessPlan<T>();
    mu = T(0);
  }
  ByteBuffer payload;
  std::size_t zsize = 0;
  switch (sol) {
    case CommitSolution::kA:
      zsize = EncodeBlockA<T>(data, mu, plan, payload);
      break;
    case CommitSolution::kB:
      zsize = EncodeBlockB<T>(data, mu, plan, payload);
      break;
    case CommitSolution::kC:
      zsize = EncodeBlockC<T>(data, mu, plan, payload);
      break;
  }
  EXPECT_EQ(zsize, payload.size());
  EXPECT_LE(zsize, MaxBlockPayload<T>(n) + 8);

  std::vector<T> out(n);
  switch (sol) {
    case CommitSolution::kA:
      DecodeBlockA<T>(payload, mu, plan, out);
      break;
    case CommitSolution::kB:
      DecodeBlockB<T>(payload, mu, plan, out);
      break;
    case CommitSolution::kC:
      DecodeBlockC<T>(payload, mu, plan, out);
      break;
  }
  EXPECT_TRUE(WithinBound<T>(data, out, eb));
}

using Case = std::tuple<int /*solution*/, int /*pattern*/, int /*n*/,
                        double /*eb*/>;

class EncodeSweepF32 : public ::testing::TestWithParam<Case> {};
class EncodeSweepF64 : public ::testing::TestWithParam<Case> {};

TEST_P(EncodeSweepF32, RoundTripRespectsBound) {
  const auto [sol, pat, n, eb] = GetParam();
  RoundTripOne<float>(static_cast<CommitSolution>(sol),
                      static_cast<Pattern>(pat), static_cast<std::size_t>(n),
                      eb);
}

TEST_P(EncodeSweepF64, RoundTripRespectsBound) {
  const auto [sol, pat, n, eb] = GetParam();
  RoundTripOne<double>(static_cast<CommitSolution>(sol),
                       static_cast<Pattern>(pat), static_cast<std::size_t>(n),
                       eb);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncodeSweepF32,
    ::testing::Combine(::testing::Values(0, 1, 2),           // A, B, C
                       ::testing::Range(0, 8),               // patterns
                       ::testing::Values(4, 17, 128, 333),   // block sizes
                       ::testing::Values(1e-1, 1e-3, 1e-6)));

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncodeSweepF64,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range(0, 8),
                       ::testing::Values(4, 17, 128, 333),
                       ::testing::Values(1e-1, 1e-3, 1e-9)));

TEST(EncodeBlockC, LosslessPlanPreservesSpecialValues) {
  // The lossless path (req = total bits, mu = 0) must reproduce NaN/Inf
  // bit patterns exactly.
  std::vector<float> data = {1.5f, std::numeric_limits<float>::quiet_NaN(),
                             -std::numeric_limits<float>::infinity(), 0.0f,
                             -0.0f, std::numeric_limits<float>::denorm_min()};
  ReqPlan plan;
  plan.req_length = 32;
  plan.shift = 0;
  plan.num_bytes = 4;
  ByteBuffer payload;
  EncodeBlockC<float>(data, 0.0f, plan, payload);
  std::vector<float> out(data.size());
  DecodeBlockC<float>(payload, 0.0f, plan, out);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(data[i]),
              std::bit_cast<std::uint32_t>(out[i]))
        << i;
  }
}

TEST(EncodeBlockC, ConstantRunCompressesToLeadCodesOnly) {
  // Identical values after the first should cost zero or one mid byte each
  // thanks to the lead-byte codes.
  const std::vector<float> data(128, 42.0f);
  ReqPlan plan = ComputeReqPlan<float>(0, -10);
  ByteBuffer payload;
  const std::size_t zsize = EncodeBlockC<float>(data, 41.0f, plan, payload);
  // lead array (32 bytes) + first value (nb bytes) + at most one byte each.
  EXPECT_LE(zsize, LeadArrayBytes(128) + plan.num_bytes + 127);
}

TEST(EncodeBlockC, TruncatedPayloadThrows) {
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 64, 3);
  const auto st = ComputeBlockStats<float>(std::span<const float>(data));
  const ReqPlan plan =
      ComputeReqPlan<float>(ExponentOf(st.radius), ExponentOf(1e-4));
  ByteBuffer payload;
  EncodeBlockC<float>(data, st.mu, plan, payload);
  std::vector<float> out(64);
  ByteSpan cut(payload.data(), payload.size() / 2);
  EXPECT_THROW(DecodeBlockC<float>(cut, st.mu, plan, out), Error);
  ByteSpan tiny(payload.data(), 3);
  EXPECT_THROW(DecodeBlockC<float>(tiny, st.mu, plan, out), Error);
}

TEST(EncodeBlockA, TruncatedPayloadThrows) {
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 64, 3);
  const auto st = ComputeBlockStats<float>(std::span<const float>(data));
  const ReqPlan plan =
      ComputeReqPlan<float>(ExponentOf(st.radius), ExponentOf(1e-4));
  ByteBuffer payload;
  EncodeBlockA<float>(data, st.mu, plan, payload);
  std::vector<float> out(64);
  ByteSpan cut(payload.data(), payload.size() / 2);
  EXPECT_THROW(DecodeBlockA<float>(cut, st.mu, plan, out), Error);
}

TEST(EncodeBlockB, TruncatedPayloadThrows) {
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 64, 3);
  const auto st = ComputeBlockStats<float>(std::span<const float>(data));
  const ReqPlan plan =
      ComputeReqPlan<float>(ExponentOf(st.radius), ExponentOf(1e-4));
  ByteBuffer payload;
  EncodeBlockB<float>(data, st.mu, plan, payload);
  std::vector<float> out(64);
  ByteSpan cut(payload.data(), payload.size() / 3);
  EXPECT_THROW(DecodeBlockB<float>(cut, st.mu, plan, out), Error);
}

TEST(CharacterizeShiftOverhead, CountsMatchEncoders) {
  // The Fig. 6 characterization must agree with the actual encoders' mid
  // sections: solution_c_bits == 8 * (C mid bytes), and the A/B count equals
  // the bit total the Solution A bit stream stores.
  for (auto p : {Pattern::kSmoothSine, Pattern::kNoisySine,
                 Pattern::kUniformNoise}) {
    const auto data = MakePattern<float>(p, 128, 11);
    const auto st = ComputeBlockStats<float>(std::span<const float>(data));
    const ReqPlan plan =
        ComputeReqPlan<float>(ExponentOf(st.radius), ExponentOf(1e-4));
    const auto bits = CharacterizeShiftOverhead<float>(data, st.mu, plan);

    ByteBuffer payload_c;
    const std::size_t zc = EncodeBlockC<float>(data, st.mu, plan, payload_c);
    const std::size_t mid_c = zc - LeadArrayBytes(128);
    EXPECT_EQ(bits.solution_c_bits, mid_c * 8) << testing::PatternName(p);
    // Note: the paper's Fig. 6 shows the C-vs-AB overhead can be negative
    // (the shift can *increase* identical leading bytes), so no ordering is
    // asserted between the two counts.
  }
}

}  // namespace
}  // namespace szx
