// Pointwise-relative error-bound mode (ErrorBoundMode::kPointwiseRelative):
// |d - d'| <= eb * |d| must hold at every point, across compressors.
#include <gtest/gtest.h>

#include "core/block_plan.hpp"
#include "core/compressor.hpp"
#include "core/omp_codec.hpp"
#include "cusim/cusim_codec.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;

template <typename T>
::testing::AssertionResult PointwiseWithin(std::span<const T> original,
                                           std::span<const T> recon,
                                           double rel) {
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double a = static_cast<double>(original[i]);
    const double b = static_cast<double>(recon[i]);
    if (std::isnan(a) && std::isnan(b)) continue;
    if (!(std::fabs(a - b) <= rel * std::fabs(a))) {
      return ::testing::AssertionFailure()
             << "pointwise bound violated at " << i << ": |" << a << " - "
             << b << "| > " << rel << " * |" << a << "|";
    }
  }
  return ::testing::AssertionSuccess();
}

class PwRelSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(PwRelSweep, BoundHoldsEverywhere) {
  const auto [pat, eb, block] = GetParam();
  const auto data = MakePattern<float>(static_cast<Pattern>(pat), 20000, 5);
  Params p;
  p.mode = ErrorBoundMode::kPointwiseRelative;
  p.error_bound = eb;
  p.block_size = static_cast<std::uint32_t>(block);
  const auto out = Decompress<float>(Compress<float>(data, p));
  EXPECT_TRUE(PointwiseWithin<float>(data, out, eb));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PwRelSweep,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(1e-2, 1e-4),
                       ::testing::Values(32, 128)));

TEST(PwRel, DoublePrecision) {
  const auto data = MakePattern<double>(Pattern::kNoisySine, 30000, 7);
  Params p;
  p.mode = ErrorBoundMode::kPointwiseRelative;
  p.error_bound = 1e-6;
  const auto out = Decompress<double>(Compress<double>(data, p));
  EXPECT_TRUE(PointwiseWithin<double>(data, out, 1e-6));
}

TEST(PwRel, ZerosAreExact) {
  // Blocks containing zeros get a zero bound -> must round-trip exactly.
  auto data = MakePattern<float>(Pattern::kSparseSpikes, 10000, 3);
  Params p;
  p.mode = ErrorBoundMode::kPointwiseRelative;
  p.error_bound = 1e-2;
  const auto out = Decompress<float>(Compress<float>(data, p));
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == 0.0f) {
      ASSERT_EQ(out[i], 0.0f) << i;
    }
  }
  EXPECT_TRUE(PointwiseWithin<float>(data, out, 1e-2));
}

TEST(PwRel, MixedMagnitudesBoundPerPoint) {
  // The whole point of PW_REL: tiny values keep tiny absolute errors even
  // next to huge ones.
  const auto data = MakePattern<float>(Pattern::kMixedScales, 8000, 9);
  Params p;
  p.mode = ErrorBoundMode::kPointwiseRelative;
  p.error_bound = 1e-3;
  const auto out = Decompress<float>(Compress<float>(data, p));
  EXPECT_TRUE(PointwiseWithin<float>(data, out, 1e-3));
}

TEST(PwRel, AllCompressorsAgreeBitForBit) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 50000, 13);
  Params p;
  p.mode = ErrorBoundMode::kPointwiseRelative;
  p.error_bound = 1e-3;
  const auto serial = Compress<float>(data, p);
  const auto omp = CompressOmp<float>(data, p, nullptr, 4);
  const auto cuda = cusim::CompressCuda<float>(data, p);
  EXPECT_EQ(serial, omp);
  EXPECT_EQ(serial, cuda);
  const auto a = Decompress<float>(serial);
  const auto b = DecompressOmp<float>(serial, 4);
  const auto c = cusim::DecompressCuda<float>(serial);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(PwRel, HeaderRecordsMode) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 1000, 1);
  Params p;
  p.mode = ErrorBoundMode::kPointwiseRelative;
  p.error_bound = 1e-3;
  const Header h = PeekHeader(Compress<float>(data, p));
  EXPECT_EQ(h.eb_mode,
            static_cast<std::uint8_t>(ErrorBoundMode::kPointwiseRelative));
  EXPECT_DOUBLE_EQ(h.error_bound_user, 1e-3);
}

TEST(PwRel, CompressesPositiveSmoothData) {
  // On strictly positive smooth data PW_REL should still compress well.
  std::vector<float> data(1 << 18);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(
        100.0 + 50.0 * std::sin(3e-4 * static_cast<double>(i)));
  }
  Params p;
  p.mode = ErrorBoundMode::kPointwiseRelative;
  p.error_bound = 1e-2;
  CompressionStats stats;
  (void)Compress<float>(data, p, &stats);  // only the ratio is under test
  EXPECT_GT(stats.CompressionRatio(sizeof(float)), 3.0);
}

TEST(BlockMinAbs, DerivesFromExtremesOrScans) {
  const std::vector<float> pos = {2.0f, 5.0f, 3.0f};
  const std::vector<float> neg = {-2.0f, -5.0f, -3.0f};
  const std::vector<float> straddle = {-4.0f, 0.5f, 3.0f};
  const std::vector<float> with_zero = {-4.0f, 0.0f, 3.0f};
  auto stats = [](std::span<const float> v) {
    return ComputeBlockStatsScalar<float>(v);
  };
  EXPECT_DOUBLE_EQ(BlockMinAbs<float>(pos, stats(pos)), 2.0);
  EXPECT_DOUBLE_EQ(BlockMinAbs<float>(neg, stats(neg)), 2.0);
  EXPECT_DOUBLE_EQ(BlockMinAbs<float>(straddle, stats(straddle)), 0.5);
  EXPECT_DOUBLE_EQ(BlockMinAbs<float>(with_zero, stats(with_zero)), 0.0);
}

}  // namespace
}  // namespace szx
