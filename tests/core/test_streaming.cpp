// Streaming frame container: multi-frame round trips, bounded memory
// semantics, checksum verification, failure injection.
#include "core/streaming.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::WithinBound;

TEST(Streaming, MultiFrameRoundTrip) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  StreamWriter<float> writer(p);
  std::vector<std::vector<float>> frames;
  for (int f = 0; f < 10; ++f) {
    frames.push_back(
        MakePattern<float>(Pattern::kNoisySine, 5000 + 137 * f, f));
    writer.Append(frames.back());
  }
  EXPECT_EQ(writer.frames(), 10u);
  const ByteBuffer container = std::move(writer).Finish();

  StreamReader<float> reader(container);
  std::vector<float> out;
  for (int f = 0; f < 10; ++f) {
    ASSERT_TRUE(reader.Next(out)) << f;
    EXPECT_EQ(out.size(), frames[f].size());
    EXPECT_TRUE(WithinBound<float>(frames[f], out, 1e-3));
  }
  EXPECT_FALSE(reader.Next(out));
  EXPECT_EQ(reader.frames_read(), 10u);
}

TEST(Streaming, EmptyContainer) {
  Params p;
  StreamWriter<float> writer(p);
  const ByteBuffer container = std::move(writer).Finish();
  StreamReader<float> reader(container);
  std::vector<float> out;
  EXPECT_FALSE(reader.Next(out));
}

TEST(Streaming, EmptyFrameAllowed) {
  Params p;
  StreamWriter<double> writer(p);
  writer.Append(std::span<const double>());
  writer.Append(MakePattern<double>(Pattern::kRamp, 100, 1));
  const ByteBuffer container = std::move(writer).Finish();
  StreamReader<double> reader(container);
  std::vector<double> out;
  ASSERT_TRUE(reader.Next(out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(reader.Next(out));
  EXPECT_EQ(out.size(), 100u);
}

TEST(Streaming, TypeMismatchRejected) {
  Params p;
  StreamWriter<float> writer(p);
  writer.Append(MakePattern<float>(Pattern::kRamp, 10, 1));
  const ByteBuffer container = std::move(writer).Finish();
  EXPECT_THROW(StreamReader<double>{container}, Error);
}

TEST(Streaming, ChecksumDetectsFrameCorruption) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  StreamWriter<float> writer(p);
  writer.Append(MakePattern<float>(Pattern::kNoisySine, 5000, 1));
  ByteBuffer container = std::move(writer).Finish();
  // Flip a byte inside the frame payload (past container+frame headers).
  container[container.size() - 10] ^= std::byte{0x20};
  StreamReader<float> reader(container);
  std::vector<float> out;
  EXPECT_THROW((void)reader.Next(out), Error);
}

TEST(Streaming, TruncationRejected) {
  Params p;
  StreamWriter<float> writer(p);
  writer.Append(MakePattern<float>(Pattern::kNoisySine, 5000, 1));
  const ByteBuffer container = std::move(writer).Finish();
  // Cut inside the frame header.
  EXPECT_THROW(
      {
        StreamReader<float> r(ByteSpan(container.data(), 12));
        std::vector<float> out;
        (void)r.Next(out);
      },
      Error);
  // Cut inside the payload.
  EXPECT_THROW(
      {
        StreamReader<float> r(ByteSpan(container.data(), 200));
        std::vector<float> out;
        (void)r.Next(out);
      },
      Error);
}

TEST(Streaming, BadMagicRejected) {
  ByteBuffer junk(64, std::byte{7});
  EXPECT_THROW(StreamReader<float>{junk}, Error);
}

TEST(Streaming, CompressionAccumulates) {
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-2;
  StreamWriter<float> writer(p);
  for (int f = 0; f < 5; ++f) {
    std::vector<float> frame(1 << 16);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      frame[i] = static_cast<float>(
          std::sin(1e-4 * static_cast<double>(i) + f));
    }
    writer.Append(frame);
  }
  EXPECT_LT(writer.compressed_bytes(), writer.raw_bytes() / 2);
}

// --------------------------------------------------------------------------
// Writer lifecycle: Finish() && moves the container out; the writer must be
// poisoned afterwards instead of silently appending to an empty buffer.

TEST(Streaming, FinishPoisonsWriter) {
  Params p;
  StreamWriter<float> writer(p);
  writer.Append(MakePattern<float>(Pattern::kRamp, 256, 3));
  const ByteBuffer container = std::move(writer).Finish();
  EXPECT_GT(container.size(), 8u);
  EXPECT_THROW(writer.Append(MakePattern<float>(Pattern::kRamp, 16, 4)),
               Error);
  EXPECT_THROW((void)std::move(writer).Finish(), Error);
}

// --------------------------------------------------------------------------
// NextOrSkip: fault-tolerant reading with and without v2 resync markers.

ByteBuffer BuildContainer(bool markers,
                          std::vector<std::vector<float>>* frames) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  StreamWriterOptions opt;
  opt.resync_markers = markers;
  StreamWriter<float> writer(p, opt);
  for (int f = 0; f < 3; ++f) {
    frames->push_back(
        MakePattern<float>(Pattern::kNoisySine, 3000 + 100 * f, f));
    writer.Append(frames->back());
  }
  return std::move(writer).Finish();
}

/// Byte offset of frame `idx` (its marker, in marker containers).
std::size_t FrameStart(ByteSpan container, std::size_t idx, bool markers) {
  std::size_t pos = 8;
  for (std::size_t i = 0; i < idx; ++i) {
    ByteCursor cur(container.subspan(pos));
    if (markers) cur.Skip(8);
    const auto len = cur.Read<std::uint64_t>();
    cur.Skip(8);  // checksum
    pos += (markers ? 8 : 0) + 16 + len;
  }
  return pos;
}

TEST(Streaming, NextOrSkipCleanStreamSkipsNothing) {
  std::vector<std::vector<float>> frames;
  const ByteBuffer container = BuildContainer(false, &frames);
  StreamReader<float> reader(container);
  std::vector<float> out;
  SkipInfo info;
  int got = 0;
  while (reader.NextOrSkip(out, &info)) ++got;
  EXPECT_EQ(got, 3);
  EXPECT_EQ(info.frames_skipped, 0u);
  EXPECT_EQ(info.bytes_skipped, 0u);
}

TEST(Streaming, NextOrSkipStepsOverCorruptFrameV1) {
  std::vector<std::vector<float>> frames;
  ByteBuffer container = BuildContainer(false, &frames);
  // Flip a payload byte inside frame 1 (past its 16-byte frame header).
  const std::size_t f1 = FrameStart(container, 1, false);
  container[f1 + 16 + 40] ^= std::byte{0x10};

  StreamReader<float> reader(container);
  std::vector<float> out;
  SkipInfo info;
  ASSERT_TRUE(reader.NextOrSkip(out, &info));
  EXPECT_EQ(out.size(), frames[0].size());
  ASSERT_TRUE(reader.NextOrSkip(out, &info));
  EXPECT_EQ(out.size(), frames[2].size());
  EXPECT_FALSE(reader.NextOrSkip(out, &info));
  EXPECT_EQ(info.frames_skipped, 1u);
  EXPECT_GT(info.bytes_skipped, 0u);
  EXPECT_FALSE(info.last_error.empty());
}

TEST(Streaming, NextOrSkipAbandonsTailOnCorruptLengthV1) {
  std::vector<std::vector<float>> frames;
  ByteBuffer container = BuildContainer(false, &frames);
  // Blow up frame 1's length field: without markers there is no way to
  // find frame 2, so the remainder of the container is abandoned.
  const std::size_t f1 = FrameStart(container, 1, false);
  container[f1 + 6] = std::byte{0xff};

  StreamReader<float> reader(container);
  std::vector<float> out;
  SkipInfo info;
  ASSERT_TRUE(reader.NextOrSkip(out, &info));
  EXPECT_FALSE(reader.NextOrSkip(out, &info));
  EXPECT_EQ(info.frames_skipped, 1u);
  EXPECT_EQ(info.bytes_skipped, container.size() - f1);
}

TEST(Streaming, ResyncMarkersRecoverPastCorruptLength) {
  std::vector<std::vector<float>> frames;
  ByteBuffer container = BuildContainer(true, &frames);
  const std::size_t f1 = FrameStart(container, 1, true);
  container[f1 + 8 + 6] = std::byte{0xff};  // length field after the marker

  StreamReader<float> reader(container);
  std::vector<float> out;
  SkipInfo info;
  ASSERT_TRUE(reader.NextOrSkip(out, &info));
  EXPECT_EQ(out.size(), frames[0].size());
  // The corrupt length would have pointed past the container; the marker
  // scan resynchronizes on frame 2.
  ASSERT_TRUE(reader.NextOrSkip(out, &info));
  EXPECT_EQ(out.size(), frames[2].size());
  EXPECT_FALSE(reader.NextOrSkip(out, &info));
  EXPECT_EQ(info.frames_skipped, 1u);
}

TEST(Streaming, ResyncContainerRoundTripsWithNext) {
  std::vector<std::vector<float>> frames;
  const ByteBuffer container = BuildContainer(true, &frames);
  StreamReader<float> reader(container);
  std::vector<float> out;
  for (int f = 0; f < 3; ++f) {
    ASSERT_TRUE(reader.Next(out)) << f;
    EXPECT_TRUE(WithinBound<float>(frames[f], out, 1e-3));
  }
  EXPECT_FALSE(reader.Next(out));
}

TEST(Fnv1a64, KnownProperties) {
  EXPECT_EQ(Fnv1a64({}), 0xcbf29ce484222325ull);
  ByteBuffer a(4, std::byte{1});
  ByteBuffer b(4, std::byte{2});
  EXPECT_NE(Fnv1a64(a), Fnv1a64(b));
  EXPECT_EQ(Fnv1a64(a), Fnv1a64(a));
}

}  // namespace
}  // namespace szx
