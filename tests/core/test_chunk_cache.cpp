// Decoded-chunk LRU cache: eviction order, capacity enforcement, stats
// conservation, and a 100-seed concurrent-reader property test.
#include "core/chunk_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/container.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::Rng;

ChunkCache::Value MakeValue(std::size_t bytes, std::uint8_t fill) {
  auto buf = std::make_shared<ByteBuffer>(bytes, std::byte{fill});
  return buf;
}

ChunkKey Key(std::uint64_t entry) {
  return ChunkKey{/*stream_id=*/1, entry, /*bound_bits=*/0};
}

TEST(ChunkCache, HitMissAndLruEviction) {
  // One shard so the LRU order is globally observable.
  ChunkCache cache(300, /*shards=*/1);
  EXPECT_EQ(cache.capacity_bytes(), 300u);
  EXPECT_EQ(cache.Lookup(Key(0)), nullptr);
  cache.Insert(Key(0), MakeValue(100, 0));
  cache.Insert(Key(1), MakeValue(100, 1));
  cache.Insert(Key(2), MakeValue(100, 2));
  EXPECT_EQ(cache.SizeBytes(), 300u);
  // Touch 0 so 1 becomes the LRU victim.
  ASSERT_NE(cache.Lookup(Key(0)), nullptr);
  cache.Insert(Key(3), MakeValue(100, 3));
  EXPECT_EQ(cache.Lookup(Key(1)), nullptr);  // evicted
  ASSERT_NE(cache.Lookup(Key(0)), nullptr);
  ASSERT_NE(cache.Lookup(Key(2)), nullptr);
  ASSERT_NE(cache.Lookup(Key(3)), nullptr);
  const ChunkCacheStats s = cache.Stats();
  EXPECT_EQ(s.insertions, 4u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.misses, 2u);
}

TEST(ChunkCache, ReplaceUpdatesValueAndBytes) {
  ChunkCache cache(1000, 1);
  cache.Insert(Key(7), MakeValue(100, 0xaa));
  cache.Insert(Key(7), MakeValue(200, 0xbb));
  EXPECT_EQ(cache.SizeBytes(), 200u);
  const ChunkCache::Value v = cache.Lookup(Key(7));
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->size(), 200u);
  EXPECT_EQ((*v)[0], std::byte{0xbb});
}

TEST(ChunkCache, EvictionNeverInvalidatesHeldValues) {
  ChunkCache cache(100, 1);
  cache.Insert(Key(0), MakeValue(100, 0x11));
  const ChunkCache::Value held = cache.Lookup(Key(0));
  ASSERT_NE(held, nullptr);
  cache.Insert(Key(1), MakeValue(100, 0x22));  // evicts entry 0
  EXPECT_EQ(cache.Lookup(Key(0)), nullptr);
  // The shared_ptr keeps the evicted bytes alive for existing readers.
  EXPECT_EQ((*held)[0], std::byte{0x11});
}

TEST(ChunkCache, ZeroAndTinyCapacityStayBounded) {
  ChunkCache zero(0, 1);
  zero.Insert(Key(0), MakeValue(64, 0));
  EXPECT_EQ(zero.SizeBytes(), 0u);
  EXPECT_EQ(zero.Lookup(Key(0)), nullptr);
  // A value larger than the whole shard is evicted by its own insert: the
  // cache never holds more than capacity at rest.
  ChunkCache tiny(32, 1);
  tiny.Insert(Key(0), MakeValue(64, 0));
  EXPECT_EQ(tiny.Lookup(Key(0)), nullptr);
}

TEST(ChunkCache, KeysDifferingInAnyFieldAreDistinct) {
  ChunkCache cache(1 << 16, 4);
  const ChunkKey a{1, 2, 3};
  cache.Insert(a, MakeValue(8, 0x01));
  for (const ChunkKey other :
       {ChunkKey{9, 2, 3}, ChunkKey{1, 9, 3}, ChunkKey{1, 2, 9}}) {
    EXPECT_EQ(cache.Lookup(other), nullptr);
  }
  ASSERT_NE(cache.Lookup(a), nullptr);
  EXPECT_THROW(cache.Insert(a, nullptr), Error);
}

TEST(ChunkCache, ClearResetsResidencyNotStats) {
  ChunkCache cache(1000, 2);
  cache.Insert(Key(0), MakeValue(10, 0));
  cache.Insert(Key(1), MakeValue(10, 0));
  cache.Clear();
  EXPECT_EQ(cache.SizeBytes(), 0u);
  EXPECT_EQ(cache.Lookup(Key(0)), nullptr);
  EXPECT_EQ(cache.Stats().insertions, 2u);
}

// Satellite: 100-seed property test for eviction under concurrent readers.
//
// One container is built once; each seed picks a random capacity and shard
// count, then several reader threads issue random ROI queries through a
// shared cache.  Properties checked:
//   - every query's output is bit-identical to the full-decode reference,
//     no matter what was evicted or decoded concurrently;
//   - hit/miss counters conserve: hits + misses == total lookups, and
//     every miss corresponds to one insertion.
TEST(ChunkCacheProperty, ConcurrentReadersSeeIdenticalBytes) {
  constexpr std::uint64_t kChunk = 512;
  constexpr std::uint64_t kChunks = 64;
  const auto data =
      MakePattern<float>(Pattern::kNoisySine, kChunk * kChunks, 77);
  ContainerWriter w;
  ContainerWriter::FieldSpec spec;
  spec.name = "prop";
  spec.elements_per_timestep = data.size();
  spec.chunk_elements = kChunk;
  const std::uint32_t f = w.AddField(spec, DataType::kFloat32);
  w.AppendTimestep<float>(f, data);
  const ByteBuffer c = w.Finish();
  const std::vector<float> reference =
      ContainerReader(c).DecompressTimestep<float>(0, 0);

  constexpr int kSeeds = 100;
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 16;
  for (int seed = 0; seed < kSeeds; ++seed) {
    Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(seed));
    // Capacities from "nothing fits" through "everything fits".
    const std::size_t capacity = static_cast<std::size_t>(
        rng.Next() % (kChunks * kChunk * sizeof(float) * 2));
    const unsigned shards = 1u << (rng.Next() % 4);
    ChunkCache cache(capacity, shards);
    ContainerReader reader(c, &cache);
    std::atomic<int> mismatches{0};
    std::atomic<std::uint64_t> lookups{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng trng(static_cast<std::uint64_t>(seed) * 1000 +
                 static_cast<std::uint64_t>(t));
        std::vector<float> roi;
        for (int q = 0; q < kQueriesPerThread; ++q) {
          const std::uint64_t first = trng.Next() % data.size();
          const std::uint64_t count =
              1 + trng.Next() % std::min<std::uint64_t>(
                                    data.size() - first, 4 * kChunk);
          roi.resize(count);
          reader.DecompressRange<float>(0, 0, first, std::span<float>(roi),
                                        /*max_threads=*/1);
          const std::uint64_t c0 = first / kChunk;
          const std::uint64_t c1 = (first + count - 1) / kChunk;
          // szx-mo: test-local tally; thread.join() below publishes it.
          lookups.fetch_add(c1 - c0 + 1, std::memory_order_relaxed);
          for (std::uint64_t i = 0; i < count; ++i) {
            if (roi[i] != reference[first + i]) {
              // szx-mo: test-local tally; thread.join() publishes it.
              mismatches.fetch_add(1, std::memory_order_relaxed);
              break;
            }
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    // szx-mo: relaxed reads after join(); join() is the synchronization.
    EXPECT_EQ(mismatches.load(std::memory_order_relaxed), 0)
        << "seed=" << seed;
    const ChunkCacheStats s = cache.Stats();
    // szx-mo: relaxed read after join(); join() is the synchronization.
    EXPECT_EQ(s.hits + s.misses, lookups.load(std::memory_order_relaxed))
        << "seed=" << seed;
    EXPECT_EQ(s.insertions, s.misses) << "seed=" << seed;
    EXPECT_LE(cache.SizeBytes(), cache.capacity_bytes()) << "seed=" << seed;
    // Evicted chunks re-decode bit-identically: drain once more serially.
    std::vector<float> again(data.size());
    reader.DecompressRange<float>(0, 0, 0, std::span<float>(again), 1);
    EXPECT_EQ(again, reference) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace szx
