// Block-size auto-tuning tests (Sec. 5.3 operationalized).
#include "core/tuning.hpp"

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;

TEST(Tuning, SweepCoversAllCandidates) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 100000, 3);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  const auto sweep = SweepBlockSizes<float>(data, p);
  ASSERT_EQ(sweep.size(), 6u);
  EXPECT_EQ(sweep.front().block_size, 8u);
  EXPECT_EQ(sweep.back().block_size, 256u);
  for (const auto& c : sweep) EXPECT_GT(c.sampled_ratio, 0.0);
}

TEST(Tuning, ChoiceIsACandidate) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 100000, 5);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  const std::uint32_t cands[] = {16, 64, 224};
  const auto choice =
      ChooseBlockSize<float>(data, p, std::span<const std::uint32_t>(cands));
  EXPECT_TRUE(choice.block_size == 16 || choice.block_size == 64 ||
              choice.block_size == 224);
}

TEST(Tuning, SmoothDataPrefersLargerBlocks) {
  // The Fig. 8 result: on smooth Miranda-style data CR grows with block
  // size, so the tuner must not pick the smallest candidate.
  const data::Field f =
      data::GenerateField(data::App::kMiranda, "density", 0.3);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  const auto choice = ChooseBlockSize<float>(f.values, p);
  EXPECT_GE(choice.block_size, 32u);
}

TEST(Tuning, SampledRatioTracksFullCompression) {
  const data::Field f =
      data::GenerateField(data::App::kMiranda, "pressure", 0.3);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  const auto sweep = SweepBlockSizes<float>(f.values, p);
  for (const auto& c : sweep) {
    Params full = p;
    full.block_size = c.block_size;
    CompressionStats stats;
    (void)Compress<float>(f.values, full, &stats);  // ratio-only probe
    const double actual = stats.CompressionRatio(sizeof(float));
    EXPECT_NEAR(c.sampled_ratio, actual, actual * 0.35)
        << "block " << c.block_size;
  }
}

TEST(Tuning, SmallInputsUseWholeData) {
  const auto data = MakePattern<float>(Pattern::kRamp, 500, 1);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-2;
  const auto choice = ChooseBlockSize<float>(data, p);
  EXPECT_GT(choice.block_size, 0u);
}

TEST(Tuning, InvalidCandidateRejected) {
  const auto data = MakePattern<float>(Pattern::kRamp, 1000, 1);
  Params p;
  const std::uint32_t bad[] = {2};
  EXPECT_THROW(
      ChooseBlockSize<float>(data, p, std::span<const std::uint32_t>(bad)),
      Error);
}

TEST(Tuning, WorksForDouble) {
  const auto data = MakePattern<double>(Pattern::kNoisySine, 50000, 7);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-5;
  const auto choice = ChooseBlockSize<double>(data, p);
  EXPECT_GE(choice.block_size, kMinBlockSize);
  EXPECT_LE(choice.block_size, kMaxBlockSize);
}

}  // namespace
}  // namespace szx
