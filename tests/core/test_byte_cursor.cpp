// Unit coverage for szx::core::ByteCursor, the bounds-checked decode cursor
// every codec parses untrusted streams through (docs/static-analysis.md).
// The tests pin down the exact failure behavior: which calls throw, what the
// cursor state is afterwards, and how the plausibility cap in CheckedAlloc
// interacts with the remaining-byte count.

#include "core/byte_cursor.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace szx {
namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

ByteBuffer MakeBytes(std::size_t n) {
  ByteBuffer buf(n);
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<std::byte>(i & 0xff);
  }
  return buf;
}

TEST(ByteCursor, ReadAdvancesAndDecodesLittleEndian) {
  const ByteBuffer buf = MakeBytes(8);
  ByteCursor c{ByteSpan(buf)};
  EXPECT_EQ(c.Read<std::uint8_t>(), 0x00u);
  EXPECT_EQ(c.Read<std::uint16_t>(), 0x0201u);
  EXPECT_EQ(c.Read<std::uint32_t>(), 0x06050403u);
  EXPECT_EQ(c.position(), 7u);
  EXPECT_EQ(c.remaining(), 1u);
  EXPECT_FALSE(c.AtEnd());
  EXPECT_EQ(c.Read<std::uint8_t>(), 0x07u);
  EXPECT_TRUE(c.AtEnd());
}

TEST(ByteCursor, ReadPastEndThrowsAtEveryWidth) {
  const ByteBuffer buf = MakeBytes(3);
  ByteCursor c{ByteSpan(buf)};
  EXPECT_THROW((void)c.Read<std::uint32_t>(), Error);
  EXPECT_THROW((void)c.Read<std::uint64_t>(), Error);
  // A failed read must not move the cursor.
  EXPECT_EQ(c.position(), 0u);
  EXPECT_EQ(c.Read<std::uint16_t>(), 0x0100u);
  EXPECT_THROW((void)c.Read<std::uint16_t>(), Error);
  EXPECT_EQ(c.position(), 2u);
}

TEST(ByteCursor, EmptyStreamRejectsEveryRead) {
  ByteCursor c{ByteSpan()};
  EXPECT_TRUE(c.AtEnd());
  EXPECT_EQ(c.remaining(), 0u);
  EXPECT_THROW((void)c.Read<std::uint8_t>(), Error);
  EXPECT_THROW((void)c.Slice(1), Error);
  EXPECT_THROW(c.Skip(1), Error);
  // Zero-byte operations on an empty stream are fine.
  EXPECT_NO_THROW(c.Skip(0));
  EXPECT_EQ(c.Slice(0).size(), 0u);
  EXPECT_EQ(c.Rest().size(), 0u);
}

TEST(ByteCursor, ReadBytesNullDestOnlyForZeroLength) {
  const ByteBuffer buf = MakeBytes(4);
  ByteCursor c{ByteSpan(buf)};
  EXPECT_NO_THROW(c.ReadBytes(nullptr, 0));
  EXPECT_EQ(c.position(), 0u);
  std::array<std::byte, 4> dst{};
  c.ReadBytes(dst.data(), dst.size());
  EXPECT_EQ(dst[3], std::byte{3});
  EXPECT_TRUE(c.AtEnd());
}

TEST(ByteCursor, ReadSpanFillsTypedElements) {
  const ByteBuffer buf = MakeBytes(8);
  ByteCursor c{ByteSpan(buf)};
  std::vector<std::uint16_t> out(3);
  c.ReadSpan(std::span<std::uint16_t>(out));
  EXPECT_EQ(out[0], 0x0100u);
  EXPECT_EQ(out[2], 0x0504u);
  EXPECT_EQ(c.remaining(), 2u);
  std::vector<std::uint32_t> too_big(2);
  EXPECT_THROW((void)c.ReadSpan(std::span<std::uint32_t>(too_big)), Error);
  std::vector<std::uint32_t> empty;
  EXPECT_NO_THROW(c.ReadSpan(std::span<std::uint32_t>(empty)));
}

TEST(ByteCursor, SliceViewsWithoutCopying) {
  const ByteBuffer buf = MakeBytes(10);
  ByteCursor c{ByteSpan(buf)};
  ByteSpan head = c.Slice(4);
  ASSERT_EQ(head.size(), 4u);
  EXPECT_EQ(head.data(), buf.data());
  ByteSpan rest = c.Rest();
  EXPECT_EQ(rest.size(), 6u);
  // szx-lint: allow(ptr-arith) -- asserting the view aliases the source buffer, not indexing through it
  EXPECT_EQ(rest.data(), buf.data() + 4);
  EXPECT_TRUE(c.AtEnd());
  EXPECT_EQ(c.Rest().size(), 0u);
}

TEST(ByteCursor, SkipPastEndThrowsAndDoesNotMove) {
  const ByteBuffer buf = MakeBytes(5);
  ByteCursor c{ByteSpan(buf)};
  c.Skip(3);
  EXPECT_THROW(c.Skip(3), Error);
  EXPECT_EQ(c.position(), 3u);
  EXPECT_NO_THROW(c.Skip(2));
  EXPECT_TRUE(c.AtEnd());
}

TEST(ByteCursor, SliceArrayAndSkipArrayRefuseToWrap) {
  const ByteBuffer buf = MakeBytes(16);
  {
    ByteCursor c{ByteSpan(buf)};
    ByteSpan s = c.SliceArray(4, 4);
    EXPECT_EQ(s.size(), 16u);
  }
  {
    // count * elem_size wraps uint64; the unchecked product would be tiny.
    ByteCursor c{ByteSpan(buf)};
    EXPECT_THROW((void)c.SliceArray(kU64Max / 2 + 1, 4), Error);
    EXPECT_THROW(c.SkipArray(kU64Max / 2 + 1, 4), Error);
    EXPECT_EQ(c.position(), 0u);
  }
  {
    // In-range product that still exceeds the stream must also throw.
    ByteCursor c{ByteSpan(buf)};
    EXPECT_THROW((void)c.SliceArray(5, 4), Error);
    EXPECT_NO_THROW(c.SkipArray(0, 8));
  }
}

TEST(ByteCursor, CheckedAllocAcceptsPlausibleCounts) {
  const ByteBuffer buf = MakeBytes(64);
  ByteCursor c{ByteSpan(buf)};
  // Default cap: at most one element per remaining byte.
  EXPECT_EQ(c.CheckedAlloc(64, sizeof(float)), 64u);
  EXPECT_EQ(c.CheckedAlloc(1, sizeof(double)), 1u);
  EXPECT_EQ(c.CheckedAlloc(0, sizeof(float)), 0u);
  EXPECT_THROW((void)c.CheckedAlloc(65, sizeof(float)), Error);
}

TEST(ByteCursor, CheckedAllocHonorsExpansionCap) {
  const ByteBuffer buf = MakeBytes(8);
  ByteCursor c{ByteSpan(buf)};
  // 8 bytes at 8 elems/byte (1-bit-per-symbol entropy floor) -> up to 64.
  EXPECT_EQ(c.CheckedAlloc(64, 1, 8), 64u);
  EXPECT_THROW((void)c.CheckedAlloc(65, 1, 8), Error);
  // LZ-style cap of 255 from byte-long match runs.
  EXPECT_EQ(c.CheckedAlloc(8u * 255u, 1, 255), 8u * 255u);
  EXPECT_THROW((void)c.CheckedAlloc(8u * 255u + 1, 1, 255), Error);
}

TEST(ByteCursor, CheckedAllocRejectsAnythingOnEmptyRemainder) {
  const ByteBuffer buf = MakeBytes(4);
  ByteCursor c{ByteSpan(buf)};
  c.Skip(4);
  EXPECT_THROW((void)c.CheckedAlloc(1, 1, kU64Max), Error);
  EXPECT_EQ(c.CheckedAlloc(0, 1), 0u);
}

TEST(ByteCursor, CheckedAllocCapCannotBeDefeatedByOverflow) {
  const ByteBuffer buf = MakeBytes(16);
  ByteCursor c{ByteSpan(buf)};
  // A count chosen so count * elem_size wraps to something small must still
  // be rejected -- either by the plausibility cap or the byte-size check.
  EXPECT_THROW((void)c.CheckedAlloc(kU64Max, sizeof(float)), Error);
  // Plausible count whose byte size wraps: 16 elements of huge elem_size.
  EXPECT_THROW((void)c.CheckedAlloc(16, kU64Max / 8), Error);
}

TEST(ByteCursor, CheckedAllocIsPositionDependent) {
  const ByteBuffer buf = MakeBytes(32);
  ByteCursor c{ByteSpan(buf)};
  EXPECT_EQ(c.CheckedAlloc(32, 1), 32u);
  c.Skip(16);
  EXPECT_THROW((void)c.CheckedAlloc(32, 1), Error);
  EXPECT_EQ(c.CheckedAlloc(16, 1), 16u);
}

TEST(CheckedMul, ExactBoundary) {
  EXPECT_EQ(CheckedMul(0, kU64Max), 0u);
  EXPECT_EQ(CheckedMul(kU64Max, 1), kU64Max);
  EXPECT_EQ(CheckedMul(1u << 16, 1u << 16), std::uint64_t{1} << 32);
  EXPECT_THROW(CheckedMul(kU64Max / 2 + 1, 2), Error);
  EXPECT_THROW(CheckedMul(kU64Max, kU64Max), Error);
  // Largest non-overflowing product with a power-of-two factor.
  EXPECT_EQ(CheckedMul(kU64Max / 2, 2), kU64Max - 1);
}

TEST(CheckedNarrow, ValuePreservingAcrossWidthsAndSigns) {
  EXPECT_EQ(CheckedNarrow<std::uint8_t>(std::uint64_t{255}), 255u);
  EXPECT_THROW(CheckedNarrow<std::uint8_t>(std::uint64_t{256}), Error);
  EXPECT_EQ(CheckedNarrow<std::uint16_t>(std::uint64_t{65535}), 65535u);
  EXPECT_THROW(CheckedNarrow<std::uint16_t>(std::uint64_t{65536}), Error);
  EXPECT_EQ(CheckedNarrow<std::uint32_t>(std::uint64_t{0xffffffffu}),
            0xffffffffu);
  EXPECT_THROW(CheckedNarrow<std::uint32_t>(std::uint64_t{1} << 32), Error);
  // Negative values must not smuggle through as large unsigned numbers.
  EXPECT_THROW(CheckedNarrow<std::uint32_t>(std::int64_t{-1}), Error);
  EXPECT_THROW(CheckedNarrow<std::uint64_t>(std::int32_t{-5}), Error);
  // Signed-to-signed narrowing keeps in-range values, rejects the rest.
  EXPECT_EQ(CheckedNarrow<std::int8_t>(std::int32_t{-128}), -128);
  EXPECT_THROW(CheckedNarrow<std::int8_t>(std::int32_t{-129}), Error);
  EXPECT_THROW(CheckedNarrow<std::int8_t>(std::int32_t{128}), Error);
  // Widening and same-width calls are identity.
  EXPECT_EQ(CheckedNarrow<std::uint64_t>(std::uint32_t{7}), 7u);
  EXPECT_EQ(CheckedNarrow<std::uint64_t>(kU64Max), kU64Max);
}

TEST(ByteCursor, TruncationErrorMessageNamesTheCounts) {
  const ByteBuffer buf = MakeBytes(2);
  ByteCursor c{ByteSpan(buf)};
  try {
    (void)c.Slice(9);
    FAIL() << "Slice past end must throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("need 9 bytes, have 2"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace szx
