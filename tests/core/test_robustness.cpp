// Fuzz-style robustness: systematic corruption and truncation sweeps over
// real compressed streams.  The decoder must never crash, hang, or read
// out of bounds -- every outcome is either a clean szx::Error or a decode
// (possibly of corrupt data; the core format trades checksums for speed,
// the streaming/hybrid layers add integrity).
#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "core/omp_codec.hpp"
#include "cusim/cusim_codec.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::Rng;

ByteBuffer SampleStream(CommitSolution sol = CommitSolution::kC) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 20000, 42);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  p.solution = sol;
  return Compress<float>(data, p);
}

// Every decode either throws szx::Error or succeeds; nothing else.  And a
// decode that succeeds must hand back exactly the element count the header
// declares -- a mismatch means the decoder dropped or invented elements.
template <typename Decode>
void MustNotCrash(ByteSpan stream, Decode&& decode) {
  std::size_t decoded = 0;
  try {
    decoded = decode(stream);
  } catch (const Error&) {
    return;  // Expected for detectable corruption.
  }
  ASSERT_EQ(decoded, PeekHeader(stream).num_elements);
}

TEST(Robustness, TruncationSweepSerial) {
  const ByteBuffer stream = SampleStream();
  // Every prefix length in a coarse sweep plus all near-boundary lengths.
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < stream.size(); n += 97) lengths.push_back(n);
  for (std::size_t n = 0; n < 80 && n < stream.size(); ++n) {
    lengths.push_back(n);
    lengths.push_back(stream.size() - 1 - n);
  }
  for (const std::size_t n : lengths) {
    MustNotCrash(ByteSpan(stream.data(), n),
                 [](ByteSpan s) { return Decompress<float>(s).size(); });
  }
}

TEST(Robustness, SingleByteFlipSweep) {
  const ByteBuffer original = SampleStream();
  Rng rng(7);
  // Flip every header byte and a sample of body bytes.
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < sizeof(Header); ++i) positions.push_back(i);
  for (int k = 0; k < 300; ++k) {
    positions.push_back(sizeof(Header) +
                        rng.Next() % (original.size() - sizeof(Header)));
  }
  for (const std::size_t pos : positions) {
    for (const std::uint8_t flip : {0x01, 0x80, 0xff}) {
      ByteBuffer bad = original;
      bad[pos] ^= std::byte{flip};
      MustNotCrash(bad, [](ByteSpan s) { return Decompress<float>(s).size(); });
      MustNotCrash(bad, [](ByteSpan s) { return DecompressOmp<float>(s, 2).size(); });
      MustNotCrash(bad, [](ByteSpan s) { return cusim::DecompressCuda<float>(s).size(); });
    }
  }
}

TEST(Robustness, FlipSweepSolutionsAB) {
  for (const CommitSolution sol : {CommitSolution::kA, CommitSolution::kB}) {
    const ByteBuffer original = SampleStream(sol);
    Rng rng(9);
    for (int k = 0; k < 200; ++k) {
      ByteBuffer bad = original;
      bad[rng.Next() % bad.size()] ^= std::byte{0x42};
      MustNotCrash(bad, [](ByteSpan s) { return Decompress<float>(s).size(); });
    }
  }
}

TEST(Robustness, RandomGarbageInputs) {
  Rng rng(11);
  for (int k = 0; k < 200; ++k) {
    ByteBuffer junk(rng.Next() % 4096);
    for (auto& b : junk) {
      b = std::byte{static_cast<std::uint8_t>(rng.Next() & 0xff)};
    }
    MustNotCrash(junk, [](ByteSpan s) { return Decompress<float>(s).size(); });
    MustNotCrash(junk, [](ByteSpan s) { return Decompress<double>(s).size(); });
  }
}

TEST(Robustness, GarbageWithValidMagic) {
  // Valid magic + random rest exercises the header validators.
  Rng rng(13);
  for (int k = 0; k < 200; ++k) {
    ByteBuffer junk(sizeof(Header) + rng.Next() % 2048);
    for (auto& b : junk) {
      b = std::byte{static_cast<std::uint8_t>(rng.Next() & 0xff)};
    }
    junk[0] = std::byte{'S'};
    junk[1] = std::byte{'Z'};
    junk[2] = std::byte{'X'};
    junk[3] = std::byte{'1'};
    junk[4] = std::byte{1};  // version
    MustNotCrash(junk, [](ByteSpan s) { return Decompress<float>(s).size(); });
    MustNotCrash(junk, [](ByteSpan s) { return DecompressOmp<float>(s, 2).size(); });
  }
}

TEST(Robustness, SwappedSections) {
  // Splice the payload of one stream onto the metadata of another.
  const auto a = SampleStream();
  const auto data2 = MakePattern<float>(Pattern::kUniformNoise, 20000, 99);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-2;
  const auto b = Compress<float>(data2, p);
  ByteBuffer spliced(a.begin(), a.begin() + a.size() / 2);
  spliced.insert(spliced.end(), b.begin() + b.size() / 2, b.end());
  MustNotCrash(spliced, [](ByteSpan s) { return Decompress<float>(s).size(); });
}

}  // namespace
}  // namespace szx
