// Format v2 integrity footer: v1/v2 twin relation, footer discovery, and
// encoder byte-identity (serial / OMP / cusim all append the same footer).
#include "core/integrity.hpp"

#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "core/omp_codec.hpp"
#include "cusim/cusim_codec.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;

template <typename T>
Params BaseParams() {
  Params p;
  p.error_bound = 1e-3;
  p.mode = ErrorBoundMode::kAbsolute;
  p.block_size = 64;
  return p;
}

TEST(Integrity, V2IsV1PlusPatchedBytesAndFooter) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 5000);
  Params p = BaseParams<float>();
  const ByteBuffer v1 = Compress<float>(data, p);
  p.integrity = true;
  const ByteBuffer v2 = Compress<float>(data, p);

  const Header h1 = ParseHeader(v1);
  const std::uint32_t chunks = IntegrityChunkCount(h1);
  ASSERT_EQ(v2.size(), v1.size() + IntegrityFooterBytes(chunks));
  for (std::size_t i = 0; i < v1.size(); ++i) {
    if (i == 4 || i == 8) continue;  // version byte, flags byte
    ASSERT_EQ(v1[i], v2[i]) << "body byte " << i << " differs";
  }
  EXPECT_EQ(std::to_integer<int>(v2[4]), kFormatVersionIntegrity);
  EXPECT_EQ(std::to_integer<int>(v2[8]) & kFlagIntegrity, kFlagIntegrity);

  const Header h2 = ParseHeader(v2);
  EXPECT_EQ(h2.version, kFormatVersionIntegrity);
  EXPECT_EQ(h2.flags & kFlagIntegrity, kFlagIntegrity);
}

TEST(Integrity, FindFooterOnV2AndNotOnV1) {
  const auto data = MakePattern<double>(Pattern::kSmoothSine, 3000);
  Params p = BaseParams<double>();
  const ByteBuffer v1 = Compress<double>(data, p);
  p.integrity = true;
  const ByteBuffer v2 = Compress<double>(data, p);

  EXPECT_FALSE(FindIntegrityFooter(v1).has_value());
  const auto fv = FindIntegrityFooter(v2);
  ASSERT_TRUE(fv.has_value());
  EXPECT_EQ(fv->chunk_count, IntegrityChunkCount(ParseHeader(v2)));
  EXPECT_EQ(fv->footer_offset, v1.size());
  EXPECT_EQ(fv->header_fnv,
            Fnv1a64(ByteSpan(v2).first(sizeof(Header))));

  // Any truncation of the tail makes the footer undiscoverable (it is
  // located from the end), and a flipped tail byte fails its checksum.
  ByteBuffer cut(v2.begin(), v2.end() - 1);
  EXPECT_FALSE(FindIntegrityFooter(cut).has_value());
  ByteBuffer flipped = v2;
  flipped[flipped.size() - 20] ^= std::byte{0x40};
  EXPECT_FALSE(FindIntegrityFooter(flipped).has_value());
}

TEST(Integrity, V2RoundTripsThroughAllDecoders) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 4096);
  Params p = BaseParams<float>();
  const ByteBuffer v1 = Compress<float>(data, p);
  p.integrity = true;
  const ByteBuffer v2 = Compress<float>(data, p);

  const auto serial = Decompress<float>(v2);
  const auto ref = Decompress<float>(v1);
  ASSERT_EQ(serial, ref);
  EXPECT_EQ(DecompressOmp<float>(v2, 4), ref);
  EXPECT_EQ(cusim::DecompressCuda<float>(v2), ref);
}

TEST(Integrity, EncodersProduceIdenticalV2Streams) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 10000);
  Params p = BaseParams<float>();
  p.integrity = true;
  const ByteBuffer serial = Compress<float>(data, p);
  const ByteBuffer omp = CompressOmp<float>(data, p, nullptr, 4);
  const ByteBuffer cu = cusim::CompressCuda<float>(data, p);
  EXPECT_EQ(serial, omp);
  EXPECT_EQ(serial, cu);
}

TEST(Integrity, RawPassthroughGetsSingleChunkFooter) {
  // Incompressible noise under a tiny bound forces raw passthrough.
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 2000);
  Params p = BaseParams<float>();
  p.error_bound = 1e-12;
  p.integrity = true;
  const ByteBuffer v2 = Compress<float>(data, p);
  const Header h = ParseHeader(v2);
  ASSERT_NE(h.flags & kFlagRawPassthrough, 0);
  const auto fv = FindIntegrityFooter(v2);
  ASSERT_TRUE(fv.has_value());
  EXPECT_EQ(fv->chunk_count, 1u);
  EXPECT_EQ(Decompress<float>(v2), data);
}

TEST(Integrity, EmptyInputV2RoundTrips) {
  Params p = BaseParams<double>();
  p.integrity = true;
  const ByteBuffer v2 = Compress<double>(std::span<const double>{}, p);
  ASSERT_TRUE(FindIntegrityFooter(v2).has_value());
  EXPECT_TRUE(Decompress<double>(v2).empty());
}

TEST(Integrity, AppendFooterTwiceThrows) {
  const auto data = MakePattern<float>(Pattern::kRamp, 1000);
  Params p = BaseParams<float>();
  p.integrity = true;
  ByteBuffer v2 = Compress<float>(data, p);
  EXPECT_THROW(AppendIntegrityFooter(v2), Error);
}

TEST(Integrity, ParseHeaderRejectsInconsistentVersionFlag) {
  const auto data = MakePattern<float>(Pattern::kRamp, 1000);
  Params p = BaseParams<float>();
  const ByteBuffer v1 = Compress<float>(data, p);

  // v2 version byte without the integrity flag.
  ByteBuffer forged = v1;
  forged[4] = std::byte{kFormatVersionIntegrity};
  EXPECT_THROW(ParseHeader(forged), Error);

  // v1 version byte with the integrity flag set.
  forged = v1;
  forged[8] |= std::byte{kFlagIntegrity};
  EXPECT_THROW(ParseHeader(forged), Error);

  // Unknown flag bits are rejected outright.
  forged = v1;
  forged[8] |= std::byte{0x80};
  EXPECT_THROW(ParseHeader(forged), Error);
}

TEST(Integrity, ChunkCountScalesAndIsBounded) {
  Header h{};
  h.block_size = 64;
  h.num_elements = 0;
  h.num_blocks = 0;
  EXPECT_EQ(IntegrityChunkCount(h), 1u);
  h.num_elements = 64 * 640;
  h.num_blocks = 640;
  EXPECT_EQ(IntegrityChunkCount(h), 10u);
  h.num_elements = 64 * 100;
  h.num_blocks = 100;
  EXPECT_EQ(IntegrityChunkCount(h), 1u);
}

}  // namespace
}  // namespace szx
