// Format-v3 container: round trips, O(1) seeks, ROI-equals-full-decode,
// forged-directory rejection, and cache-backed repeat queries.
#include "core/container.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>

#include "core/compressor.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::Rng;
using testing::WithinBound;

/// One-field helper: n elements of `pattern` packed as `timesteps`
/// timesteps with `chunk_elements`-sized chunks.
template <typename T>
ByteBuffer PackOneField(std::span<const T> data, std::uint64_t timesteps,
                        std::uint64_t chunk_elements, Params params = {},
                        const std::string& name = "field0") {
  ContainerWriter w;
  ContainerWriter::FieldSpec spec;
  spec.name = name;
  spec.params = params;
  spec.elements_per_timestep = data.size();
  spec.chunk_elements = chunk_elements;
  const std::uint32_t f =
      w.AddField(spec, std::is_same_v<T, float> ? DataType::kFloat32
                                                : DataType::kFloat64);
  for (std::uint64_t t = 0; t < timesteps; ++t) {
    w.AppendTimestep<T>(f, data);
  }
  return w.Finish();
}

TEST(Container, RoundTripWithinBound) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 30000, 11);
  Params p;
  const ByteBuffer c = PackOneField<float>(data, 1, 4096, p);
  ContainerReader r(c);
  ASSERT_EQ(r.num_fields(), 1u);
  EXPECT_EQ(r.field(0).name, "field0");
  EXPECT_EQ(r.field(0).chunks_per_timestep, 8u);
  EXPECT_EQ(r.num_entries(), 8u);
  const auto out = r.DecompressTimestep<float>(0, 0);
  ASSERT_EQ(out.size(), data.size());
  // The writer resolves the VR-relative bound over the whole timestep, so
  // the chunked encode enforces the same absolute bound a single-stream
  // compression would.
  const double bound = ResolveAbsoluteBound<float>(data, p);
  EXPECT_TRUE(WithinBound<float>(data, out, bound));
}

TEST(Container, RoiMatchesFullDecodeSlice) {
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 20000, 3);
  const ByteBuffer c = PackOneField<float>(data, 1, 1024);
  ContainerReader r(c);
  const auto full = r.DecompressTimestep<float>(0, 0);
  Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    const std::uint64_t first = rng.Next() % data.size();
    const std::uint64_t count =
        1 + rng.Next() % (data.size() - first);
    std::vector<float> roi(count);
    r.DecompressRange<float>(0, 0, first, std::span<float>(roi),
                             1 + static_cast<int>(iter % 4));
    for (std::uint64_t i = 0; i < count; ++i) {
      ASSERT_EQ(roi[i], full[first + i])
          << "first=" << first << " count=" << count << " i=" << i;
    }
  }
  // Chunk-boundary straddles and single elements.
  for (const std::uint64_t first : {0ull, 1023ull, 1024ull, 10239ull}) {
    std::vector<float> roi(2);
    r.DecompressRange<float>(0, 0, first, std::span<float>(roi));
    EXPECT_EQ(roi[0], full[first]);
    EXPECT_EQ(roi[1], full[first + 1]);
  }
}

TEST(Container, MultiFieldMultiTimestepSeeks) {
  const auto f32 = MakePattern<float>(Pattern::kSmoothSine, 9000, 5);
  const auto f64 = MakePattern<double>(Pattern::kRamp, 5000, 6);
  ContainerWriter w;
  ContainerWriter::FieldSpec a;
  a.name = "temperature";
  a.elements_per_timestep = f32.size();
  a.chunk_elements = 2048;
  ContainerWriter::FieldSpec b;
  b.name = "pressure";
  b.elements_per_timestep = f64.size();
  b.chunk_elements = 1024;
  b.params.error_bound = 1e-4;
  const std::uint32_t fa = w.AddField(a, DataType::kFloat32);
  const std::uint32_t fb = w.AddField(b, DataType::kFloat64);
  std::vector<float> f32_t1(f32);
  for (auto& v : f32_t1) v += 1.5f;
  w.AppendTimestep<float>(fa, f32);
  w.AppendTimestep<float>(fa, f32_t1);
  w.AppendTimestep<double>(fb, f64);
  const ByteBuffer c = w.Finish();

  ContainerReader r(c);
  ASSERT_EQ(r.num_fields(), 2u);
  EXPECT_EQ(r.FindField("pressure"), std::optional<std::uint32_t>(fb));
  EXPECT_EQ(r.FindField("absent"), std::nullopt);
  EXPECT_EQ(r.field(fa).timesteps, 2u);
  EXPECT_EQ(r.field(fb).timesteps, 1u);
  // O(1) seek arithmetic: entries are field-contiguous, timestep-major.
  EXPECT_EQ(r.EntryIndex(fa, 0, 0), 0u);
  EXPECT_EQ(r.EntryIndex(fa, 1, 2), r.field(fa).chunks_per_timestep + 2);
  EXPECT_EQ(r.EntryIndex(fb, 0, 0),
            2 * r.field(fa).chunks_per_timestep);
  EXPECT_THROW((void)r.EntryIndex(fa, 2, 0), Error);
  EXPECT_THROW((void)r.EntryIndex(2, 0, 0), Error);
  // Every chunk verifies and both timesteps of field a decode distinctly.
  for (std::uint64_t e = 0; e < r.num_entries(); ++e) {
    EXPECT_TRUE(r.VerifyChunk(e));
  }
  const auto t0 = r.DecompressTimestep<float>(fa, 0);
  const auto t1 = r.DecompressTimestep<float>(fa, 1);
  EXPECT_NE(t0, t1);
  EXPECT_TRUE(WithinBound<float>(f32, t0, 0.2));
  const auto p0 = r.DecompressTimestep<double>(fb, 0);
  EXPECT_TRUE(WithinBound<double>(f64, p0, 0.01));
  // dtype mismatch is rejected.
  EXPECT_THROW((void)r.DecompressTimestep<double>(fa, 0), Error);
}

TEST(Container, RangeValidationAndOverflow) {
  const auto data = MakePattern<float>(Pattern::kRamp, 5000, 2);
  const ByteBuffer c = PackOneField<float>(data, 1, 1024);
  ContainerReader r(c);
  std::vector<float> out(4);
  // In-range but past the end.
  EXPECT_THROW(
      r.DecompressRange<float>(0, 0, 4997, std::span<float>(out)), Error);
  // first + count wraps past UINT64_MAX: CheckedAdd must refuse before any
  // chunk arithmetic sees the inconsistent end position.
  EXPECT_THROW(r.DecompressRange<float>(0, 0, UINT64_MAX - 2,
                                        std::span<float>(out)),
               Error);
  // Bad timestep / field.
  EXPECT_THROW(
      r.DecompressRange<float>(0, 1, 0, std::span<float>(out)), Error);
  EXPECT_THROW(
      r.DecompressRange<float>(1, 0, 0, std::span<float>(out)), Error);
  // Zero-length range is a no-op.
  r.DecompressRange<float>(0, 0, 5000, std::span<float>());
}

TEST(Container, ForgedContainersRejected) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 4000, 4);
  const ByteBuffer good = PackOneField<float>(data, 1, 1024);
  ASSERT_TRUE(IsContainer(good));

  {  // Bad magic.
    ByteBuffer bad = good;
    bad[0] = std::byte{'X'};
    EXPECT_FALSE(IsContainer(bad));
    EXPECT_THROW(ContainerReader r(bad), Error);
  }
  {  // Unsupported version.
    ByteBuffer bad = good;
    bad[4] = std::byte{9};
    EXPECT_THROW(ContainerReader r(bad), Error);
  }
  {  // Truncated tail (directory trailer gone).
    ByteBuffer bad(good.begin(), good.end() - 1);
    EXPECT_THROW(ContainerReader r(bad), Error);
  }
  {  // Any flipped directory byte must fail the trailer checksum.
    ByteBuffer bad = good;
    const std::size_t dir_byte = bad.size() - kDirectoryTailBytes - 3;
    bad[dir_byte] ^= std::byte{0x40};
    EXPECT_THROW(ContainerReader r(bad), Error);
  }
  {  // Shorter than a header.
    ByteBuffer bad(good.begin(), good.begin() + 10);
    EXPECT_THROW(ContainerReader r(bad), Error);
  }
}

TEST(Container, DamagedChunkQuarantinedToItsRange) {
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 8192, 8);
  ByteBuffer c = PackOneField<float>(data, 1, 2048);
  ContainerReader clean(c);
  const auto full = clean.DecompressTimestep<float>(0, 0);
  // Flip one byte inside chunk 1's stream (the payload region).
  const std::uint64_t victim = clean.EntryIndex(0, 0, 1);
  const std::uint64_t off = clean.entry(victim).offset +
                            clean.entry(victim).bytes / 2;
  c[static_cast<std::size_t>(off)] ^= std::byte{0x10};
  ContainerReader damaged(c);
  EXPECT_FALSE(damaged.VerifyChunk(victim));
  EXPECT_TRUE(damaged.VerifyChunk(clean.EntryIndex(0, 0, 0)));
  // A range inside the damaged chunk throws...
  std::vector<float> roi(16);
  EXPECT_THROW(
      damaged.DecompressRange<float>(0, 0, 3000, std::span<float>(roi)),
      Error);
  // ...while ranges over the other chunks still decode bit-identically.
  std::vector<float> ok(2048);
  damaged.DecompressRange<float>(0, 0, 0, std::span<float>(ok));
  for (std::size_t i = 0; i < ok.size(); ++i) {
    ASSERT_EQ(ok[i], full[i]);
  }
  damaged.DecompressRange<float>(0, 0, 4096, std::span<float>(ok));
  for (std::size_t i = 0; i < ok.size(); ++i) {
    ASSERT_EQ(ok[i], full[4096 + i]);
  }
}

TEST(Container, CachedQueriesBitIdenticalAndCounted) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 16384, 21);
  const ByteBuffer c = PackOneField<float>(data, 1, 2048);
  ChunkCache cache(1u << 20, 4);
  ContainerReader r(c, &cache);
  EXPECT_NE(r.stream_id(), 0u);
  const auto full = r.DecompressTimestep<float>(0, 0);  // 8 cold misses
  ChunkCacheStats s = cache.Stats();
  EXPECT_EQ(s.misses, 8u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.insertions, 8u);
  const auto warm = r.DecompressTimestep<float>(0, 0);  // 8 warm hits
  s = cache.Stats();
  EXPECT_EQ(s.misses, 8u);
  EXPECT_EQ(s.hits, 8u);
  EXPECT_EQ(warm, full);
  // Partial ROI out of the cache is still bit-identical to the slice.
  std::vector<float> roi(3000);
  r.DecompressRange<float>(0, 0, 1000, std::span<float>(roi));
  for (std::size_t i = 0; i < roi.size(); ++i) {
    ASSERT_EQ(roi[i], full[1000 + i]);
  }
  // A second reader over the same bytes has its own stream id: no aliasing.
  ContainerReader r2(c, &cache);
  EXPECT_NE(r2.stream_id(), r.stream_id());
  const auto other = r2.DecompressTimestep<float>(0, 0);
  EXPECT_EQ(other, full);
  // The ROI over chunks 0..1 hit the warm cache; only r2's 8 chunks miss.
  EXPECT_EQ(cache.Stats().misses, 8u + 8u);
  EXPECT_EQ(cache.Stats().hits, 8u + 2u);
}

TEST(Container, IntegrityChunksCarryFootersAndMixedScalesSurvive) {
  // Mixed-scales data forces raw-passthrough chunks; integrity params make
  // every chunk a v2 stream.  Both must round-trip through the container.
  const auto data = MakePattern<float>(Pattern::kMixedScales, 6000, 13);
  Params p;
  p.integrity = true;
  const ByteBuffer c = PackOneField<float>(data, 1, 1024, p);
  ContainerReader r(c);
  const Header h = PeekHeader(r.ChunkStream(0));
  EXPECT_EQ(h.version, kFormatVersionIntegrity);
  const auto out = r.DecompressTimestep<float>(0, 0);
  const double bound = ResolveAbsoluteBound<float>(data, p);
  EXPECT_TRUE(WithinBound<float>(data, out, bound));
}

TEST(Container, WriterValidation) {
  ContainerWriter w;
  ContainerWriter::FieldSpec spec;
  spec.name = "f";
  spec.elements_per_timestep = 100;
  const std::uint32_t f = w.AddField(spec, DataType::kFloat32);
  // Duplicate name.
  EXPECT_THROW((void)w.AddField(spec, DataType::kFloat32), Error);
  // Empty name / zero elements.
  ContainerWriter::FieldSpec bad = spec;
  bad.name = "";
  EXPECT_THROW((void)w.AddField(bad, DataType::kFloat32), Error);
  bad.name = "g";
  bad.elements_per_timestep = 0;
  EXPECT_THROW((void)w.AddField(bad, DataType::kFloat32), Error);
  // Wrong element count / dtype for AppendTimestep.
  std::vector<float> data(50, 1.0f);
  EXPECT_THROW(w.AppendTimestep<float>(f, data), Error);
  std::vector<double> d64(100, 1.0);
  EXPECT_THROW(w.AppendTimestep<double>(f, d64), Error);
  data.resize(100, 1.0f);
  w.AppendTimestep<float>(f, data);
  const ByteBuffer c = w.Finish();
  // Spent writer refuses further work.
  EXPECT_THROW(w.AppendTimestep<float>(f, data), Error);
  EXPECT_THROW((void)w.Finish(), Error);
  ContainerReader r(c);
  EXPECT_EQ(r.field(0).timesteps, 1u);
}

TEST(Container, EmptyContainerRoundTrips) {
  ContainerWriter w;
  const ByteBuffer c = w.Finish();
  ContainerReader r(c);
  EXPECT_EQ(r.num_fields(), 0u);
  EXPECT_EQ(r.num_entries(), 0u);
}

}  // namespace
}  // namespace szx
