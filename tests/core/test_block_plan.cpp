// Unit tests of the shared per-block classification (block_plan.hpp) --
// the single decision point all three compressors route through.
#include "core/block_plan.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;

template <typename T>
BlockStats<T> StatsOf(std::span<const T> block) {
  return ComputeBlockStatsScalar<T>(block);
}

TEST(BlockPlan, ConstantWhenRadiusWithinBound) {
  const std::vector<float> block = {1.0f, 1.0005f, 0.9995f, 1.0f};
  const auto st = StatsOf<float>(block);
  const auto d = DecideBlock<float>(block, st, ErrorBoundMode::kAbsolute,
                                    1e-3, 1e-3, BoundExponent(1e-3));
  EXPECT_TRUE(d.is_constant);
  EXPECT_FLOAT_EQ(d.mu, 1.0f);
}

TEST(BlockPlan, NonConstantWhenRadiusExceedsBound) {
  const std::vector<float> block = {1.0f, 1.5f, 0.5f, 1.0f};
  const auto st = StatsOf<float>(block);
  const auto d = DecideBlock<float>(block, st, ErrorBoundMode::kAbsolute,
                                    1e-3, 1e-3, BoundExponent(1e-3));
  EXPECT_FALSE(d.is_constant);
  EXPECT_FALSE(d.is_lossless);
  EXPECT_GE(d.plan.req_length, FloatTraits<float>::kMinReqLength);
}

TEST(BlockPlan, LosslessOnNonFinite) {
  std::vector<float> block = {1.0f, 2.0f, 3.0f, 4.0f};
  block[2] = std::numeric_limits<float>::quiet_NaN();
  const auto st = StatsOf<float>(block);
  const auto d = DecideBlock<float>(block, st, ErrorBoundMode::kAbsolute,
                                    1e-3, 1e-3, BoundExponent(1e-3));
  EXPECT_FALSE(d.is_constant);
  EXPECT_TRUE(d.is_lossless);
  EXPECT_EQ(d.mu, 0.0f);
  EXPECT_EQ(d.plan.req_length, FloatTraits<float>::kTotalBits);
}

TEST(BlockPlan, LosslessWhenBoundBelowUlp) {
  // Bound far below one ULP of the values: truncation cannot deliver it.
  const std::vector<float> block = {1e8f, 1.0000001e8f, 1.0000002e8f,
                                    9.9999f * 1e7f};
  const auto st = StatsOf<float>(block);
  const auto d = DecideBlock<float>(block, st, ErrorBoundMode::kAbsolute,
                                    1e-8, 1e-8, BoundExponent(1e-8));
  EXPECT_FALSE(d.is_constant);
  EXPECT_TRUE(d.is_lossless);
}

TEST(BlockPlan, PointwiseRelativeUsesBlockMinAbs) {
  // A block far from zero gets a generous per-block bound; the same shape
  // near zero gets a tight one.
  const std::vector<float> far = {1000.0f, 1000.4f, 999.6f, 1000.0f};
  const std::vector<float> near = {1.0f, 1.4f, 0.6f, 1.0f};
  const auto d_far = DecideBlock<float>(far, StatsOf<float>(far),
                                        ErrorBoundMode::kPointwiseRelative,
                                        1e-3, 0.0, kLosslessEbExpo);
  const auto d_near = DecideBlock<float>(near, StatsOf<float>(near),
                                         ErrorBoundMode::kPointwiseRelative,
                                         1e-3, 0.0, kLosslessEbExpo);
  // far: bound ~ 1.0 > radius 0.4 -> constant.  near: bound ~ 6e-4 <<
  // radius 0.4 -> truncated.
  EXPECT_TRUE(d_far.is_constant);
  EXPECT_FALSE(d_near.is_constant);
}

TEST(BlockPlan, PointwiseRelativeZeroInBlockForcesLossless) {
  const std::vector<float> block = {0.0f, 1.0f, 2.0f, 3.0f};
  const auto d = DecideBlock<float>(block, StatsOf<float>(block),
                                    ErrorBoundMode::kPointwiseRelative,
                                    1e-2, 0.0, kLosslessEbExpo);
  EXPECT_FALSE(d.is_constant);
  EXPECT_TRUE(d.is_lossless);
}

TEST(BlockPlan, BoundExponentSentinel) {
  EXPECT_EQ(BoundExponent(0.0), kLosslessEbExpo);
  EXPECT_EQ(BoundExponent(1.0), 0);
  EXPECT_EQ(BoundExponent(0.75), -1);
}

TEST(BlockPlan, DoubleTypeDecisions) {
  const auto data = MakePattern<double>(Pattern::kNoisySine, 128, 3);
  const auto st = StatsOf<double>(data);
  const auto d =
      DecideBlock<double>(data, st, ErrorBoundMode::kAbsolute, 1e-6, 1e-6,
                          BoundExponent(1e-6));
  EXPECT_FALSE(d.is_constant);
  EXPECT_FALSE(d.is_lossless);
  EXPECT_LE(d.plan.req_length, FloatTraits<double>::kTotalBits);
}

}  // namespace
}  // namespace szx
