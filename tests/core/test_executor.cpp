// Executor unit + property battery (ISSUE 6 satellite):
//   - task-count conservation under 100-seed randomized job graphs,
//   - exception propagation with every task still executing,
//   - nested ParallelFor degrading to inline execution,
//   - graceful shutdown while batches are in flight,
//   - steal-race stress across 2..8 workers (also run under TSan),
//   - a counting-allocator proof that steady-state submission is
//     zero-heap-alloc (this binary owns the global operator new, so it must
//     stay separate from other suites, same as test_arena).
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

// GCC's -Wmismatched-new-delete pairs the inlined free() inside the
// counting operator delete below with calls to the counting operator new
// it chose not to inline, and reports a mismatch.  Both funnel through
// malloc/free, so the pairing is correct; silence the false positive for
// this binary only.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting replacements for the global allocator.  Only the allocation count
// matters; the forms all funnel through malloc/free.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; pure allocation counter, sampled around joined Submit/Wait cycles
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; pure allocation counter, sampled around joined Submit/Wait cycles
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) /
                                       static_cast<std::size_t>(align) *
                                       static_cast<std::size_t>(align))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace szx::exec {
namespace {

void CountTask(void* ctx, std::uint64_t) {
  static_cast<std::atomic<std::uint64_t>*>(ctx)->fetch_add(
      1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
}

// Restores the process-wide backend on scope exit so tests that force one
// cannot leak it into later tests (or the ctest environment's choice).
class BackendGuard {
 public:
  BackendGuard() : saved_(ActiveBackend()) {}
  ~BackendGuard() { SetActiveBackend(saved_); }

 private:
  Backend saved_;
};

TEST(ExecutorConfig, NamesAndAvailability) {
  EXPECT_STREQ(BackendName(Backend::kOmp), "omp");
  EXPECT_STREQ(BackendName(Backend::kPool), "pool");
  BackendGuard guard;
  EXPECT_EQ(SetActiveBackend(Backend::kPool), Backend::kPool);
  EXPECT_EQ(ActiveBackend(), Backend::kPool);
  const Backend omp = SetActiveBackend(Backend::kOmp);
  // Requesting omp installs it only when the build has OpenMP.
  EXPECT_EQ(omp, OmpAvailable() ? Backend::kOmp : Backend::kPool);
  EXPECT_EQ(ActiveBackend(), omp);
}

TEST(ExecutorConfig, ResolveThreads) {
  EXPECT_EQ(ResolveThreads(5), 5);
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-3), 1);
  EXPECT_GE(DefaultThreads(), 1);
}

TEST(Executor, ParallelForRunsEveryIndexExactlyOnce) {
  Executor ex(4);
  constexpr std::uint64_t kN = 20000;
  std::vector<std::atomic<std::uint32_t>> hits(kN);
  ex.ParallelFor(kN, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
  });
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1u) << "index " << i;  // szx-mo: relaxed; read after the join that ordered the counts
  }
}

TEST(Executor, ZeroAndTinyCounts) {
  Executor ex(3);
  std::atomic<std::uint64_t> ran{0};
  ex.ParallelFor(0, CountTask, &ran);
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 0u);  // szx-mo: relaxed; read after the join that ordered the counts
  ex.ParallelFor(1, CountTask, &ran);
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 1u);  // szx-mo: relaxed; read after the join that ordered the counts
  Executor::Batch b;
  ex.Submit(b, 0, CountTask, &ran);
  b.Wait();  // must not hang
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 1u);  // szx-mo: relaxed; read after the join that ordered the counts
}

// 100-seed randomized job graphs: random worker counts, random batch fans,
// random task counts, overlapping in-flight batches.  The conserved
// quantity is the total number of task executions.
TEST(Executor, TaskCountConservationAcrossRandomJobGraphs) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    std::uint64_t s = seed * 0x9E3779B97F4A7C15ULL + 0xDA3E39CB94B95BDBULL;
    const auto rnd = [&s](std::uint64_t bound) {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      return (s >> 33) % bound;
    };
    Executor ex(static_cast<int>(1 + rnd(8)));
    std::atomic<std::uint64_t> ran{0};
    std::uint64_t expect = 0;
    constexpr std::size_t kMaxInFlight = 4;
    Executor::Batch batches[kMaxInFlight];
    const std::size_t rounds = 1 + rnd(3);
    for (std::size_t round = 0; round < rounds; ++round) {
      const std::size_t fan = 1 + rnd(kMaxInFlight);
      for (std::size_t i = 0; i < fan; ++i) {
        const std::uint64_t n = rnd(3000);
        expect += n;
        ex.Submit(batches[i], n, CountTask, &ran);
      }
      for (std::size_t i = 0; i < fan; ++i) batches[i].Wait();
    }
    ASSERT_EQ(ran.load(std::memory_order_relaxed), expect) << "seed " << seed;  // szx-mo: relaxed; read after the join that ordered the counts
  }
}

TEST(Executor, ExceptionPropagatesAndEveryTaskStillRuns) {
  Executor ex(3);
  std::atomic<std::uint64_t> ran{0};
  constexpr std::uint64_t kN = 1000;
  EXPECT_THROW(ex.ParallelFor(kN,
                              [&](std::uint64_t i) {
                                ran.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
                                if (i == 137) throw Error("task 137 failed");
                              }),
               Error);
  // Conservation holds even with a failure latched: no task is skipped.
  EXPECT_EQ(ran.load(std::memory_order_relaxed), kN);  // szx-mo: relaxed; read after the join that ordered the counts
  // The batch error slot was consumed; the executor stays usable.
  ex.ParallelFor(kN, CountTask, &ran);
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 2 * kN);  // szx-mo: relaxed; read after the join that ordered the counts
}

TEST(Executor, MultipleFailuresLatchExactlyOne) {
  Executor ex(4);
  std::atomic<std::uint64_t> ran{0};
  try {
    ex.ParallelFor(512, [&](std::uint64_t i) {
      ran.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
      if (i % 7 == 0) throw Error("multi-failure");
    });
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "multi-failure");
  }
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 512u);  // szx-mo: relaxed; read after the join that ordered the counts
}

TEST(Executor, NestedParallelForRunsInline) {
  Executor ex(2);
  std::atomic<std::uint64_t> ran{0};
  ex.ParallelFor(8, [&](std::uint64_t) {
    // Inside a pool task of the same executor: must not deadlock, must
    // execute every inner index.
    ex.ParallelFor(16, CountTask, &ran);
  });
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 8u * 16u);  // szx-mo: relaxed; read after the join that ordered the counts
}

TEST(Executor, NestedFacadeParallelFor) {
  BackendGuard guard;
  SetActiveBackend(Backend::kPool);
  std::atomic<std::uint64_t> ran{0};
  exec::ParallelFor(6, 4, [&](std::uint64_t) {
    exec::ParallelFor(10, 4, [&](std::uint64_t) {
      ran.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
    });
  });
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 60u);  // szx-mo: relaxed; read after the join that ordered the counts
}

TEST(Executor, ShutdownWhileBusyDrainsAllWork) {
  std::atomic<std::uint64_t> ran{0};
  Executor::Batch batch;
  {
    auto ex = std::make_unique<Executor>(4);
    ex->Submit(batch, 5000, CountTask, &ran);
    // Destroy with the batch still (potentially) in flight: the graceful
    // drain contract says every queued slice executes before workers exit.
    ex.reset();
  }
  batch.Wait();
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 5000u);  // szx-mo: relaxed; read after the join that ordered the counts
}

TEST(Executor, SubmitWhileInFlightThrows) {
  Executor ex(2);
  Executor::Batch batch;
  std::atomic<int> gate{0};
  ex.Submit(
      batch, 1,
      [](void* ctx, std::uint64_t) {
        auto* g = static_cast<std::atomic<int>*>(ctx);
        while (g->load(std::memory_order_acquire) == 0) {  // szx-mo: acquire; pairs with the release store below so the spin exit observes the gate
          std::this_thread::yield();
        }
      },
      &gate);
  EXPECT_THROW(ex.Submit(batch, 1, CountTask, &gate), Error);
  gate.store(1, std::memory_order_release);  // szx-mo: release; pairs with the acquire spin inside the task
  batch.Wait();
}

TEST(Executor, BatchIsReusableAfterWait) {
  Executor ex(3);
  Executor::Batch batch;
  std::atomic<std::uint64_t> ran{0};
  for (int round = 0; round < 50; ++round) {
    ex.Submit(batch, 64, CountTask, &ran);
    batch.Wait();
  }
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 50u * 64u);  // szx-mo: relaxed; read after the join that ordered the counts
}

// Steal-race stress: many tiny batches against 2..8 workers, plus external
// submitter threads hammering the same pool.  Run under TSan by the
// tsan-omp tier; conservation is the checked invariant here.
TEST(Executor, StealRaceStress) {
  for (int workers : {2, 3, 4, 8}) {
    Executor ex(workers);
    std::atomic<std::uint64_t> ran{0};
    std::uint64_t expect = 0;
    for (std::uint64_t round = 0; round < 200; ++round) {
      const std::uint64_t n = 1 + (round * 37) % 64;
      expect += n;
      ex.ParallelFor(n, CountTask, &ran);
    }
    ASSERT_EQ(ran.load(std::memory_order_relaxed), expect) << "workers " << workers;  // szx-mo: relaxed; read after the join that ordered the counts
  }
}

TEST(Executor, ConcurrentExternalSubmitters) {
  Executor ex(4);
  std::atomic<std::uint64_t> ran{0};
  constexpr int kSubmitters = 4;
  constexpr int kRounds = 50;
  constexpr std::uint64_t kN = 100;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&ex, &ran] {
      for (int r = 0; r < kRounds; ++r) ex.ParallelFor(kN, CountTask, &ran);
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(ran.load(std::memory_order_relaxed), static_cast<std::uint64_t>(kSubmitters) * kRounds * kN);  // szx-mo: relaxed; read after the join that ordered the counts
}

TEST(Executor, WorkerScratchIsUsablePerTask) {
  Executor ex(4);
  std::atomic<std::uint64_t> ok{0};
  ex.ParallelFor(64, [&](std::uint64_t i) {
    ScratchArena& arena = Executor::WorkerScratch();
    arena.Reset();
    auto span = arena.AllocateSpan<std::uint64_t>(128);
    for (std::uint64_t& v : span) v = i;
    std::uint64_t sum = 0;
    for (const std::uint64_t v : span) sum += v;
    if (sum == 128 * i) ok.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
  });
  EXPECT_EQ(ok.load(std::memory_order_relaxed), 64u);  // szx-mo: relaxed; read after the join that ordered the counts
  // External (non-worker) threads get a usable thread_local fallback.
  ScratchArena& external = Executor::WorkerScratch();
  external.Reset();
  EXPECT_EQ(external.AllocateSpan<float>(16).size(), 16u);
}

// The acceptance property from the ISSUE: once warm, Submit/Wait cycles
// perform zero heap allocations -- slices live inline in the Batch, the
// inbox and deque rings sit at their high-water capacities, and parking
// uses mutex/cv only.
TEST(Executor, SteadyStateSubmissionIsZeroHeapAlloc) {
  Executor ex(4);
  std::atomic<std::uint64_t> ran{0};
  Executor::Batch batch;
  for (int warm = 0; warm < 50; ++warm) {
    ex.Submit(batch, 256, CountTask, &ran);
    batch.Wait();
  }
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);  // szx-mo: relaxed; sampled between joined Submit/Wait cycles, the joins order the counts
  for (int round = 0; round < 50; ++round) {
    ex.Submit(batch, 256, CountTask, &ran);
    batch.Wait();
  }
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);  // szx-mo: relaxed; sampled between joined Submit/Wait cycles, the joins order the counts
  EXPECT_EQ(after - before, 0u)
      << "steady-state Submit/Wait must not touch the heap";
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 100u * 256u);  // szx-mo: relaxed; read after the join that ordered the counts
}

// The facade must conserve tasks and propagate failures identically on
// every backend the build offers.
TEST(Facade, ConservationAndErrorsOnEveryBackend) {
  BackendGuard guard;
  Backend backends[2] = {Backend::kPool, Backend::kPool};
  std::size_t nbackends = 1;
  if (OmpAvailable()) backends[nbackends++] = Backend::kOmp;
  for (std::size_t bi = 0; bi < nbackends; ++bi) {
    const Backend b = backends[bi];
    SetActiveBackend(b);
    std::atomic<std::uint64_t> ran{0};
    exec::ParallelFor(4096, 4, [&](std::uint64_t) {
      ran.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
    });
    EXPECT_EQ(ran.load(std::memory_order_relaxed), 4096u) << BackendName(b);  // szx-mo: relaxed; read after the join that ordered the counts

    std::atomic<std::uint64_t> attempted{0};
    EXPECT_THROW(
        exec::ParallelFor(512, 4,
                          [&](std::uint64_t i) {
                            attempted.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
                            if (i == 99) throw Error("facade failure");
                          }),
        Error)
        << BackendName(b);
    EXPECT_EQ(attempted.load(std::memory_order_relaxed), 512u) << BackendName(b);  // szx-mo: relaxed; read after the join that ordered the counts
  }
}

TEST(Facade, SerialWidthRunsInline) {
  std::atomic<std::uint64_t> ran{0};
  exec::ParallelFor(1000, 1, [&](std::uint64_t) {
    ran.fetch_add(1, std::memory_order_relaxed);  // szx-mo: relaxed; conservation counter -- the batch join/thread join before every assert supplies the happens-before edge
  });
  EXPECT_EQ(ran.load(std::memory_order_relaxed), 1000u);  // szx-mo: relaxed; read after the join that ordered the counts
}

}  // namespace
}  // namespace szx::exec
