// End-to-end serial codec tests: the paper's central invariant is that every
// reconstructed value is within the user-specified error bound (Formula 1).
#include "core/compressor.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "core/block_stats.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::Rng;
using testing::WithinBound;

// ---------------------------------------------------------------------------
// Parameterized absolute-bound sweep across types, patterns, block sizes,
// bounds and solutions.
// ---------------------------------------------------------------------------

using Case = std::tuple<int /*pattern*/, int /*block*/, double /*eb*/,
                        int /*solution*/>;

template <SupportedFloat T>
void CheckAbsoluteRoundTrip(Pattern pattern, std::uint32_t block, double eb,
                            CommitSolution sol, std::size_t n = 10000) {
  const auto data = MakePattern<T>(pattern, n, 42);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = eb;
  p.block_size = block;
  p.solution = sol;
  CompressionStats stats;
  const ByteBuffer stream = Compress<T>(data, p, &stats);
  EXPECT_EQ(stats.num_elements, n);
  EXPECT_EQ(stats.num_blocks, (n + block - 1) / block);
  EXPECT_EQ(stats.compressed_bytes, stream.size());
  const std::vector<T> out = Decompress<T>(stream);
  EXPECT_TRUE(WithinBound<T>(data, out, eb));
}

class CompressSweepF32 : public ::testing::TestWithParam<Case> {};
class CompressSweepF64 : public ::testing::TestWithParam<Case> {};

TEST_P(CompressSweepF32, AbsoluteBoundHolds) {
  const auto [pat, block, eb, sol] = GetParam();
  CheckAbsoluteRoundTrip<float>(static_cast<Pattern>(pat),
                                static_cast<std::uint32_t>(block), eb,
                                static_cast<CommitSolution>(sol));
}

TEST_P(CompressSweepF64, AbsoluteBoundHolds) {
  const auto [pat, block, eb, sol] = GetParam();
  CheckAbsoluteRoundTrip<double>(static_cast<Pattern>(pat),
                                 static_cast<std::uint32_t>(block), eb,
                                 static_cast<CommitSolution>(sol));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressSweepF32,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(8, 128, 224),
                       ::testing::Values(1e-2, 1e-5),
                       ::testing::Values(0, 1, 2)));

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompressSweepF64,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(8, 128, 224),
                       ::testing::Values(1e-2, 1e-8),
                       ::testing::Values(0, 1, 2)));

// ---------------------------------------------------------------------------
// Value-range-relative mode.
// ---------------------------------------------------------------------------

TEST(CompressorRel, RelativeBoundScalesWithRange) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 50000, 1);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-3;
  CompressionStats stats;
  const auto stream = Compress<float>(data, p, &stats);
  const auto range = ComputeGlobalRange<float>(std::span<const float>(data));
  const double abs =
      1e-3 * (static_cast<double>(range.max) - static_cast<double>(range.min));
  EXPECT_DOUBLE_EQ(stats.absolute_bound, abs);
  const auto out = Decompress<float>(stream);
  EXPECT_TRUE(WithinBound<float>(data, out, abs));
}

TEST(CompressorRel, TighterBoundNeverCompressesBetter) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 100000, 9);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  std::size_t prev = 0;
  for (double eb : {1e-2, 1e-3, 1e-4, 1e-5}) {
    p.error_bound = eb;
    const auto stream = Compress<float>(data, p);
    EXPECT_GE(stream.size(), prev) << eb;
    prev = stream.size();
  }
}

// ---------------------------------------------------------------------------
// Edge cases.
// ---------------------------------------------------------------------------

TEST(CompressorEdge, EmptyInput) {
  Params p;
  const auto stream = Compress<float>(std::span<const float>(), p);
  const auto out = Decompress<float>(stream);
  EXPECT_TRUE(out.empty());
}

TEST(CompressorEdge, SingleElement) {
  const std::vector<double> data = {3.14159};
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-6;
  const auto out = Decompress<double>(Compress<double>(data, p));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0], 3.14159, 1e-6);
}

TEST(CompressorEdge, RaggedLastBlock) {
  for (std::size_t n : {127u, 129u, 255u, 1000u, 1027u}) {
    const auto data = MakePattern<float>(Pattern::kNoisySine, n, n);
    Params p;
    p.mode = ErrorBoundMode::kAbsolute;
    p.error_bound = 1e-3;
    const auto out = Decompress<float>(Compress<float>(data, p));
    EXPECT_TRUE(WithinBound<float>(data, out, 1e-3)) << n;
  }
}

TEST(CompressorEdge, AllConstantDataCompressesMassively) {
  const std::vector<float> data(100000, 2.5f);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-5;
  CompressionStats stats;
  const auto stream = Compress<float>(data, p, &stats);
  EXPECT_EQ(stats.num_constant_blocks, stats.num_blocks);
  EXPECT_GT(stats.CompressionRatio(sizeof(float)), 50.0);
  const auto out = Decompress<float>(stream);
  for (float v : out) EXPECT_EQ(v, 2.5f);
}

TEST(CompressorEdge, NonFiniteValuesRoundTripLosslessly) {
  auto data = MakePattern<float>(Pattern::kSmoothSine, 4096, 2);
  data[100] = std::numeric_limits<float>::quiet_NaN();
  data[2000] = std::numeric_limits<float>::infinity();
  data[3000] = -std::numeric_limits<float>::infinity();
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  CompressionStats stats;
  const auto stream = Compress<float>(data, p, &stats);
  EXPECT_GE(stats.num_lossless_blocks, 1u);
  const auto out = Decompress<float>(stream);
  EXPECT_TRUE(std::isnan(out[100]));
  EXPECT_EQ(out[2000], std::numeric_limits<float>::infinity());
  EXPECT_EQ(out[3000], -std::numeric_limits<float>::infinity());
  // Values in lossless blocks are exact.
  EXPECT_EQ(out[101], data[101]);
}

TEST(CompressorEdge, IncompressibleDataFallsBackToRawPassthrough) {
  // White noise at a tiny bound cannot compress; the raw frame caps the
  // inflation at the header size.
  Rng rng(17);
  std::vector<float> data(5000);
  for (auto& v : data) {
    v = std::bit_cast<float>(
        static_cast<std::uint32_t>(rng.Next() & 0x7f7fffffu));
  }
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-30;
  const auto stream = Compress<float>(data, p);
  EXPECT_LE(stream.size(), sizeof(Header) + data.size() * sizeof(float));
  const auto out = Decompress<float>(stream);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(data[i]),
              std::bit_cast<std::uint32_t>(out[i]));
  }
}

TEST(CompressorEdge, SubnormalBoundIsHonored) {
  const auto data = MakePattern<double>(Pattern::kTinySubnormals, 2048, 5);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-320;  // subnormal bound
  const auto out = Decompress<double>(Compress<double>(data, p));
  EXPECT_TRUE(WithinBound<double>(data, out, 1e-320));
}

// ---------------------------------------------------------------------------
// Parameter validation.
// ---------------------------------------------------------------------------

TEST(CompressorParams, RejectsBadBounds) {
  const std::vector<float> data(16, 1.0f);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 0.0;
  EXPECT_THROW(Compress<float>(data, p), Error);
  p.error_bound = -1.0;
  EXPECT_THROW(Compress<float>(data, p), Error);
  p.error_bound = std::numeric_limits<double>::infinity();
  EXPECT_THROW(Compress<float>(data, p), Error);
  p.error_bound = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(Compress<float>(data, p), Error);
}

TEST(CompressorParams, RejectsBadBlockSizes) {
  const std::vector<float> data(16, 1.0f);
  Params p;
  p.block_size = 2;
  EXPECT_THROW(Compress<float>(data, p), Error);
  p.block_size = 100000;
  EXPECT_THROW(Compress<float>(data, p), Error);
}

// ---------------------------------------------------------------------------
// Stream robustness.
// ---------------------------------------------------------------------------

TEST(CompressorStream, TypeMismatchRejected) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 1000, 1);
  Params p;
  const auto stream = Compress<float>(data, p);
  EXPECT_THROW(Decompress<double>(stream), Error);
}

TEST(CompressorStream, TruncationRejected) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 10000, 1);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-4;
  const auto stream = Compress<float>(data, p);
  for (std::size_t keep :
       {std::size_t{0}, std::size_t{10}, sizeof(Header), stream.size() / 2,
        stream.size() - 1}) {
    EXPECT_THROW(Decompress<float>(ByteSpan(stream.data(), keep)), Error)
        << keep;
  }
}

TEST(CompressorStream, CorruptMagicRejected) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 100, 1);
  Params p;
  auto stream = Compress<float>(data, p);
  stream[0] = std::byte{'Q'};
  EXPECT_THROW(Decompress<float>(stream), Error);
}

TEST(CompressorStream, WrongOutputSizeRejected) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 100, 1);
  Params p;
  const auto stream = Compress<float>(data, p);
  std::vector<float> small(50);
  EXPECT_THROW(DecompressInto<float>(stream, std::span<float>(small)), Error);
}

TEST(CompressorStream, PeekHeaderReportsMetadata) {
  const auto data = MakePattern<double>(Pattern::kRamp, 12345, 1);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 5e-4;
  p.block_size = 64;
  const auto stream = Compress<double>(data, p);
  const Header h = PeekHeader(stream);
  EXPECT_EQ(h.num_elements, 12345u);
  EXPECT_EQ(h.block_size, 64u);
  EXPECT_EQ(h.dtype, static_cast<std::uint8_t>(DataType::kFloat64));
  EXPECT_DOUBLE_EQ(h.error_bound_abs, 5e-4);
}

// ---------------------------------------------------------------------------
// Solution equivalence: A, B and C must produce identical reconstructions
// value-for-value (they store the same R-bit prefixes).
// ---------------------------------------------------------------------------

TEST(CompressorSolutions, IdenticalReconstructions) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 20000, 31);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-4;
  p.solution = CommitSolution::kA;
  const auto out_a = Decompress<float>(Compress<float>(data, p));
  p.solution = CommitSolution::kB;
  const auto out_b = Decompress<float>(Compress<float>(data, p));
  p.solution = CommitSolution::kC;
  const auto out_c = Decompress<float>(Compress<float>(data, p));
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(out_a[i], out_c[i]) << i;
    ASSERT_EQ(out_b[i], out_c[i]) << i;
  }
}

// ---------------------------------------------------------------------------
// ResolveAbsoluteBound edge cases (see the contract in compressor.hpp).
// ---------------------------------------------------------------------------

TEST(ResolveAbsoluteBound, AbsoluteModeIgnoresData) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 2.5e-3;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const std::vector<float> poisoned = {nan, inf, -inf, 1.0f};
  EXPECT_EQ(ResolveAbsoluteBound<float>(poisoned, p), 2.5e-3);
  EXPECT_EQ(ResolveAbsoluteBound<float>({}, p), 2.5e-3);
}

TEST(ResolveAbsoluteBound, RelativeModeScalesByFiniteRange) {
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-2;
  const float inf = std::numeric_limits<float>::infinity();
  // Non-finite values must not poison the range: finite span is [−2, 6].
  const std::vector<float> data = {inf, -2.0f, 6.0f,
                                   std::numeric_limits<float>::quiet_NaN()};
  EXPECT_DOUBLE_EQ(ResolveAbsoluteBound<float>(data, p), 1e-2 * 8.0);
}

TEST(ResolveAbsoluteBound, RelativeModeDegeneratesToZero) {
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-2;
  // Empty span, all-non-finite span, and zero value range all resolve to a
  // 0.0 bound (effectively lossless) rather than NaN or a throw.
  EXPECT_EQ(ResolveAbsoluteBound<double>({}, p), 0.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> no_finite = {nan, nan};
  EXPECT_EQ(ResolveAbsoluteBound<double>(no_finite, p), 0.0);
  const std::vector<double> constant(64, 3.25);
  EXPECT_EQ(ResolveAbsoluteBound<double>(constant, p), 0.0);
  // The degenerate streams still round-trip exactly.
  const ByteBuffer stream = Compress<double>(constant, p);
  EXPECT_EQ(Decompress<double>(stream), constant);
}

TEST(ResolveAbsoluteBound, PointwiseRelativeHasNoSingleBound) {
  Params p;
  p.mode = ErrorBoundMode::kPointwiseRelative;
  p.error_bound = 1e-2;
  const std::vector<float> data = {1.0f, 100.0f, -5.0f};
  EXPECT_EQ(ResolveAbsoluteBound<float>(data, p), 0.0);
}

TEST(ResolveAbsoluteBound, RejectsInvalidParamsLikeCompress) {
  const std::vector<float> data = {1.0f, 2.0f};
  Params p;
  p.error_bound = 0.0;
  EXPECT_THROW((void)ResolveAbsoluteBound<float>(data, p), Error);
  p.error_bound = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)ResolveAbsoluteBound<float>(data, p), Error);
  p.error_bound = 1e-3;
  p.block_size = kMinBlockSize - 1;
  EXPECT_THROW((void)ResolveAbsoluteBound<float>(data, p), Error);
}

// ---------------------------------------------------------------------------
// Paper Sec. 5.3: CR behaviour vs block size on smooth data.
// ---------------------------------------------------------------------------

TEST(CompressorQuality, SmoothDataGetsHighRatio) {
  // A slowly varying field (many samples per oscillation relative to the
  // block size) is the paper's target regime.
  std::vector<float> data(1 << 20);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] =
        static_cast<float>(100.0 * std::sin(2e-4 * static_cast<double>(i)));
  }
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-2;
  CompressionStats stats;
  (void)Compress<float>(data, p, &stats);  // only the ratio is under test
  EXPECT_GT(stats.CompressionRatio(sizeof(float)), 4.0);
}

}  // namespace
}  // namespace szx
