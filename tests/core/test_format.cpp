// Stream format parsing and corruption rejection.
#include "core/format.hpp"

#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;

ByteBuffer SampleStream(std::size_t n = 5000) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, n, 8);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  return Compress<float>(data, p);
}

TEST(Format, HeaderSizeIsStable) {
  // The on-disk header is part of the format contract.
  EXPECT_EQ(sizeof(Header), 72u);
}

TEST(Format, ParseSectionsPartitionsWholeStream) {
  const ByteBuffer stream = SampleStream();
  const Sections<float> s = ParseSections<float>(stream);
  const Header& h = s.header;
  const std::uint64_t nnc = h.num_blocks - h.num_constant;
  const std::size_t expected = sizeof(Header) + (h.num_blocks + 7) / 8 +
                               h.num_constant * sizeof(float) + nnc +
                               nnc * sizeof(float) + nnc * 2 +
                               h.payload_bytes;
  EXPECT_EQ(expected, stream.size());
  EXPECT_EQ(s.payload.size(), h.payload_bytes);
}

TEST(Format, TypeBitsMatchSectionCounts) {
  const ByteBuffer stream = SampleStream();
  const Sections<float> s = ParseSections<float>(stream);
  std::uint64_t nc = 0;
  for (std::uint64_t k = 0; k < s.header.num_blocks; ++k) {
    nc += IsNonConstant(s.type_bits, k) ? 0 : 1;
  }
  EXPECT_EQ(nc, s.header.num_constant);
}

TEST(Format, SetAndTestNonConstantBits) {
  ByteBuffer bits(4, std::byte{0});
  SetNonConstant(bits.data(), 0);
  SetNonConstant(bits.data(), 9);
  SetNonConstant(bits.data(), 31);
  for (std::uint64_t k = 0; k < 32; ++k) {
    EXPECT_EQ(IsNonConstant(bits, k), k == 0 || k == 9 || k == 31) << k;
  }
}

TEST(Format, RejectsVersionMismatch) {
  ByteBuffer stream = SampleStream();
  stream[4] = std::byte{99};  // version field
  EXPECT_THROW(ParseHeader(stream), Error);
}

TEST(Format, RejectsCorruptEnums) {
  {
    ByteBuffer stream = SampleStream();
    stream[5] = std::byte{7};  // dtype
    EXPECT_THROW(ParseHeader(stream), Error);
  }
  {
    ByteBuffer stream = SampleStream();
    stream[6] = std::byte{9};  // eb_mode
    EXPECT_THROW(ParseHeader(stream), Error);
  }
  {
    ByteBuffer stream = SampleStream();
    stream[7] = std::byte{5};  // solution
    EXPECT_THROW(ParseHeader(stream), Error);
  }
}

TEST(Format, RejectsInconsistentBlockCount) {
  ByteBuffer stream = SampleStream();
  Header h = ParseHeader(stream);
  h.num_blocks += 1;
  // szx-lint: allow(raw-memcpy) -- test forges a corrupt header in place
  std::memcpy(stream.data(), &h, sizeof(Header));
  EXPECT_THROW(ParseHeader(stream), Error);
}

TEST(Format, RejectsConstantCountOverflow) {
  ByteBuffer stream = SampleStream();
  Header h = ParseHeader(stream);
  h.num_constant = h.num_blocks + 1;
  // szx-lint: allow(raw-memcpy) -- test forges a corrupt header in place
  std::memcpy(stream.data(), &h, sizeof(Header));
  EXPECT_THROW(ParseHeader(stream), Error);
}

TEST(Format, CorruptZsizeCaughtOnDecode) {
  // Inflating a zsize makes the payload walk overrun; must throw, not crash.
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 4096, 8);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  ByteBuffer stream = Compress<float>(data, p);
  const Sections<float> s = ParseSections<float>(stream);
  ASSERT_GT(s.header.num_blocks - s.header.num_constant, 0u);
  // Locate the zsize section within the buffer and corrupt its first entry.
  const std::size_t zsize_off =
      static_cast<std::size_t>(s.ncb_zsize.data() - stream.data());
  const std::uint16_t big = 0xffff;
  // szx-lint: allow(raw-memcpy) -- test corrupts a zsize entry in place
  // szx-lint: allow(ptr-arith) -- same: deliberate in-place stream corruption
  std::memcpy(stream.data() + zsize_off, &big, 2);
  EXPECT_THROW(Decompress<float>(stream), Error);
}

TEST(Format, LoadAtHandlesUnalignedOffsets) {
  ByteBuffer raw(11);
  const double v = 2.718281828;
  // szx-lint: allow(raw-memcpy) -- test plants an unaligned value to probe LoadAt
  // szx-lint: allow(ptr-arith) -- same: building the unaligned fixture
  std::memcpy(raw.data() + 3, &v, sizeof(double));
  // szx-lint: allow(ptr-arith) -- same: building the unaligned fixture
  ByteSpan section(raw.data() + 3, 8);
  EXPECT_EQ(LoadAt<double>(section, 0), v);
}

}  // namespace
}  // namespace szx
