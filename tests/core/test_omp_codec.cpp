// OpenMP codec: parallel streams must be byte-identical to serial ones and
// decodable by either path (paper Sec. 6.1).
#include "core/omp_codec.hpp"

#include <bit>

#include <gtest/gtest.h>

#include "../test_util.hpp"
#include "core/streaming.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::WithinBound;

class OmpThreadSweep : public ::testing::TestWithParam<int> {};

TEST_P(OmpThreadSweep, StreamBitIdenticalToSerial) {
  const int threads = GetParam();
  for (auto pat : {Pattern::kSmoothSine, Pattern::kNoisySine,
                   Pattern::kSparseSpikes}) {
    const auto data = MakePattern<float>(pat, 100000, 77);
    Params p;
    p.mode = ErrorBoundMode::kAbsolute;
    p.error_bound = 1e-3;
    CompressionStats serial_stats, omp_stats;
    const auto serial = Compress<float>(data, p, &serial_stats);
    const auto parallel = CompressOmp<float>(data, p, &omp_stats, threads);
    ASSERT_EQ(serial.size(), parallel.size()) << testing::PatternName(pat);
    EXPECT_TRUE(std::equal(serial.begin(), serial.end(), parallel.begin()))
        << testing::PatternName(pat);
    EXPECT_EQ(serial_stats.num_constant_blocks, omp_stats.num_constant_blocks);
    EXPECT_EQ(serial_stats.payload_bytes, omp_stats.payload_bytes);
  }
}

TEST_P(OmpThreadSweep, CrossDecoding) {
  const int threads = GetParam();
  const auto data = MakePattern<double>(Pattern::kNoisySine, 65537, 5);
  Params p;
  p.mode = ErrorBoundMode::kValueRangeRelative;
  p.error_bound = 1e-4;
  const auto serial = Compress<double>(data, p);
  const double abs = PeekHeader(serial).error_bound_abs;

  // Serial stream, parallel decode.
  const auto out1 = DecompressOmp<double>(serial, threads);
  EXPECT_TRUE(WithinBound<double>(data, out1, abs));
  // Parallel stream, serial decode.
  const auto par = CompressOmp<double>(data, p, nullptr, threads);
  const auto out2 = Decompress<double>(par);
  EXPECT_TRUE(WithinBound<double>(data, out2, abs));
  // Parallel/parallel must equal serial/serial exactly.
  const auto out3 = Decompress<double>(serial);
  const auto out4 = DecompressOmp<double>(par, threads);
  EXPECT_EQ(out3, out4);
}

TEST_P(OmpThreadSweep, ParallelDecodeBitIdenticalToSerial) {
  const int threads = GetParam();
  for (auto pat : {Pattern::kSmoothSine, Pattern::kNoisySine,
                   Pattern::kSparseSpikes, Pattern::kRamp}) {
    const auto data = MakePattern<float>(pat, 100001, 11);
    Params p;
    p.mode = ErrorBoundMode::kValueRangeRelative;
    p.error_bound = 1e-3;
    const auto stream = Compress<float>(data, p);
    const auto serial = Decompress<float>(stream);
    const auto par = DecompressOmp<float>(stream, threads);
    ASSERT_EQ(serial.size(), par.size()) << testing::PatternName(pat);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(serial[i]),
                std::bit_cast<std::uint32_t>(par[i]))
          << testing::PatternName(pat) << " element " << i;
    }
    // The error-bound property must hold through the parallel decoder too.
    const double abs = PeekHeader(stream).error_bound_abs;
    EXPECT_TRUE(WithinBound<float>(data, par, abs)) << testing::PatternName(pat);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, OmpThreadSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(OmpCodec, ParallelDecodeRejectsForgedTypeBits) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 50000, 9);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  auto stream = Compress<float>(data, p);
  ASSERT_EQ(PeekHeader(stream).flags & kFlagRawPassthrough, 0u);
  stream[sizeof(Header)] ^= std::byte{1};
  EXPECT_THROW(DecompressOmp<float>(stream, 4), Error);
}

TEST(OmpCodec, StreamReaderDecodesWithThreads) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 70000, 21);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  StreamWriter<float> writer(p);
  const std::size_t chunk = 20000;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    writer.Append(std::span<const float>(data).subspan(
        off, std::min(chunk, data.size() - off)));
  }
  const ByteBuffer container = std::move(writer).Finish();

  StreamReader<float> serial_reader(container);
  StreamReader<float> omp_reader(container);
  omp_reader.set_num_threads(4);
  std::vector<float> a, b;
  while (serial_reader.Next(a)) {
    ASSERT_TRUE(omp_reader.Next(b));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
                std::bit_cast<std::uint32_t>(b[i]))
          << i;
    }
  }
  EXPECT_FALSE(omp_reader.Next(b));
}

TEST(OmpCodec, SmallInputsAllThreadCounts) {
  // Fewer blocks than threads must not break chunking.
  for (std::size_t n : {1u, 7u, 128u, 129u, 1024u}) {
    const auto data = MakePattern<float>(Pattern::kRamp, n, n);
    Params p;
    p.mode = ErrorBoundMode::kAbsolute;
    p.error_bound = 1e-4;
    const auto serial = Compress<float>(data, p);
    const auto par = CompressOmp<float>(data, p, nullptr, 8);
    EXPECT_EQ(serial, par) << n;
  }
}

TEST(OmpCodec, EmptyInput) {
  Params p;
  const auto stream = CompressOmp<float>(std::span<const float>(), p, nullptr, 4);
  EXPECT_TRUE(DecompressOmp<float>(stream, 4).empty());
}

TEST(OmpCodec, RawPassthroughAgreesWithSerial) {
  testing::Rng rng(23);
  std::vector<float> data(4096);
  for (auto& v : data) {
    v = std::bit_cast<float>(
        static_cast<std::uint32_t>(rng.Next() & 0x7f7fffffu));
  }
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-30;
  const auto serial = Compress<float>(data, p);
  const auto par = CompressOmp<float>(data, p, nullptr, 4);
  EXPECT_EQ(serial, par);
  const auto out = DecompressOmp<float>(par, 4);
  for (std::size_t i = 0; i < data.size(); ++i) ASSERT_EQ(data[i], out[i]);
}

TEST(OmpCodec, ParallelDecodeRejectsCorruptStream) {
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 50000, 3);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  auto stream = Compress<float>(data, p);
  // Truncate the payload.
  stream.resize(stream.size() - 100);
  EXPECT_THROW(DecompressOmp<float>(stream, 4), Error);
}

TEST(PrefixSumZsizes, ComputesOffsets) {
  ByteBuffer section;
  ByteWriter w(section);
  for (std::uint16_t z : {10, 0, 7, 300}) w.Write(z);
  const auto offsets = PrefixSumZsizes(section, 4);
  ASSERT_EQ(offsets.size(), 5u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 10u);
  EXPECT_EQ(offsets[2], 10u);
  EXPECT_EQ(offsets[3], 17u);
  EXPECT_EQ(offsets[4], 317u);
}

TEST(PrefixSumZsizes, RejectsShortSection) {
  ByteBuffer section(6);
  EXPECT_THROW(PrefixSumZsizes(section, 4), Error);
}

}  // namespace
}  // namespace szx
