// Differential property tests for the vectorized Solution-C block kernels:
// the scalar and AVX2 implementations must produce byte-identical encoded
// payloads and bit-identical decodes for every block size (including every
// tail length mod the vector width), every valid required length, and inputs
// containing NaN / Inf / subnormals.  On hardware without AVX2 the Avx2Ops
// table aliases the scalar one and these tests pass trivially.
#include "core/kernels/kernels.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstring>
#include <string>
#include <vector>

#include "core/bitops.hpp"
#include "core/block_stats.hpp"
#include "../test_util.hpp"

namespace szx {
namespace {

using kernels::Avx2Ops;
using kernels::EncodeCapacity;
using kernels::ScalarOps;
using testing::MakePattern;
using testing::Pattern;
using testing::Rng;

template <typename T>
class KernelTypedTest : public ::testing::Test {};
using FloatTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(KernelTypedTest, FloatTypes);

// Encodes `block` with both tables and checks the live payloads are
// byte-identical, then decodes each payload with both tables and checks the
// reconstructions are bit-identical.  Returns the live payload size.
template <typename T>
std::size_t CheckBlock(std::span<const T> block, T mu, const ReqPlan& plan,
                       const std::string& what) {
  using Bits = typename FloatTraits<T>::Bits;
  const std::size_t n = block.size();
  std::vector<std::byte> a(EncodeCapacity<T>(n));
  std::vector<std::byte> b(EncodeCapacity<T>(n));
  const std::size_t na =
      ScalarOps<T>().encode_c(block.data(), n, mu, plan, a.data());
  const std::size_t nb =
      Avx2Ops<T>().encode_c(block.data(), n, mu, plan, b.data());
  EXPECT_EQ(na, nb) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), na), 0) << what;

  std::vector<T> da(n), db(n);
  ScalarOps<T>().decode_c(a.data(), na, mu, plan, da.data(), n);
  Avx2Ops<T>().decode_c(a.data(), na, mu, plan, db.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::bit_cast<Bits>(da[i]), std::bit_cast<Bits>(db[i]))
        << what << " i=" << i;
  }
  return na;
}

TYPED_TEST(KernelTypedTest, ScalarAndAvx2AgreeAcrossPatternsAndSizes) {
  using T = TypeParam;
  for (auto p : testing::AllPatterns()) {
    for (std::size_t n : {1u, 2u, 5u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 63u,
                          64u, 65u, 100u, 128u}) {
      const auto v = MakePattern<T>(p, n, 41);
      const auto st = ComputeBlockStatsScalar<T>(std::span<const T>(v));
      if (!st.all_finite) continue;
      const auto plan =
          ComputeReqPlan<T>(ExponentOf(static_cast<T>(st.radius)), -20);
      CheckBlock<T>(v, st.mu, plan,
                    std::string(testing::PatternName(p)) + " n=" +
                        std::to_string(n));
    }
  }
}

TYPED_TEST(KernelTypedTest, AgreeForEveryValidReqLength) {
  using T = TypeParam;
  using Traits = FloatTraits<T>;
  const auto v = MakePattern<T>(Pattern::kNoisySine, 96, 17);
  const auto st = ComputeBlockStatsScalar<T>(std::span<const T>(v));
  for (int req = Traits::kMinReqLength; req <= Traits::kTotalBits; ++req) {
    const auto plan = PlanFromReqLength<T>(static_cast<std::uint8_t>(req));
    CheckBlock<T>(v, st.mu, plan, "req=" + std::to_string(req));
  }
}

TYPED_TEST(KernelTypedTest, AgreeOnSpecialValues) {
  using T = TypeParam;
  Rng rng(59);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 8 + rng.Next() % 64;
    std::vector<T> v(n);
    for (auto& x : v) x = static_cast<T>(rng.Uniform(-5, 5));
    switch (trial % 5) {
      case 0: v[rng.Next() % n] = std::numeric_limits<T>::quiet_NaN(); break;
      case 1: v[rng.Next() % n] = std::numeric_limits<T>::infinity(); break;
      case 2: v[rng.Next() % n] = -std::numeric_limits<T>::infinity(); break;
      case 3: v[rng.Next() % n] = std::numeric_limits<T>::denorm_min(); break;
      case 4: v[rng.Next() % n] = -T(0); break;
    }
    // The codec routes non-finite blocks through the lossless plan; the
    // kernels must agree on that path too (mu = 0, full-width bytes).
    const auto plan = LosslessPlan<T>();
    CheckBlock<T>(v, T(0), plan, "special trial=" + std::to_string(trial));
  }
}

TYPED_TEST(KernelTypedTest, AgreeOnAllZeroAndAllSameBlocks) {
  using T = TypeParam;
  for (std::size_t n : {3u, 8u, 64u}) {
    const std::vector<T> zeros(n, T(0));
    const std::vector<T> same(n, T(4.25));
    const auto plan = PlanFromReqLength<T>(
        static_cast<std::uint8_t>(FloatTraits<T>::kMinReqLength + 7));
    CheckBlock<T>(std::span<const T>(zeros), T(0), plan, "zeros");
    CheckBlock<T>(std::span<const T>(same), T(4.25), plan, "same");
  }
}

TEST(KernelDispatch, TablesAndKindAreCoherent) {
  // ActiveOps must alias one of the two public tables, and KindName must
  // round-trip the enum.
  EXPECT_STREQ(kernels::KindName(kernels::Kind::kScalar), "scalar");
  EXPECT_STREQ(kernels::KindName(kernels::Kind::kAvx2), "avx2");
  const auto kind = kernels::ActiveKind();
  if (kind == kernels::Kind::kAvx2) {
    EXPECT_TRUE(kernels::Avx2Supported());
    EXPECT_EQ(&kernels::ActiveOps<float>(), &kernels::Avx2Ops<float>());
  } else {
    EXPECT_EQ(&kernels::ActiveOps<float>(), &kernels::ScalarOps<float>());
  }
}

TEST(KernelDispatch, CapacityIsMonotonicAndCoversPayload) {
  // FramePayloadCapacity must dominate the sum of worst-case block payloads.
  for (std::uint32_t bs : {64u, 128u, 256u}) {
    const std::uint64_t nb = 10;
    const std::size_t data_bytes = std::size_t{nb} * bs * sizeof(float);
    const std::size_t cap = kernels::FramePayloadCapacity(nb, bs, data_bytes);
    EXPECT_GE(cap, nb * MaxBlockPayload<float>(bs) + kernels::kCommitSlack);
  }
}

}  // namespace
}  // namespace szx
