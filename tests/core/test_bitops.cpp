// Bit-level tests of the IEEE-754 analysis helpers (Formulae 4 and 5).
#include "core/bitops.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace szx {
namespace {

TEST(ExponentOf, PowersOfTwoFloat) {
  EXPECT_EQ(ExponentOf(1.0f), 0);
  EXPECT_EQ(ExponentOf(2.0f), 1);
  EXPECT_EQ(ExponentOf(0.5f), -1);
  EXPECT_EQ(ExponentOf(1024.0f), 10);
  EXPECT_EQ(ExponentOf(0.75f), -1);   // 2^-1 <= 0.75 < 2^0
  EXPECT_EQ(ExponentOf(1.5f), 0);
}

TEST(ExponentOf, PowersOfTwoDouble) {
  EXPECT_EQ(ExponentOf(1.0), 0);
  EXPECT_EQ(ExponentOf(1e-3), -10);   // 2^-10 = 9.77e-4 <= 1e-3
  EXPECT_EQ(ExponentOf(1e-4), -14);   // 2^-14 = 6.10e-5 <= 1e-4 < 2^-13
  EXPECT_EQ(ExponentOf(8.0), 3);
}

TEST(ExponentOf, SignIgnored) {
  EXPECT_EQ(ExponentOf(-4.0f), ExponentOf(4.0f));
  EXPECT_EQ(ExponentOf(-1e-5), ExponentOf(1e-5));
}

TEST(ExponentOf, SubnormalsMatchIlogb) {
  const float sub = std::numeric_limits<float>::denorm_min() * 19;
  EXPECT_EQ(ExponentOf(sub), std::ilogb(sub));
  const double dsub = std::numeric_limits<double>::denorm_min() * 123456789.0;
  EXPECT_EQ(ExponentOf(dsub), std::ilogb(dsub));
}

TEST(ExponentOf, ZeroIsBelowAllRepresentable) {
  EXPECT_LT(ExponentOf(0.0f),
            std::ilogb(std::numeric_limits<float>::denorm_min()));
  EXPECT_LT(ExponentOf(0.0),
            std::ilogb(std::numeric_limits<double>::denorm_min()));
}

TEST(ExponentOf, ConsistentWithDefinition) {
  // 2^p <= |x| < 2^(p+1) for assorted finite values.
  for (double x : {3.7, 0.001, 123456.0, 5e-20, 7e12, 0.9999}) {
    const int p = ExponentOf(x);
    EXPECT_LE(std::ldexp(1.0, p), x) << x;
    EXPECT_LT(x, std::ldexp(1.0, p + 1)) << x;
  }
}

TEST(ComputeReqPlan, ByteAlignmentInvariant) {
  for (int rad = -140; rad <= 120; ++rad) {
    for (int eb = -140; eb <= 120; ++eb) {
      const ReqPlan p = ComputeReqPlan<float>(rad, eb);
      EXPECT_EQ((p.req_length + p.shift) % 8, 0);
      EXPECT_EQ(p.num_bytes, (p.req_length + p.shift) / 8);
      EXPECT_GE(p.req_length, FloatTraits<float>::kMinReqLength);
      EXPECT_LE(p.req_length, FloatTraits<float>::kTotalBits);
      EXPECT_LT(p.shift, 8);
    }
  }
}

TEST(ComputeReqPlan, FloatBoundaries) {
  // rad far below eb: sign + exponent only.
  EXPECT_EQ(ComputeReqPlan<float>(-60, -10).req_length, 9);
  // rad far above eb: full precision.
  EXPECT_EQ(ComputeReqPlan<float>(30, -120).req_length, 32);
  // One mantissa bit when exponents are equal.
  EXPECT_EQ(ComputeReqPlan<float>(-10, -10).req_length, 10);
}

TEST(ComputeReqPlan, DoubleBoundaries) {
  EXPECT_EQ(ComputeReqPlan<double>(-200, -10).req_length, 12);
  EXPECT_EQ(ComputeReqPlan<double>(100, -1000).req_length, 64);
  EXPECT_EQ(ComputeReqPlan<double>(-10, -10).req_length, 13);
}

TEST(ComputeReqPlan, ShiftFormula) {
  // Formula 5: s = 0 when R % 8 == 0, else 8 - R % 8.
  const ReqPlan p16 = ComputeReqPlan<float>(-4, -11);  // m = 8 -> R = 17
  EXPECT_EQ(p16.req_length, 17);
  EXPECT_EQ(p16.shift, 7);
  EXPECT_EQ(p16.num_bytes, 3);
  const ReqPlan p24 = ComputeReqPlan<float>(0, -14);  // m = 15 -> R = 24
  EXPECT_EQ(p24.req_length, 24);
  EXPECT_EQ(p24.shift, 0);
  EXPECT_EQ(p24.num_bytes, 3);
}

TEST(PlanFromReqLength, RoundTripsComputeReqPlan) {
  for (int rad = -60; rad <= 60; rad += 3) {
    for (int eb = -40; eb <= 10; eb += 3) {
      const ReqPlan a = ComputeReqPlan<double>(rad, eb);
      const ReqPlan b = PlanFromReqLength<double>(a.req_length);
      EXPECT_EQ(a.shift, b.shift);
      EXPECT_EQ(a.num_bytes, b.num_bytes);
    }
  }
}

TEST(PlanFromReqLength, RejectsOutOfRange) {
  EXPECT_THROW(PlanFromReqLength<float>(8), Error);
  EXPECT_THROW(PlanFromReqLength<float>(33), Error);
  EXPECT_THROW(PlanFromReqLength<double>(11), Error);
  EXPECT_THROW(PlanFromReqLength<double>(65), Error);
  EXPECT_NO_THROW(PlanFromReqLength<float>(9));
  EXPECT_NO_THROW(PlanFromReqLength<float>(32));
}

TEST(KeepMask, CoversTopBytes) {
  EXPECT_EQ(KeepMask<float>(0), 0u);
  EXPECT_EQ(KeepMask<float>(1), 0xff000000u);
  EXPECT_EQ(KeepMask<float>(2), 0xffff0000u);
  EXPECT_EQ(KeepMask<float>(4), 0xffffffffu);
  EXPECT_EQ(KeepMask<double>(3), 0xffffff0000000000ull);
  EXPECT_EQ(KeepMask<double>(8), ~0ull);
}

TEST(LeadingIdenticalBytes, CountsAndCaps) {
  EXPECT_EQ(LeadingIdenticalBytes<float>(0x12345678u, 0x12345678u), 3);
  EXPECT_EQ(LeadingIdenticalBytes<float>(0x12345678u, 0x12345679u), 3);
  EXPECT_EQ(LeadingIdenticalBytes<float>(0x12345678u, 0x12345778u), 2);
  EXPECT_EQ(LeadingIdenticalBytes<float>(0x12345678u, 0x12335678u), 1);
  EXPECT_EQ(LeadingIdenticalBytes<float>(0x12345678u, 0x92345678u), 0);
  EXPECT_EQ(LeadingIdenticalBytes<double>(0x1122334455667788ull,
                                          0x1122334455667789ull),
            3);  // capped at 3 even with 7 identical bytes
}

TEST(TopByte, ExtractAndPlaceRoundTrip) {
  const std::uint32_t w = 0xa1b2c3d4u;
  EXPECT_EQ(TopByte<float>(w, 0), 0xa1);
  EXPECT_EQ(TopByte<float>(w, 1), 0xb2);
  EXPECT_EQ(TopByte<float>(w, 2), 0xc3);
  EXPECT_EQ(TopByte<float>(w, 3), 0xd4);
  std::uint32_t r = 0;
  for (int j = 0; j < 4; ++j) r |= PlaceTopByte<float>(TopByte<float>(w, j), j);
  EXPECT_EQ(r, w);

  const std::uint64_t d = 0x0102030405060708ull;
  std::uint64_t rd = 0;
  for (int j = 0; j < 8; ++j) {
    rd |= PlaceTopByte<double>(TopByte<double>(d, j), j);
  }
  EXPECT_EQ(rd, d);
}

}  // namespace
}  // namespace szx
