// Byte/bit stream primitive tests.
#include "core/stream.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx {
namespace {

TEST(ByteStream, WriteReadRoundTrip) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.Write<std::uint32_t>(0xdeadbeef);
  w.Write<double>(3.5);
  w.Write<std::uint8_t>(42);
  const char raw[5] = {'h', 'e', 'l', 'l', 'o'};
  w.WriteBytes(raw, 5);

  ByteCursor r(buf);
  EXPECT_EQ(r.Read<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(r.Read<double>(), 3.5);
  EXPECT_EQ(r.Read<std::uint8_t>(), 42);
  char back[5];
  r.ReadBytes(back, 5);
  EXPECT_EQ(std::string(back, 5), "hello");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteStream, TruncationThrows) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.Write<std::uint16_t>(7);
  ByteCursor r(buf);
  EXPECT_THROW((void)r.Read<std::uint32_t>(), Error);
}

TEST(ByteStream, SliceAdvances) {
  ByteBuffer buf(10, std::byte{9});
  ByteCursor r(buf);
  ByteSpan a = r.Slice(4);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 6u);
  EXPECT_THROW((void)r.Slice(7), Error);
  EXPECT_NO_THROW((void)r.Slice(6));
}

TEST(BitStream, SingleBits) {
  ByteBuffer buf;
  BitWriter w(buf);
  const unsigned pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (unsigned b : pattern) w.WriteBit(b);
  w.Flush();
  EXPECT_EQ(buf.size(), 2u);
  BitReader r(buf);
  for (unsigned b : pattern) EXPECT_EQ(r.ReadBit(), b);
}

TEST(BitStream, MultiBitValues) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.WriteBits(0x5, 3);
  w.WriteBits(0x1ff, 9);
  w.WriteBits(0x0, 4);
  w.WriteBits(0xabcdef0123456789ull, 64);
  w.Flush();
  BitReader r(buf);
  EXPECT_EQ(r.ReadBits(3), 0x5u);
  EXPECT_EQ(r.ReadBits(9), 0x1ffu);
  EXPECT_EQ(r.ReadBits(4), 0x0u);
  EXPECT_EQ(r.ReadBits(64), 0xabcdef0123456789ull);
}

TEST(BitStream, RandomizedRoundTrip) {
  testing::Rng rng(99);
  std::vector<std::pair<std::uint64_t, int>> items;
  ByteBuffer buf;
  BitWriter w(buf);
  for (int i = 0; i < 5000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.Next() % 64);
    const std::uint64_t value =
        nbits == 64 ? rng.Next() : (rng.Next() & ((1ull << nbits) - 1));
    items.emplace_back(value, nbits);
    w.WriteBits(value, nbits);
  }
  w.Flush();
  BitReader r(buf);
  for (const auto& [value, nbits] : items) {
    EXPECT_EQ(r.ReadBits(nbits), value);
  }
}

TEST(BitStream, ReadPastEndThrows) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.WriteBits(0x3, 2);
  w.Flush();  // one byte: 2 data bits + 6 padding
  BitReader r(buf);
  r.ReadBits(8);
  EXPECT_THROW((void)r.ReadBit(), Error);
}

TEST(BitStream, PeekBitsDoesNotConsume) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.WriteBits(0b1011001110001111, 16);
  w.Flush();
  BitReader r(buf);
  EXPECT_EQ(r.PeekBits(6), 0b101100u);
  EXPECT_EQ(r.PeekBits(6), 0b101100u);  // still not consumed
  EXPECT_EQ(r.ReadBits(4), 0b1011u);
  EXPECT_EQ(r.PeekBits(8), 0b00111000u);
  EXPECT_EQ(r.position_bits(), 4u);
}

TEST(BitStream, PeekBitsZeroPadsPastEnd) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.WriteBits(0b101, 3);
  w.Flush();  // one byte: 10100000
  BitReader r(buf);
  r.ReadBits(6);
  // Only 2 real bits remain; the rest must read as zero.
  EXPECT_EQ(r.PeekBits(10), 0u);
  EXPECT_EQ(r.PeekBits(2), 0u);
}

TEST(BitStream, PeekMatchesReadAcrossByteBoundaries) {
  testing::Rng rng(7);
  ByteBuffer buf;
  BitWriter w(buf);
  for (int i = 0; i < 100; ++i) w.WriteBits(rng.Next(), 13);
  w.Flush();
  BitReader peeker(buf);
  BitReader reader(buf);
  for (int i = 0; i < 100; ++i) {
    const auto peeked = peeker.PeekBits(13);
    EXPECT_EQ(peeked, reader.ReadBits(13)) << i;
    peeker.Skip(13);
  }
}

TEST(BitStream, FlushPadsWithZeros) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.WriteBits(0x7, 3);  // 111 + 00000 padding
  w.Flush();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(std::to_integer<int>(buf[0]), 0xe0);
}

}  // namespace
}  // namespace szx
