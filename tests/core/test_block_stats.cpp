// Block statistics: scalar correctness and scalar/SIMD equivalence.
#include "core/block_stats.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <type_traits>

#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::Rng;

template <typename T>
class BlockStatsTypedTest : public ::testing::Test {};
using FloatTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(BlockStatsTypedTest, FloatTypes);

TYPED_TEST(BlockStatsTypedTest, SimpleBlock) {
  using T = TypeParam;
  const std::vector<T> v = {T(1), T(5), T(3), T(2)};
  const auto s = ComputeBlockStatsScalar<T>(v);
  EXPECT_EQ(s.min, T(1));
  EXPECT_EQ(s.max, T(5));
  EXPECT_EQ(s.mu, T(3));
  EXPECT_EQ(s.radius, T(2));
  EXPECT_TRUE(s.all_finite);
}

TYPED_TEST(BlockStatsTypedTest, ConstantBlockHasZeroRadius) {
  using T = TypeParam;
  const std::vector<T> v(64, T(-7.5));
  const auto s = ComputeBlockStatsScalar<T>(v);
  EXPECT_EQ(s.radius, T(0));
  EXPECT_EQ(s.mu, T(-7.5));
}

TYPED_TEST(BlockStatsTypedTest, RadiusBoundsNormalizedValues) {
  using T = TypeParam;
  // Property: for any finite block, |v - mu| <= radius for every v.
  for (auto p : testing::AllPatterns()) {
    const auto v = MakePattern<T>(p, 256, 13);
    const auto s = ComputeBlockStatsScalar<T>(std::span<const T>(v));
    ASSERT_TRUE(s.all_finite) << testing::PatternName(p);
    for (const T x : v) {
      EXPECT_LE(std::abs(static_cast<double>(x) -
                         static_cast<double>(s.mu)),
                static_cast<double>(s.radius) * (1 + 1e-12))
          << testing::PatternName(p);
    }
  }
}

TYPED_TEST(BlockStatsTypedTest, NonFiniteDetected) {
  using T = TypeParam;
  std::vector<T> v(32, T(1));
  v[17] = std::numeric_limits<T>::quiet_NaN();
  EXPECT_FALSE(ComputeBlockStatsScalar<T>(std::span<const T>(v)).all_finite);
  v[17] = std::numeric_limits<T>::infinity();
  EXPECT_FALSE(ComputeBlockStatsScalar<T>(std::span<const T>(v)).all_finite);
  v[17] = -std::numeric_limits<T>::infinity();
  EXPECT_FALSE(ComputeBlockStatsScalar<T>(std::span<const T>(v)).all_finite);
  v[17] = T(2);
  EXPECT_TRUE(ComputeBlockStatsScalar<T>(std::span<const T>(v)).all_finite);
}

TYPED_TEST(BlockStatsTypedTest, ExtremeRangeDoesNotOverflow) {
  using T = TypeParam;
  const std::vector<T> v = {std::numeric_limits<T>::lowest(),
                            std::numeric_limits<T>::max(), T(0)};
  const auto s = ComputeBlockStatsScalar<T>(std::span<const T>(v));
  EXPECT_TRUE(std::isfinite(s.mu));
  EXPECT_TRUE(std::isfinite(s.radius));
}

TYPED_TEST(BlockStatsTypedTest, SimdMatchesScalarOnPatterns) {
  using T = TypeParam;
  for (auto p : testing::AllPatterns()) {
    for (std::size_t n : {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 64u, 127u,
                          128u, 1000u}) {
      const auto v = MakePattern<T>(p, n, 21);
      const auto a = ComputeBlockStatsScalar<T>(std::span<const T>(v));
      const auto b = ComputeBlockStatsSimd<T>(std::span<const T>(v));
      EXPECT_EQ(a.min, b.min) << testing::PatternName(p) << " n=" << n;
      EXPECT_EQ(a.max, b.max) << testing::PatternName(p) << " n=" << n;
      EXPECT_EQ(a.mu, b.mu) << testing::PatternName(p) << " n=" << n;
      EXPECT_EQ(a.radius, b.radius) << testing::PatternName(p) << " n=" << n;
      EXPECT_EQ(a.all_finite, b.all_finite);
    }
  }
}

TYPED_TEST(BlockStatsTypedTest, SimdMatchesScalarWithSpecials) {
  using T = TypeParam;
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<T> v(64);
    for (auto& x : v) x = static_cast<T>(rng.Uniform(-10, 10));
    // Sprinkle specials at random positions.
    const std::size_t pos = rng.Next() % v.size();
    switch (trial % 4) {
      case 0: v[pos] = std::numeric_limits<T>::quiet_NaN(); break;
      case 1: v[pos] = std::numeric_limits<T>::infinity(); break;
      case 2: v[pos] = -std::numeric_limits<T>::infinity(); break;
      case 3: v[pos] = -T(0); break;
    }
    const auto a = ComputeBlockStatsScalar<T>(std::span<const T>(v));
    const auto b = ComputeBlockStatsSimd<T>(std::span<const T>(v));
    EXPECT_EQ(a.all_finite, b.all_finite) << trial;
    if (a.all_finite) {
      EXPECT_EQ(a.mu, b.mu);
      EXPECT_EQ(a.radius, b.radius);
    }
  }
}

// Regression: the SIMD path's non-finite fallback must still report the same
// min/max as the scalar path (it rescans min/max only, skipping the mu/radius
// math that NaN would poison).
TYPED_TEST(BlockStatsTypedTest, SimdNonFiniteFallbackKeepsMinMax) {
  using T = TypeParam;
  Rng rng(11);
  for (std::size_t n : {5u, 8u, 9u, 17u, 64u, 111u, 128u}) {
    std::vector<T> v(n);
    for (auto& x : v) x = static_cast<T>(rng.Uniform(-100, 100));
    v[rng.Next() % n] = std::numeric_limits<T>::quiet_NaN();
    if (n > 8) v[rng.Next() % n] = std::numeric_limits<T>::infinity();
    const auto a = ComputeBlockStatsScalar<T>(std::span<const T>(v));
    const auto b = ComputeBlockStatsSimd<T>(std::span<const T>(v));
    ASSERT_FALSE(a.all_finite);
    EXPECT_FALSE(b.all_finite) << "n=" << n;
    // Bitwise compare: a NaN at position 0 propagates into min/max in both
    // paths, and NaN != NaN would make a value compare vacuously fail.
    using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
    EXPECT_EQ(std::bit_cast<Bits>(a.min), std::bit_cast<Bits>(b.min)) << "n=" << n;
    EXPECT_EQ(std::bit_cast<Bits>(a.max), std::bit_cast<Bits>(b.max)) << "n=" << n;
  }
}

// The vectorized global-range path must match a plain reference loop for
// every tail length and with non-finite lanes mixed in.
TYPED_TEST(BlockStatsTypedTest, GlobalRangeMatchesReferenceAcrossSizes) {
  using T = TypeParam;
  Rng rng(23);
  for (std::size_t n = 1; n < 70; ++n) {
    std::vector<T> v(n);
    for (auto& x : v) x = static_cast<T>(rng.Uniform(-1000, 1000));
    if (n % 3 == 0) v[rng.Next() % n] = std::numeric_limits<T>::quiet_NaN();
    if (n % 5 == 0) v[rng.Next() % n] = -std::numeric_limits<T>::infinity();
    T ref_min = std::numeric_limits<T>::infinity();
    T ref_max = -std::numeric_limits<T>::infinity();
    bool ref_any = false;
    for (const T x : v) {
      if (!std::isfinite(x)) continue;
      ref_any = true;
      ref_min = std::min(ref_min, x);
      ref_max = std::max(ref_max, x);
    }
    const auto r = ComputeGlobalRange<T>(std::span<const T>(v));
    ASSERT_EQ(r.any_finite, ref_any) << "n=" << n;
    if (!ref_any) continue;
    EXPECT_EQ(r.min, ref_min) << "n=" << n;
    EXPECT_EQ(r.max, ref_max) << "n=" << n;
  }
}

TYPED_TEST(BlockStatsTypedTest, GlobalRangeSkipsNonFinite) {
  using T = TypeParam;
  std::vector<T> v = {T(3), std::numeric_limits<T>::infinity(), T(-2),
                      std::numeric_limits<T>::quiet_NaN(), T(10)};
  const auto r = ComputeGlobalRange<T>(std::span<const T>(v));
  EXPECT_TRUE(r.any_finite);
  EXPECT_EQ(r.min, T(-2));
  EXPECT_EQ(r.max, T(10));
}

TYPED_TEST(BlockStatsTypedTest, GlobalRangeAllNonFinite) {
  using T = TypeParam;
  const std::vector<T> v(4, std::numeric_limits<T>::quiet_NaN());
  EXPECT_FALSE(ComputeGlobalRange<T>(std::span<const T>(v)).any_finite);
  EXPECT_FALSE(ComputeGlobalRange<T>(std::span<const T>()).any_finite);
}

TEST(BlockStats, EmptyBlock) {
  const auto s = ComputeBlockStatsScalar<float>({});
  EXPECT_EQ(s.radius, 0.0f);
  EXPECT_TRUE(s.all_finite);
}

}  // namespace
}  // namespace szx
