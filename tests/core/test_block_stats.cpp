// Block statistics: scalar correctness and scalar/SIMD equivalence.
#include "core/block_stats.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx {
namespace {

using testing::MakePattern;
using testing::Pattern;
using testing::Rng;

template <typename T>
class BlockStatsTypedTest : public ::testing::Test {};
using FloatTypes = ::testing::Types<float, double>;
TYPED_TEST_SUITE(BlockStatsTypedTest, FloatTypes);

TYPED_TEST(BlockStatsTypedTest, SimpleBlock) {
  using T = TypeParam;
  const std::vector<T> v = {T(1), T(5), T(3), T(2)};
  const auto s = ComputeBlockStatsScalar<T>(v);
  EXPECT_EQ(s.min, T(1));
  EXPECT_EQ(s.max, T(5));
  EXPECT_EQ(s.mu, T(3));
  EXPECT_EQ(s.radius, T(2));
  EXPECT_TRUE(s.all_finite);
}

TYPED_TEST(BlockStatsTypedTest, ConstantBlockHasZeroRadius) {
  using T = TypeParam;
  const std::vector<T> v(64, T(-7.5));
  const auto s = ComputeBlockStatsScalar<T>(v);
  EXPECT_EQ(s.radius, T(0));
  EXPECT_EQ(s.mu, T(-7.5));
}

TYPED_TEST(BlockStatsTypedTest, RadiusBoundsNormalizedValues) {
  using T = TypeParam;
  // Property: for any finite block, |v - mu| <= radius for every v.
  for (auto p : testing::AllPatterns()) {
    const auto v = MakePattern<T>(p, 256, 13);
    const auto s = ComputeBlockStatsScalar<T>(std::span<const T>(v));
    ASSERT_TRUE(s.all_finite) << testing::PatternName(p);
    for (const T x : v) {
      EXPECT_LE(std::abs(static_cast<double>(x) -
                         static_cast<double>(s.mu)),
                static_cast<double>(s.radius) * (1 + 1e-12))
          << testing::PatternName(p);
    }
  }
}

TYPED_TEST(BlockStatsTypedTest, NonFiniteDetected) {
  using T = TypeParam;
  std::vector<T> v(32, T(1));
  v[17] = std::numeric_limits<T>::quiet_NaN();
  EXPECT_FALSE(ComputeBlockStatsScalar<T>(std::span<const T>(v)).all_finite);
  v[17] = std::numeric_limits<T>::infinity();
  EXPECT_FALSE(ComputeBlockStatsScalar<T>(std::span<const T>(v)).all_finite);
  v[17] = -std::numeric_limits<T>::infinity();
  EXPECT_FALSE(ComputeBlockStatsScalar<T>(std::span<const T>(v)).all_finite);
  v[17] = T(2);
  EXPECT_TRUE(ComputeBlockStatsScalar<T>(std::span<const T>(v)).all_finite);
}

TYPED_TEST(BlockStatsTypedTest, ExtremeRangeDoesNotOverflow) {
  using T = TypeParam;
  const std::vector<T> v = {std::numeric_limits<T>::lowest(),
                            std::numeric_limits<T>::max(), T(0)};
  const auto s = ComputeBlockStatsScalar<T>(std::span<const T>(v));
  EXPECT_TRUE(std::isfinite(s.mu));
  EXPECT_TRUE(std::isfinite(s.radius));
}

TYPED_TEST(BlockStatsTypedTest, SimdMatchesScalarOnPatterns) {
  using T = TypeParam;
  for (auto p : testing::AllPatterns()) {
    for (std::size_t n : {1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 31u, 64u, 127u,
                          128u, 1000u}) {
      const auto v = MakePattern<T>(p, n, 21);
      const auto a = ComputeBlockStatsScalar<T>(std::span<const T>(v));
      const auto b = ComputeBlockStatsSimd<T>(std::span<const T>(v));
      EXPECT_EQ(a.min, b.min) << testing::PatternName(p) << " n=" << n;
      EXPECT_EQ(a.max, b.max) << testing::PatternName(p) << " n=" << n;
      EXPECT_EQ(a.mu, b.mu) << testing::PatternName(p) << " n=" << n;
      EXPECT_EQ(a.radius, b.radius) << testing::PatternName(p) << " n=" << n;
      EXPECT_EQ(a.all_finite, b.all_finite);
    }
  }
}

TYPED_TEST(BlockStatsTypedTest, SimdMatchesScalarWithSpecials) {
  using T = TypeParam;
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<T> v(64);
    for (auto& x : v) x = static_cast<T>(rng.Uniform(-10, 10));
    // Sprinkle specials at random positions.
    const std::size_t pos = rng.Next() % v.size();
    switch (trial % 4) {
      case 0: v[pos] = std::numeric_limits<T>::quiet_NaN(); break;
      case 1: v[pos] = std::numeric_limits<T>::infinity(); break;
      case 2: v[pos] = -std::numeric_limits<T>::infinity(); break;
      case 3: v[pos] = -T(0); break;
    }
    const auto a = ComputeBlockStatsScalar<T>(std::span<const T>(v));
    const auto b = ComputeBlockStatsSimd<T>(std::span<const T>(v));
    EXPECT_EQ(a.all_finite, b.all_finite) << trial;
    if (a.all_finite) {
      EXPECT_EQ(a.mu, b.mu);
      EXPECT_EQ(a.radius, b.radius);
    }
  }
}

TYPED_TEST(BlockStatsTypedTest, GlobalRangeSkipsNonFinite) {
  using T = TypeParam;
  std::vector<T> v = {T(3), std::numeric_limits<T>::infinity(), T(-2),
                      std::numeric_limits<T>::quiet_NaN(), T(10)};
  const auto r = ComputeGlobalRange<T>(std::span<const T>(v));
  EXPECT_TRUE(r.any_finite);
  EXPECT_EQ(r.min, T(-2));
  EXPECT_EQ(r.max, T(10));
}

TYPED_TEST(BlockStatsTypedTest, GlobalRangeAllNonFinite) {
  using T = TypeParam;
  const std::vector<T> v(4, std::numeric_limits<T>::quiet_NaN());
  EXPECT_FALSE(ComputeGlobalRange<T>(std::span<const T>(v)).any_finite);
  EXPECT_FALSE(ComputeGlobalRange<T>(std::span<const T>()).any_finite);
}

TEST(BlockStats, EmptyBlock) {
  const auto s = ComputeBlockStatsScalar<float>({});
  EXPECT_EQ(s.radius, 0.0f);
  EXPECT_TRUE(s.all_finite);
}

}  // namespace
}  // namespace szx
