// Cross-codec integration: every compressor in the repository on every
// application preset, checking the bound, the quality metrics, and the
// paper's headline orderings (Table 3 CR ordering, SZx speed lead).
#include <cctype>

#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "data/datasets.hpp"
#include "hybrid/hybrid.hpp"
#include "lzref/lzref.hpp"
#include "metrics/quality_report.hpp"
#include "szref/szref.hpp"
#include "zfpref/zfpref.hpp"

namespace szx {
namespace {

constexpr double kScale = 0.2;  // small grids: integration, not benchmark
constexpr double kRelEb = 1e-3;

class CrossCodec : public ::testing::TestWithParam<int> {
 protected:
  data::App app() const { return static_cast<data::App>(GetParam()); }
};

TEST_P(CrossCodec, SzxBoundAndQualityOnAllFields) {
  for (const auto& f : data::GenerateApp(app(), kScale)) {
    Params p;
    p.mode = ErrorBoundMode::kValueRangeRelative;
    p.error_bound = kRelEb;
    CompressionStats stats;
    const auto stream = Compress<float>(f.values, p, &stats);
    const auto recon = Decompress<float>(stream);
    const auto r = metrics::AssessQuality<float>(f.values, recon, f.dims,
                                                 stream.size());
    EXPECT_LE(r.distortion.max_abs_error, stats.absolute_bound)
        << data::AppName(app()) << "/" << f.name;
    EXPECT_GT(r.pearson_correlation, 0.999)
        << data::AppName(app()) << "/" << f.name;
    EXPECT_GT(r.compression_ratio, 1.0)
        << data::AppName(app()) << "/" << f.name;
  }
}

TEST_P(CrossCodec, BaselinesRespectBoundOnAllFields) {
  for (const auto& f : data::GenerateApp(app(), kScale)) {
    {
      szref::SzParams p;
      p.mode = ErrorBoundMode::kValueRangeRelative;
      p.error_bound = kRelEb;
      szref::SzStats stats;
      const auto stream = szref::SzCompress(f.values, f.dims, p, &stats);
      const auto recon = szref::SzDecompress(stream);
      const auto d = metrics::ComputeDistortion<float>(f.values, recon);
      EXPECT_LE(d.max_abs_error, stats.absolute_bound)
          << "SZ " << data::AppName(app()) << "/" << f.name;
    }
    {
      zfpref::ZfpParams p;
      p.mode = ErrorBoundMode::kValueRangeRelative;
      p.error_bound = kRelEb;
      zfpref::ZfpStats stats;
      const auto stream = zfpref::ZfpCompress(f.values, f.dims, p, &stats);
      const auto recon = zfpref::ZfpDecompress(stream);
      const auto d = metrics::ComputeDistortion<float>(f.values, recon);
      EXPECT_LE(d.max_abs_error, stats.absolute_bound)
          << "ZFP " << data::AppName(app()) << "/" << f.name;
    }
    {
      const auto stream = lzref::LzCompressFloats(f.values);
      const auto recon = lzref::LzDecompressFloats(stream);
      ASSERT_EQ(recon.size(), f.size());
      for (std::size_t i = 0; i < f.size(); ++i) {
        ASSERT_EQ(std::bit_cast<std::uint32_t>(recon[i]),
                  std::bit_cast<std::uint32_t>(f.values[i]))
            << "lossless " << f.name;
      }
    }
  }
}

TEST_P(CrossCodec, Table3OrderingHolds) {
  // Harmonic-mean CR over the app's fields: SZ >= ZFP >= SZx >= ~lossless.
  std::vector<double> szx_r, zfp_r, sz_r, lz_r;
  for (const auto& f : data::GenerateApp(app(), kScale)) {
    Params ps;
    ps.mode = ErrorBoundMode::kValueRangeRelative;
    ps.error_bound = kRelEb;
    szx_r.push_back(static_cast<double>(f.size_bytes()) /
                    static_cast<double>(Compress<float>(f.values, ps).size()));
    zfpref::ZfpParams pz;
    pz.mode = ErrorBoundMode::kValueRangeRelative;
    pz.error_bound = kRelEb;
    zfp_r.push_back(
        static_cast<double>(f.size_bytes()) /
        static_cast<double>(zfpref::ZfpCompress(f.values, f.dims, pz).size()));
    szref::SzParams pq;
    pq.mode = ErrorBoundMode::kValueRangeRelative;
    pq.error_bound = kRelEb;
    sz_r.push_back(
        static_cast<double>(f.size_bytes()) /
        static_cast<double>(szref::SzCompress(f.values, f.dims, pq).size()));
    lz_r.push_back(
        static_cast<double>(f.size_bytes()) /
        static_cast<double>(lzref::LzCompressFloats(f.values).size()));
  }
  const double szx = metrics::HarmonicMean(szx_r);
  const double zfp = metrics::HarmonicMean(zfp_r);
  const double sz = metrics::HarmonicMean(sz_r);
  const double lz = metrics::HarmonicMean(lz_r);
  EXPECT_GT(sz, zfp) << data::AppName(app());
  EXPECT_GT(zfp, szx * 0.95) << data::AppName(app());
  EXPECT_GT(szx, lz) << data::AppName(app());
}

TEST_P(CrossCodec, HybridNeverLosesToPlainSzxByMuchAndOftenWins) {
  double plain_total = 0.0, hybrid_total = 0.0;
  for (const auto& f : data::GenerateApp(app(), kScale)) {
    Params p;
    p.mode = ErrorBoundMode::kValueRangeRelative;
    p.error_bound = kRelEb;
    plain_total += static_cast<double>(Compress<float>(f.values, p).size());
    hybrid_total +=
        static_cast<double>(hybrid::Compress<float>(f.values, p).size());
  }
  // Per-stream the wrapper costs 8 bytes; over an app hybrid must not be
  // more than marginally larger and typically is smaller.
  EXPECT_LT(hybrid_total, plain_total * 1.01) << data::AppName(app());
}

INSTANTIATE_TEST_SUITE_P(Apps, CrossCodec, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           std::string name(data::AppName(
                               static_cast<data::App>(param_info.param)));
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(
                                 static_cast<unsigned char>(c));
                           });
                           return name;
                         });

}  // namespace
}  // namespace szx
