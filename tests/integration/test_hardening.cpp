// Regression tests for the decode-path hardening pass (docs/static-analysis.md):
// each test forges the specific corrupt stream that used to reach an unchecked
// allocation or a wrapped size computation, and pins down that the decoder now
// rejects it with szx::Error instead of over-allocating or scanning out of
// bounds.  Header field offsets below mirror the packed structs in the codec
// sources; the static_asserts on compressed sizes keep them honest.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "core/common.hpp"
#include "core/omp_codec.hpp"
#include "core/streaming.hpp"
#include "lzref/lzref.hpp"
#include "szref/sz2.hpp"
#include "szref/szref.hpp"
#include "zfpref/zfpref.hpp"

namespace szx {
namespace {

// Little-endian field patcher; keeps the test lint-clean (no raw memcpy).
void PokeU64(ByteBuffer& buf, std::size_t off, std::uint64_t v) {
  ASSERT_LE(off + 8, buf.size());
  for (std::size_t i = 0; i < 8; ++i) {
    buf[off + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

std::vector<float> Ramp(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<float>(i) * 0.25f;
  }
  return v;
}

// A crafted original_bytes far beyond what the token stream could expand to
// (cap: 255 output bytes per stream byte) used to drive a multi-gigabyte
// reserve() before any token was validated.
TEST(Hardening, LzrefHugeOriginalBytesClaimRejected) {
  constexpr std::string_view kText = "hello hello hello hello";
  ByteBuffer stream =
      lzref::LzCompress(std::as_bytes(std::span<const char>(kText)));
  // LzHeader: magic[4] version reserved[3] | original_bytes @ 8.
  PokeU64(stream, 8, std::uint64_t{1} << 62);
  EXPECT_THROW(lzref::LzDecompress(stream), Error);
  PokeU64(stream, 8, ~std::uint64_t{0});
  EXPECT_THROW(lzref::LzDecompress(stream), Error);
}

// dims {2^63+1, 2, 1} multiply out to 2 mod 2^64, so the pre-fix equality
// check against num_elements == 2 passed and the Lorenzo loops ran with
// nz = 2^63+1.  The dims product is now overflow-checked.
TEST(Hardening, SzrefWrappedDimsProductRejected) {
  const std::vector<float> data = Ramp(2);
  const std::vector<std::size_t> dims{2};
  szref::SzParams p;
  p.error_bound = 1e-3;
  ByteBuffer stream = szref::SzCompress(data, dims, p);
  // SzHeader: magic[4] version ndims quant_bits eb_mode | eb_user @ 8,
  // eb_abs @ 16, dims[3] @ 24, num_elements @ 48.
  stream[5] = std::byte{3};  // ndims
  PokeU64(stream, 24, (std::uint64_t{1} << 63) + 1);
  PokeU64(stream, 32, 2);
  PokeU64(stream, 40, 1);
  EXPECT_THROW(szref::SzDecompress(stream), Error);
}

TEST(Hardening, Sz2WrappedDimsProductRejected) {
  const std::vector<float> data = Ramp(2);
  const std::vector<std::size_t> dims{2};
  szref::Sz2Params p;
  p.error_bound = 1e-3;
  ByteBuffer stream = szref::Sz2Compress(data, dims, p);
  // Sz2Header: magic[4] version ndims quant_bits eb_mode block_side @ 8,
  // reserved @ 12, eb_user @ 16, eb_abs @ 24, dims[3] @ 32.
  stream[5] = std::byte{3};  // ndims
  PokeU64(stream, 32, (std::uint64_t{1} << 63) + 1);
  PokeU64(stream, 40, 2);
  PokeU64(stream, 48, 1);
  EXPECT_THROW(szref::Sz2Decompress(stream), Error);
}

// num_elements claims 2^61 floats out of a few payload bytes; the pre-fix
// code allocated the output vector before looking at payload_bytes at all.
// CheckedAlloc now bounds the count by remaining * 512 (>= 1 bit per
// up-to-64-element block) and rejects.
TEST(Hardening, ZfprefImplausibleElementCountRejected) {
  const std::vector<float> data = Ramp(32);
  const std::vector<std::size_t> dims{32};
  zfpref::ZfpParams p;
  p.error_bound = 1e-3;
  ByteBuffer stream = zfpref::ZfpCompress(data, dims, p);
  // ZfpHeader: magic[4] version ndims reserved[2] | eb_user @ 8,
  // eb_abs @ 16, dims[3] @ 24, num_elements @ 48, payload_bytes @ 56.
  PokeU64(stream, 24, std::uint64_t{1} << 61);  // dims[0]
  PokeU64(stream, 48, std::uint64_t{1} << 61);  // num_elements (product OK)
  EXPECT_THROW(zfpref::ZfpDecompress(stream), Error);
}

TEST(Hardening, ZfpFixedRateTruncatedAndOversizedRejected) {
  const std::vector<float> data = Ramp(64);
  const std::vector<std::size_t> dims{64};
  ByteBuffer stream = zfpref::ZfpCompressFixedRate(data, dims, 8.0);
  // ZfpFixedHeader is 48 bytes; cutting just past it leaves fewer payload
  // bits than num_blocks * block_bits requires.
  EXPECT_THROW(
      zfpref::ZfpDecompressFixedRate(ByteSpan(stream.data(), 49)), Error);
  // A huge element count must be rejected by the exact bit-budget check,
  // not by attempting the allocation.
  ByteBuffer forged = stream;
  // ZfpFixedHeader: magic[4] version ndims reserved[2] | block_bits @ 8,
  // reserved2 @ 12, dims[3] @ 16, num_elements @ 40.
  PokeU64(forged, 16, std::uint64_t{1} << 61);  // dims[0]
  PokeU64(forged, 40, std::uint64_t{1} << 61);  // num_elements
  EXPECT_THROW(zfpref::ZfpDecompressFixedRate(forged), Error);
}

// The frame checksum only proves the frame arrived intact, not that its
// header tells the truth.  A frame whose num_elements field is inflated
// (with the checksum recomputed to match) used to resize the output vector
// before the section extents were validated against the frame size.
TEST(Hardening, StreamingLyingFrameElementCountRejected) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  StreamWriter<float> writer(p);
  const std::vector<float> chunk = Ramp(500);
  writer.Append(chunk);
  ByteBuffer container = std::move(writer).Finish();
  // Layout: container header (8) | frame_bytes u64 | checksum u64 | frame.
  // Inside the frame the SZx Header puts num_elements at offset 40.
  constexpr std::size_t kFrameOff = 8 + 16;
  PokeU64(container, kFrameOff + 40, std::uint64_t{1} << 61);
  PokeU64(container, 16, Fnv1a64(ByteSpan(container).subspan(kFrameOff)));
  StreamReader<float> reader(container);
  std::vector<float> out;
  EXPECT_THROW((void)reader.Next(out), Error);
}

// The chunk directory (frame_index.hpp) is derived from the type-bit and
// zsize sections and validated against the header totals before any block
// decodes.  A forged type-bit section -- internally parseable but lying
// about how many blocks are constant -- must be rejected by both the serial
// and the parallel decoder, not silently walked with skewed counters.
TEST(Hardening, SzxForgedTypeBitsRejectedByBothDecoders) {
  const std::vector<float> data = Ramp(4096);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  ByteBuffer stream = Compress<float>(data, p);
  const Header h = PeekHeader(stream);
  ASSERT_EQ(h.flags & kFlagRawPassthrough, 0u);
  ASSERT_GT(h.num_blocks, 0u);
  // Flip block 0's type bit: the per-chunk popcount tallies no longer agree
  // with header.num_constant.
  stream[sizeof(Header)] ^= std::byte{1};
  EXPECT_THROW(Decompress<float>(stream), Error);
  EXPECT_THROW(DecompressOmp<float>(stream, 4), Error);
}

// A zsize table whose entries are individually plausible but whose sum no
// longer matches header.payload_bytes (the "lying directory") must fail the
// payload prefix-sum validation in both decoders.
TEST(Hardening, SzxLyingZsizeTableRejectedByBothDecoders) {
  const std::vector<float> data = Ramp(8192);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  ByteBuffer stream = Compress<float>(data, p);
  const Header h = PeekHeader(stream);
  ASSERT_EQ(h.flags & kFlagRawPassthrough, 0u);
  const std::uint64_t nnc = h.num_blocks - h.num_constant;
  ASSERT_GT(nnc, 0u);
  // Section layout: header | type_bits | const_mu | ncb_req | ncb_mu |
  // ncb_zsize | payload (format.hpp).
  const std::size_t zsize_off = sizeof(Header) + (h.num_blocks + 7) / 8 +
                                h.num_constant * sizeof(float) + nnc +
                                nnc * sizeof(float);
  ASSERT_LT(zsize_off + 2, stream.size());
  stream[zsize_off] ^= std::byte{1};  // first entry off by one byte
  EXPECT_THROW(Decompress<float>(stream), Error);
  EXPECT_THROW(DecompressOmp<float>(stream, 4), Error);
}

// The header's reserved bytes (offsets 9..15 and 20..23) must be zero on
// the wire: a forged stream with any of them set is rejected, which keeps
// them available for future format versions instead of silently carrying
// attacker-controlled garbage through every decoder.
TEST(Hardening, SzxNonzeroReservedBytesRejected) {
  const std::vector<float> data = Ramp(2048);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  const ByteBuffer clean = Compress<float>(data, p);
  ASSERT_NO_THROW(ParseHeader(clean));
  for (const std::size_t off : {9u, 12u, 15u, 20u, 23u}) {
    ByteBuffer forged = clean;
    forged[off] = std::byte{0x01};
    EXPECT_THROW(ParseHeader(forged), Error) << "reserved byte " << off;
    EXPECT_THROW(Decompress<float>(forged), Error) << "reserved byte " << off;
  }
}

}  // namespace
}  // namespace szx
