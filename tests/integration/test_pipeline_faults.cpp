// Satellite battery: fault-injection through the real-file pipeline.
//
// A compressed v2 stream is staged to disk chunk-by-chunk through
// iosim::ChunkFileWriter, with a mutator applying a seeded testkit fault
// class mid-pipeline, and read back through ChunkFileReader with transient
// read faults forcing its bounded retry.  The reassembled bytes must equal
// the serially damaged stream exactly (retries lose and duplicate
// nothing), and SalvageDecode of the reassembled stream must produce the
// byte-identical DamageReport the serial in-memory path produces -- the
// pipeline adds no damage and hides none.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/compressor.hpp"
#include "iosim/file_backend.hpp"
#include "resilience/salvage.hpp"
#include "testkit/fault_injector.hpp"

namespace szx {
namespace {

std::vector<float> MakeSignal(std::size_t n, std::uint64_t seed) {
  std::vector<float> data(n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> noise(-0.05F, 0.05F);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = std::cos(static_cast<float>(i) * 0.003F) + noise(rng);
  }
  return data;
}

ByteBuffer CompressV2(const std::vector<float>& data) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  p.block_size = 64;
  p.integrity = true;  // format v2: salvage gets a full chunk directory
  return Compress<float>(data, p);
}

std::string TempPath(std::uint64_t tag) {
  return testing::TempDir() + "szx_pipeline_faults_" + std::to_string(tag) +
         "_" + std::to_string(::getpid()) + ".bin";
}

/// Streams `damaged` to disk in fixed-size pipeline chunks: the mutator
/// replaces chunk `index`'s bytes with the damaged stream's bytes at the
/// same offsets, which is exactly what a mid-pipeline fault at that stage
/// does to an in-flight buffer (including shrinking the tail chunks away
/// entirely for truncation faults).
void StagePipelined(const std::string& path, const ByteBuffer& original,
                    const ByteBuffer& damaged, std::size_t chunk_bytes) {
  iosim::ChunkFileWriter out(path);
  out.set_mutator([&damaged, chunk_bytes](std::uint64_t index,
                                          std::vector<std::byte>& chunk) {
    const std::uint64_t begin = index * chunk_bytes;
    if (begin >= damaged.size()) {
      chunk.clear();
      return;
    }
    const std::uint64_t n =
        std::min<std::uint64_t>(chunk.size(), damaged.size() - begin);
    chunk.assign(damaged.begin() + static_cast<std::ptrdiff_t>(begin),
                 damaged.begin() + static_cast<std::ptrdiff_t>(begin + n));
  });
  for (std::size_t pos = 0; pos < original.size(); pos += chunk_bytes) {
    const std::size_t n = std::min(chunk_bytes, original.size() - pos);
    out.WriteChunk(std::span<const std::byte>(original).subspan(pos, n));
  }
  out.Close();
}

/// Reads the staged file back through the retrying reader.
ByteBuffer ReadBackWithRetries(const std::string& path,
                               std::size_t chunk_bytes,
                               iosim::FileIoStats* stats) {
  iosim::TransientReadFaults faults;
  faults.period = 2;  // every 2nd chunk fails once and must be retried
  faults.max_attempts = 3;
  iosim::ChunkFileReader in(path, faults);
  ByteBuffer out;
  std::vector<std::byte> buf(chunk_bytes);
  for (std::size_t n = in.ReadChunk(buf); n != 0; n = in.ReadChunk(buf)) {
    out.insert(out.end(), buf.begin(),
               buf.begin() + static_cast<std::ptrdiff_t>(n));
  }
  *stats = in.stats();
  return out;
}

TEST(PipelineFaults, FileBackendReportsMatchSerialForEveryFaultClass) {
  const auto data = MakeSignal(20'000, 11);
  const ByteBuffer original = CompressV2(data);
  const std::size_t chunk_bytes = original.size() / 7 + 1;

  for (const testkit::FaultClass cls : testkit::kAllFaultClasses) {
    for (const std::uint64_t seed : {1ULL, 17ULL, 4242ULL}) {
      SCOPED_TRACE(std::string(testkit::FaultClassName(cls)) + "/seed=" +
                   std::to_string(seed));

      // Serial reference: damage the stream in memory, salvage it.
      ByteBuffer damaged = original;
      const testkit::FaultRecord record =
          testkit::InjectFault(damaged, cls, seed);
      ASSERT_FALSE(record.ranges.empty());
      const resilience::SalvageResult<float> serial =
          resilience::SalvageDecode<float>(damaged);

      // Pipelined path: same damage lands mid-pipeline on the way to disk,
      // transient read faults hit on the way back.
      const std::string path =
          TempPath(seed * 8 + static_cast<std::uint64_t>(cls));
      StagePipelined(path, original, damaged, chunk_bytes);
      iosim::FileIoStats stats;
      const ByteBuffer reassembled =
          ReadBackWithRetries(path, chunk_bytes, &stats);
      std::remove(path.c_str());

      // Retry neither lost nor duplicated a chunk: bytes are identical.
      ASSERT_EQ(reassembled.size(), damaged.size());
      EXPECT_TRUE(
          std::equal(reassembled.begin(), reassembled.end(), damaged.begin()));
      EXPECT_EQ(stats.retries, stats.chunks / 2);
      EXPECT_EQ(stats.bytes, damaged.size());

      // Identical DamageReport, via its canonical JSON rendering.
      const resilience::SalvageResult<float> pipelined =
          resilience::SalvageDecode<float>(reassembled);
      EXPECT_EQ(pipelined.report.usable, serial.report.usable);
      EXPECT_EQ(pipelined.report.ToJson(), serial.report.ToJson());
      EXPECT_EQ(pipelined.data, serial.data);
    }
  }
}

TEST(PipelineFaults, CleanPipelineStaysClean) {
  const auto data = MakeSignal(8'000, 5);
  const ByteBuffer original = CompressV2(data);
  const std::size_t chunk_bytes = original.size() / 4 + 1;

  const std::string path = TempPath(0);
  StagePipelined(path, original, original, chunk_bytes);
  iosim::FileIoStats stats;
  const ByteBuffer reassembled =
      ReadBackWithRetries(path, chunk_bytes, &stats);
  std::remove(path.c_str());

  ASSERT_EQ(reassembled, original);
  EXPECT_GT(stats.retries, 0U);  // the faults did fire; retry absorbed them
  const resilience::SalvageResult<float> salvaged =
      resilience::SalvageDecode<float>(reassembled);
  EXPECT_TRUE(salvaged.report.usable);
  EXPECT_TRUE(salvaged.report.clean);
  EXPECT_EQ(salvaged.report.blocks_lost, 0U);
}

}  // namespace
}  // namespace szx
