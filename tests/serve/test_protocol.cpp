// Wire-protocol unit tests: frame round trips, framing-loss detection,
// tolerated-unknown fields, and the body sub-layouts (CompressSpec,
// QuerySpec, report+data).
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

namespace szx::serve {
namespace {

ByteBuffer Bytes(std::initializer_list<int> values) {
  ByteBuffer out;
  for (const int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Protocol, RequestFrameRoundTrips) {
  RequestHeader h;
  h.opcode = Opcode::kDecompress;
  h.flags = kFlagNoDegrade;
  h.request_id = 0xdeadbeef12345678ull;
  h.deadline_ms = 250;
  const ByteBuffer body = Bytes({1, 2, 3, 4, 5});

  ByteBuffer frame;
  AppendRequestFrame(frame, h, body);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + body.size() + kChecksumBytes);

  const RequestHeader parsed = ParseRequestHeader(frame);
  EXPECT_EQ(parsed.version, kProtocolVersion);
  EXPECT_EQ(parsed.opcode, Opcode::kDecompress);
  EXPECT_EQ(parsed.flags, kFlagNoDegrade);
  EXPECT_EQ(parsed.request_id, h.request_id);
  EXPECT_EQ(parsed.deadline_ms, 250u);
  EXPECT_EQ(parsed.body_bytes, body.size());

  // The trailing checksum covers exactly the body bytes.
  const ByteSpan tail = ByteSpan(frame).subspan(kFrameHeaderBytes + body.size());
  EXPECT_EQ(ByteCursor(tail).Read<std::uint64_t>(), BodyChecksum(body));
}

TEST(Protocol, ResponseFrameRoundTrips) {
  ResponseHeader h;
  h.status = Status::kBusy;
  h.flags = kFlagBodyDamaged;
  h.request_id = 7;
  h.info = 123;  // retry backoff hint
  ByteBuffer frame;
  AppendResponseFrame(frame, h, {});

  const ResponseHeader parsed = ParseResponseHeader(frame);
  EXPECT_EQ(parsed.status, Status::kBusy);
  EXPECT_EQ(parsed.flags, kFlagBodyDamaged);
  EXPECT_EQ(parsed.request_id, 7u);
  EXPECT_EQ(parsed.info, 123u);
  EXPECT_EQ(parsed.body_bytes, 0u);
}

TEST(Protocol, BadMagicAndVersionAreFramingLoss) {
  RequestHeader h;
  ByteBuffer frame;
  AppendRequestFrame(frame, h, {});

  ByteBuffer bad_magic = frame;
  bad_magic[0] = std::byte{'X'};
  EXPECT_THROW((void)ParseRequestHeader(bad_magic), Error);

  ByteBuffer bad_version = frame;
  bad_version[4] = std::byte{99};
  EXPECT_THROW((void)ParseRequestHeader(bad_version), Error);

  EXPECT_THROW((void)ParseRequestHeader(ByteSpan(frame).first(10)), Error);

  // A response frame is not a request frame (and vice versa).
  ByteBuffer rsp;
  AppendResponseFrame(rsp, ResponseHeader{}, {});
  EXPECT_THROW((void)ParseRequestHeader(rsp), Error);
  EXPECT_THROW((void)ParseResponseHeader(frame), Error);
}

TEST(Protocol, UnknownOpcodeSurvivesParsing) {
  RequestHeader h;
  ByteBuffer frame;
  AppendRequestFrame(frame, h, {});
  frame[5] = std::byte{200};  // opcode byte
  const RequestHeader parsed = ParseRequestHeader(frame);  // must not throw
  EXPECT_FALSE(IsKnownOpcode(static_cast<std::uint8_t>(parsed.opcode)));
  EXPECT_TRUE(IsKnownOpcode(static_cast<std::uint8_t>(Opcode::kQuery)));
}

TEST(Protocol, CompressSpecRoundTrips) {
  CompressSpec spec;
  spec.dtype = DataType::kFloat64;
  spec.mode = ErrorBoundMode::kAbsolute;
  spec.integrity = 1;
  spec.block_size = 64;
  spec.error_bound = 1e-4;

  ByteBuffer body;
  AppendCompressSpec(body, spec);
  ASSERT_EQ(body.size(), kCompressSpecBytes);

  ByteCursor cur(body);
  const CompressSpec parsed = ReadCompressSpec(cur);
  EXPECT_EQ(parsed.dtype, DataType::kFloat64);
  EXPECT_EQ(parsed.mode, ErrorBoundMode::kAbsolute);
  EXPECT_EQ(parsed.integrity, 1);
  EXPECT_EQ(parsed.block_size, 64u);
  EXPECT_EQ(parsed.error_bound, 1e-4);
  EXPECT_TRUE(cur.AtEnd());

  // Out-of-range enum values are rejected (the server answers kBadRequest).
  ByteBuffer bad = body;
  bad[0] = std::byte{9};
  ByteCursor bad_cur(bad);
  EXPECT_THROW((void)ReadCompressSpec(bad_cur), Error);
}

TEST(Protocol, QuerySpecRoundTrips) {
  QuerySpec spec;
  spec.field = 3;
  spec.timestep = 17;
  ByteBuffer body;
  AppendQuerySpec(body, spec);
  ASSERT_EQ(body.size(), kQuerySpecBytes);
  ByteCursor cur(body);
  const QuerySpec parsed = ReadQuerySpec(cur);
  EXPECT_EQ(parsed.field, 3u);
  EXPECT_EQ(parsed.timestep, 17u);

  ByteCursor truncated(ByteSpan(body).first(7));
  EXPECT_THROW((void)ReadQuerySpec(truncated), Error);
}

TEST(Protocol, ReportAndDataRoundTrips) {
  const std::string report = "{\"usable\":true}";
  const ByteBuffer data = Bytes({9, 8, 7});
  ByteBuffer body;
  AppendReportAndData(body, report, data);

  const ReportAndData split = SplitReportAndData(body);
  EXPECT_EQ(split.report, report);
  ASSERT_EQ(split.data.size(), data.size());
  EXPECT_TRUE(std::equal(split.data.begin(), split.data.end(), data.begin()));

  // Truncated report length is rejected.
  EXPECT_THROW((void)SplitReportAndData(ByteSpan(body).first(3)), Error);
}

TEST(Protocol, ErrorJsonEscapesQuotesBackslashesAndControlBytes) {
  EXPECT_EQ(ErrorJson("plain text"), "{\"error\":\"plain text\"}");
  EXPECT_EQ(ErrorJson("a\"b\\c"), "{\"error\":\"a\\\"b\\\\c\"}");
  // Every byte below 0x20 -- including \r, \t, and embedded NUL -- must be
  // \u-escaped, or exception text would produce invalid JSON bodies.
  std::string ctl = "x\n\r\ty";
  ctl.push_back('\0');
  ctl.push_back('\x1f');
  EXPECT_EQ(ErrorJson(ctl),
            "{\"error\":\"x\\u000a\\u000d\\u0009y\\u0000\\u001f\"}");
}

TEST(Protocol, StatusAndOpcodeNamesAreStable) {
  EXPECT_STREQ(OpcodeName(Opcode::kSalvage), "salvage");
  EXPECT_STREQ(StatusName(Status::kDeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(StatusName(Status::kPartial), "partial");
}

}  // namespace
}  // namespace szx::serve
