// Shared harness for the serve test suites: a Server plus per-connection
// threads over bounded in-memory transports.
#pragma once

#include <memory>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/transport.hpp"

namespace szx::serve::testutil {

class ServeHarness {
 public:
  explicit ServeHarness(ServerConfig config = {},
                        std::size_t pipe_capacity = std::size_t{64} << 10)
      : pipe_capacity_(pipe_capacity), server_(config) {}

  ~ServeHarness() { Shutdown(); }

  /// Opens a connection served on its own thread; returns the client end.
  MemoryTransport& Connect() {
    pairs_.push_back(MakeMemoryTransportPair(pipe_capacity_));
    MemoryTransport* server_end = pairs_.back().server.get();
    threads_.emplace_back(
        [this, server_end] { server_.ServeConnection(*server_end); });
    return *pairs_.back().client;
  }

  /// Stops the server and joins every connection thread (idempotent).
  void Shutdown() {
    server_.Stop();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  Server& server() { return server_; }

 private:
  std::size_t pipe_capacity_;
  Server server_;
  std::vector<TransportPair> pairs_;
  std::vector<std::thread> threads_;
};

}  // namespace szx::serve::testutil
