// FdTransport contract tests over real socket fds (AF_UNIX socketpair).
// The load-bearing property is the Transport blocking contract
// (src/serve/transport.hpp): Close() must wake a thread parked in a
// blocking Read -- the server's Stop() and write-poison paths depend on it
// -- and must be idempotent and safe to race against Read/Write.  A bare
// ::close would NOT provide this (a closed fd does not unblock a
// concurrent ::read on Linux) and would free the fd number while pool
// workers may still write; the shutdown-then-close-in-destructor design
// under test here is the fix.
#include "serve_net.hpp"

#include <sys/socket.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

namespace szx::servenet {
namespace {

class FdTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A Write against a shut-down peer must surface as TransportError,
    // not SIGPIPE (the daemon ignores SIGPIPE for the same reason).
    std::signal(SIGPIPE, SIG_IGN);
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }

  int fds_[2] = {-1, -1};
};

TEST_F(FdTransportTest, RoundTripsBytes) {
  FdTransport a(fds_[0]);
  FdTransport b(fds_[1]);
  const std::array<std::byte, 5> out = {std::byte{1}, std::byte{2},
                                        std::byte{3}, std::byte{4},
                                        std::byte{5}};
  a.Write(ByteSpan(out));
  std::array<std::byte, 5> in{};
  ASSERT_EQ(b.Read(in), in.size());
  EXPECT_EQ(in, out);
}

TEST_F(FdTransportTest, CloseWakesBlockedReaderWithEof) {
  FdTransport a(fds_[0]);
  FdTransport b(fds_[1]);

  std::atomic<bool> woke{false};
  std::size_t got = 99;
  std::thread reader([&] {
    std::array<std::byte, 16> buf{};
    got = a.Read(buf);  // parks: the peer never writes
    // szx-mo: relaxed -- standalone progress flag; `got` is published by
    // the join, not by this store.
    woke.store(true, std::memory_order_relaxed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // szx-mo: relaxed -- heuristic not-yet-woken probe, no data read off it.
  EXPECT_FALSE(woke.load(std::memory_order_relaxed));

  a.Close();  // must unblock the reader as orderly EOF, not hang or throw
  reader.join();
  // szx-mo: relaxed -- the join above already ordered the reader's writes.
  EXPECT_TRUE(woke.load(std::memory_order_relaxed));
  EXPECT_EQ(got, 0u);

  a.Close();  // idempotent
}

TEST_F(FdTransportTest, CloseFailsLocalWritesAndEofsThePeer) {
  FdTransport a(fds_[0]);
  FdTransport b(fds_[1]);
  a.Close();
  const std::array<std::byte, 4> data{};
  EXPECT_THROW(a.Write(ByteSpan(data)), serve::TransportError);
  std::array<std::byte, 4> buf{};
  EXPECT_EQ(b.Read(buf), 0u);  // peer sees EOF once the buffer drains
}

TEST_F(FdTransportTest, PeerCloseUnblocksLocalReader) {
  FdTransport a(fds_[0]);
  auto b = std::make_unique<FdTransport>(fds_[1]);

  std::size_t got = 99;
  std::thread reader([&] {
    std::array<std::byte, 16> buf{};
    got = a.Read(buf);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b->Close();
  reader.join();
  EXPECT_EQ(got, 0u);
}

}  // namespace
}  // namespace szx::servenet
