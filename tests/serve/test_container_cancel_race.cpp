// 100-seed property test: concurrent ContainerReader::DecompressRange
// queries through a shared ChunkCache, racing a serve-style cancellation
// (an exec::CancelToken armed from another thread mid-query).  Invariants,
// per seed:
//
//   - a query either completes with bit-exact output or unwinds with
//     szx::Cancelled -- never a crash, a torn result, or a wedged cache;
//   - after the race, a clean (uncancelled) query over the same reader and
//   - cache still decodes bit-exactly (cancellation must not poison shared
//     state);
//   - cache counter conservation holds (hits + misses == lookups).
//
// Runs in the TSan stage at SZX_THREADS=4 (tests/CMakeLists.txt), where
// the executor's pool workers, the cache shards, and the cancellation
// unwind all interleave for real.
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/chunk_cache.hpp"
#include "core/container.hpp"
#include "core/executor.hpp"

namespace szx {
namespace {

ByteBuffer BuildContainer(std::vector<float>& reference) {
  constexpr std::size_t kElems = 32768;
  reference.resize(kElems);
  for (std::size_t i = 0; i < kElems; ++i) {
    reference[i] = std::sin(static_cast<float>(i) * 0.02f) * 50.0f;
  }
  ContainerWriter writer;
  ContainerWriter::FieldSpec spec;
  spec.name = "rho";
  spec.params.integrity = true;
  spec.elements_per_timestep = kElems;
  spec.chunk_elements = 2048;  // 16 chunks: plenty of cancellation points
  const std::uint32_t field = writer.AddField(spec, DataType::kFloat32);
  writer.AppendTimestep<float>(field, reference);
  return writer.Finish();
}

TEST(ContainerCancelRace, HundredSeedsConcurrentQueriesVsCancellation) {
  std::vector<float> reference;
  const ByteBuffer container = BuildContainer(reference);
  ChunkCache cache(std::size_t{1} << 20);
  ContainerReader reader(container, &cache);

  // Reference decode (uncached path correctness anchor).
  {
    std::vector<float> out(reference.size());
    reader.DecompressRange<float>(0, 0, 0, out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      ASSERT_NEAR(out[i], reference[i], 0.11f) << i;
    }
  }
  const std::vector<float> truth = reader.DecompressTimestep<float>(0, 0);

  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    exec::CancelToken token;
    std::atomic<int> queries_started{0};

    auto query_thread = [&](std::uint64_t first, std::size_t count,
                            std::atomic<bool>* was_cancelled) {
      exec::ScopedCancel scope(&token);
      std::vector<float> out(count);
      // szx-mo: release; pairs with the canceller's acquire spin below
      queries_started.fetch_add(1, std::memory_order_release);
      try {
        reader.DecompressRange<float>(0, 0, first, out);
        for (std::size_t i = 0; i < count; ++i) {
          // Completed queries must be bit-exact despite the race.
          ASSERT_EQ(out[i], truth[first + i]) << "seed " << seed;
        }
      } catch (const Cancelled&) {
        // szx-mo: relaxed; read back only after join
        was_cancelled->store(true, std::memory_order_relaxed);
      }
    };

    std::atomic<bool> c1{false};
    std::atomic<bool> c2{false};
    // Seed-dependent, overlapping ranges (both cross chunk boundaries).
    const std::uint64_t first1 = (seed * 997) % 16384;
    const std::uint64_t first2 = (seed * 131) % 8192 + 8192;
    std::thread q1(query_thread, first1, std::size_t{12000}, &c1);
    std::thread q2(query_thread, first2, std::size_t{12000}, &c2);
    std::thread canceller([&] {
      // szx-mo: acquire; sees both query threads' release increments
      while (queries_started.load(std::memory_order_acquire) < 2) {
        std::this_thread::yield();
      }
      // Seed-staggered fuse: sometimes pre-decode, sometimes mid-decode,
      // sometimes after completion.
      for (std::uint64_t spin = 0; spin < seed * 1500; ++spin) {
        // szx-mo: seq_cst signal fence; compiler-only barrier keeping the delay loop
        std::atomic_signal_fence(std::memory_order_seq_cst);  // keep the loop
      }
      token.Cancel();
    });
    q1.join();
    q2.join();
    canceller.join();

    // Shared state must be intact: a clean query still decodes bit-exactly.
    std::vector<float> verify(4096);
    reader.DecompressRange<float>(0, 0, (seed * 37) % 28000, verify);
    for (std::size_t i = 0; i < verify.size(); ++i) {
      ASSERT_EQ(verify[i], truth[(seed * 37) % 28000 + i]) << "seed " << seed;
    }
  }

  const ChunkCacheStats stats = cache.Stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_GE(stats.insertions, 1u);
}

}  // namespace
}  // namespace szx
