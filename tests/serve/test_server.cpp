// Server behavior suite: job round trips for every opcode, the typed-error
// contract, deadlines, overload shedding with backoff + budget accounting,
// backpressure under a saturating client, degradation of damaged bodies,
// and shutdown semantics.  Everything runs over bounded MemoryTransport
// pairs, so the blocking/backpressure behavior is deterministic.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "core/container.hpp"
#include "serve_test_util.hpp"

namespace szx::serve {
namespace {

using testutil::ServeHarness;

std::vector<float> SineData(std::size_t n) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(static_cast<float>(i) * 0.01f) * 100.0f;
  }
  return v;
}

ByteBuffer CompressBody(std::span<const float> data, bool integrity = false) {
  CompressSpec spec;
  spec.integrity = integrity ? 1 : 0;
  ByteBuffer body;
  AppendCompressSpec(body, spec);
  ByteWriter(body).WriteBytes(data.data(), data.size_bytes());
  return body;
}

std::vector<float> ToFloats(ByteSpan bytes) {
  std::vector<float> out(bytes.size() / sizeof(float));
  ByteCursor(bytes).ReadSpan(std::span<float>(out));
  return out;
}

/// Writes a request frame whose body byte at `flip_offset` is corrupted
/// AFTER the checksum was computed -- a deterministic wire-damage stand-in.
void SendDamaged(Transport& t, Opcode op, ByteSpan body,
                 std::size_t flip_offset, std::uint16_t flags = 0) {
  RequestHeader h;
  h.opcode = op;
  h.flags = flags;
  h.request_id = 99;
  ByteBuffer frame;
  AppendRequestFrame(frame, h, body);
  frame.at(kFrameHeaderBytes + flip_offset) ^= std::byte{0x40};
  t.Write(frame);
}

TEST(Server, PingEchoesBody) {
  ServeHarness h;
  Client client(h.Connect());
  const ByteBuffer body = {std::byte{1}, std::byte{2}, std::byte{3}};
  const ClientResponse rsp = client.Call(Opcode::kPing, body);
  EXPECT_EQ(rsp.header.status, Status::kOk);
  EXPECT_TRUE(rsp.body_checksum_ok);
  EXPECT_EQ(rsp.body, body);
}

TEST(Server, CompressDecompressRoundTripsThroughService) {
  ServeHarness h;
  Client client(h.Connect());
  const std::vector<float> data = SineData(10000);

  const ClientResponse comp =
      client.Call(Opcode::kCompress, CompressBody(data));
  ASSERT_EQ(comp.header.status, Status::kOk);
  ASSERT_TRUE(comp.body_checksum_ok);
  ASSERT_FALSE(comp.body.empty());

  // The service's stream equals a local compression with the same Params.
  const ByteBuffer local = Compress<float>(data, Params{});
  EXPECT_EQ(comp.body, local);

  const ClientResponse dec = client.Call(Opcode::kDecompress, comp.body);
  ASSERT_EQ(dec.header.status, Status::kOk);
  const std::vector<float> recon = ToFloats(dec.body);
  const std::vector<float> local_recon = Decompress<float>(local);
  EXPECT_EQ(recon, local_recon);
}

TEST(Server, CompressRejectsBadSpecAndRaggedPayload) {
  ServeHarness h;
  Client client(h.Connect());

  // Truncated spec.
  const ByteBuffer tiny = {std::byte{0}, std::byte{1}};
  EXPECT_EQ(client.Call(Opcode::kCompress, tiny).header.status,
            Status::kBadRequest);

  // Whole spec, ragged element payload (not a multiple of sizeof(float)).
  ByteBuffer body;
  AppendCompressSpec(body, CompressSpec{});
  body.push_back(std::byte{0});
  EXPECT_EQ(client.Call(Opcode::kCompress, body).header.status,
            Status::kBadRequest);

  // Invalid params (zero error bound) surface as kBadRequest, not a closed
  // connection.
  CompressSpec spec;
  spec.error_bound = 0.0;
  ByteBuffer bad;
  AppendCompressSpec(bad, spec);
  const std::vector<float> data(64, 1.0f);
  ByteWriter(bad).WriteBytes(data.data(), data.size() * sizeof(float));
  EXPECT_EQ(client.Call(Opcode::kCompress, bad).header.status,
            Status::kBadRequest);

  // The connection survived all three errors.
  EXPECT_EQ(client.Call(Opcode::kPing, {}).header.status, Status::kOk);
}

TEST(Server, Float64JobsDispatchOnDtype) {
  ServeHarness h;
  Client client(h.Connect());
  std::vector<double> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::cos(static_cast<double>(i) * 0.003);
  }
  CompressSpec spec;
  spec.dtype = DataType::kFloat64;
  ByteBuffer body;
  AppendCompressSpec(body, spec);
  ByteWriter(body).WriteBytes(data.data(), data.size() * sizeof(double));

  const ClientResponse comp = client.Call(Opcode::kCompress, body);
  ASSERT_EQ(comp.header.status, Status::kOk);
  const ClientResponse dec = client.Call(Opcode::kDecompress, comp.body);
  ASSERT_EQ(dec.header.status, Status::kOk);
  EXPECT_EQ(dec.body.size(), data.size() * sizeof(double));
}

TEST(Server, UnknownOpcodeGetsTypedBadRequest) {
  ServeHarness h;
  MemoryTransport& t = h.Connect();
  RequestHeader req;
  ByteBuffer frame;
  AppendRequestFrame(frame, req, {});
  frame[5] = std::byte{77};  // unregistered opcode
  t.Write(frame);
  Client client(t);
  const auto rsp = client.Receive();
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->header.status, Status::kBadRequest);
  // Framing survived: the connection still answers.
  EXPECT_EQ(client.Call(Opcode::kPing, {}).header.status, Status::kOk);
}

TEST(Server, OversizedBodyIsDrainedAndRejected) {
  ServerConfig cfg;
  cfg.max_body_bytes = 1024;
  ServeHarness h(cfg);
  Client client(h.Connect());
  const ByteBuffer big(4096, std::byte{7});
  const ClientResponse rsp = client.Call(Opcode::kPing, big);
  EXPECT_EQ(rsp.header.status, Status::kBadRequest);
  // Framing survived the oversized frame (it was drained, not truncated).
  EXPECT_EQ(client.Call(Opcode::kPing, {}).header.status, Status::kOk);
}

TEST(Server, ClientRejectsResponseBodyBeyondItsBound) {
  // A response header can carry a valid magic/version while body_bytes is
  // garbage; the client must fail the connection with TransportError, not
  // attempt a near-2^64 allocation.
  TransportPair pair = MakeMemoryTransportPair();
  ResponseHeader h;
  ByteBuffer frame;
  AppendResponseFrame(frame, h, {});
  for (std::size_t i = 24; i < kFrameHeaderBytes; ++i) {
    frame[i] = std::byte{0xFF};  // body_bytes := 2^64 - 1
  }
  pair.server->Write(ByteSpan(frame).first(kFrameHeaderBytes));

  Client client(*pair.client);
  EXPECT_THROW((void)client.Receive(), TransportError);

  // A caller-raised bound admits sizes the default would admit anyway.
  const ByteBuffer small(128, std::byte{3});
  ByteBuffer ok_frame;
  AppendResponseFrame(ok_frame, h, small);
  pair.server->Write(ok_frame);
  Client roomy(*pair.client, std::uint64_t{4} << 30);
  const auto rsp = roomy.Receive();
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->body, small);
}

TEST(Server, DamagedDecompressBodyDegradesToPartialWithReport) {
  ServeHarness h;
  MemoryTransport& t = h.Connect();
  Client client(t);
  const std::vector<float> data = SineData(20000);
  Params p;
  p.integrity = true;  // v2 footer: salvage can verify chunks
  const ByteBuffer stream = Compress<float>(data, p);

  // Flip one byte deep in the payload region.
  SendDamaged(t, Opcode::kDecompress, stream, stream.size() / 2);
  const auto rsp = client.Receive();
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->header.status, Status::kPartial);
  EXPECT_NE(rsp->header.flags & kFlagBodyDamaged, 0);

  const ReportAndData split = SplitReportAndData(rsp->body);
  EXPECT_NE(split.report.find("\"usable\":true"), std::string::npos)
      << split.report;
  EXPECT_EQ(split.data.size(), data.size() * sizeof(float));
}

TEST(Server, NoDegradeFlagForcesTypedCorrupt) {
  ServeHarness h;
  MemoryTransport& t = h.Connect();
  Client client(t);
  const std::vector<float> data = SineData(20000);
  Params p;
  p.integrity = true;
  const ByteBuffer stream = Compress<float>(data, p);

  SendDamaged(t, Opcode::kDecompress, stream, stream.size() / 2,
              kFlagNoDegrade);
  const auto rsp = client.Receive();
  ASSERT_TRUE(rsp.has_value());
  EXPECT_EQ(rsp->header.status, Status::kCorrupt);
  EXPECT_NE(rsp->header.flags & kFlagBodyDamaged, 0);
  // Connection survives: exactly one typed response per accepted frame.
  EXPECT_EQ(client.Call(Opcode::kPing, {}).header.status, Status::kOk);
}

TEST(Server, SalvageJobReturnsReportAndElements) {
  ServeHarness h;
  Client client(h.Connect());
  const std::vector<float> data = SineData(20000);
  Params p;
  p.integrity = true;
  ByteBuffer stream = Compress<float>(data, p);

  // Clean stream: salvage reports clean and returns every element.
  const ClientResponse clean = client.Call(Opcode::kSalvage, stream);
  ASSERT_EQ(clean.header.status, Status::kOk);
  ReportAndData split = SplitReportAndData(clean.body);
  EXPECT_NE(split.report.find("\"clean\":true"), std::string::npos)
      << split.report;
  EXPECT_EQ(ToFloats(split.data), Decompress<float>(stream));

  // In-body damage (valid wire frame, damaged stream): degraded result.
  stream[stream.size() / 2] ^= std::byte{0x10};
  const ClientResponse damaged = client.Call(Opcode::kSalvage, stream);
  ASSERT_EQ(damaged.header.status, Status::kPartial);
  EXPECT_EQ(damaged.header.flags & kFlagBodyDamaged, 0);  // wire was clean
  split = SplitReportAndData(damaged.body);
  EXPECT_NE(split.report.find("\"clean\":false"), std::string::npos)
      << split.report;
  EXPECT_EQ(split.data.size(), data.size() * sizeof(float));
}

ByteBuffer BuildContainer(const std::vector<float>& t0,
                          const std::vector<float>& t1) {
  ContainerWriter writer;
  ContainerWriter::FieldSpec spec;
  spec.name = "temperature";
  spec.params.integrity = true;
  spec.elements_per_timestep = t0.size();
  spec.chunk_elements = 4096;
  const std::uint32_t field = writer.AddField(spec, DataType::kFloat32);
  writer.AppendTimestep<float>(field, t0);
  writer.AppendTimestep<float>(field, t1);
  return writer.Finish();
}

TEST(Server, QueryDecodesTimestepWithMetadata) {
  ServeHarness h;
  Client client(h.Connect());
  const std::vector<float> t0 = SineData(20000);
  std::vector<float> t1 = t0;
  for (auto& v : t1) v += 1.0f;
  const ByteBuffer container = BuildContainer(t0, t1);

  ByteBuffer body;
  AppendQuerySpec(body, QuerySpec{.field = 0, .timestep = 1});
  ByteWriter(body).WriteBytes(container.data(), container.size());

  const ClientResponse rsp = client.Call(Opcode::kQuery, body);
  ASSERT_EQ(rsp.header.status, Status::kOk);
  const ReportAndData split = SplitReportAndData(rsp.body);
  EXPECT_NE(split.report.find("\"field\":\"temperature\""), std::string::npos)
      << split.report;
  EXPECT_NE(split.report.find("\"timesteps\":2"), std::string::npos);

  ContainerReader reader(container);
  EXPECT_EQ(ToFloats(split.data), reader.DecompressTimestep<float>(0, 1));
}

TEST(Server, QueryOutOfRangeAndCorruptContainers) {
  ServeHarness h;
  Client client(h.Connect());
  const std::vector<float> t0 = SineData(20000);
  const ByteBuffer container = BuildContainer(t0, t0);

  ByteBuffer body;
  AppendQuerySpec(body, QuerySpec{.field = 5, .timestep = 0});
  ByteWriter(body).WriteBytes(container.data(), container.size());
  EXPECT_EQ(client.Call(Opcode::kQuery, body).header.status,
            Status::kBadRequest);

  // A destroyed directory is terminal: nothing can be located.
  ByteBuffer broken = container;
  std::fill(broken.end() - 16, broken.end(), std::byte{0});
  ByteBuffer body2;
  AppendQuerySpec(body2, QuerySpec{});
  ByteWriter(body2).WriteBytes(broken.data(), broken.size());
  EXPECT_EQ(client.Call(Opcode::kQuery, body2).header.status,
            Status::kCorrupt);
}

TEST(Server, QueryDamagedChunkDegradesToChunkSalvage) {
  ServeHarness h;
  Client client(h.Connect());
  const std::vector<float> t0 = SineData(20000);
  ByteBuffer container = BuildContainer(t0, t0);

  // Damage one chunk's payload (after the 48-byte header, inside the chunk
  // region) so exactly that chunk's entry checksum fails.
  container[48 + 100] ^= std::byte{0x20};
  ByteBuffer body;
  AppendQuerySpec(body, QuerySpec{});
  ByteWriter(body).WriteBytes(container.data(), container.size());

  const ClientResponse rsp = client.Call(Opcode::kQuery, body);
  ASSERT_EQ(rsp.header.status, Status::kPartial);
  const ReportAndData split = SplitReportAndData(rsp.body);
  EXPECT_NE(split.report.find("\"usable\":true"), std::string::npos)
      << split.report;
  EXPECT_EQ(split.data.size(), t0.size() * sizeof(float));
}

TEST(Server, QueuedJobPastDeadlineIsNotExecuted) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  ServeHarness h(cfg);
  MemoryTransport& t = h.Connect();
  Client client(t);

  // Occupy the single worker with a sizeable compression...
  const std::vector<float> big = SineData(1u << 21);  // 8 MiB of floats
  const std::uint64_t slow_id =
      client.Send(Opcode::kCompress, CompressBody(big));
  // ...then queue a job whose 1 ms deadline will expire while it waits.
  const std::uint64_t doomed_id = client.Send(Opcode::kPing, {}, 1);

  bool saw_deadline = false;
  bool saw_slow = false;
  for (int i = 0; i < 2; ++i) {
    const auto rsp = client.Receive();
    ASSERT_TRUE(rsp.has_value());
    if (rsp->header.request_id == doomed_id) {
      EXPECT_EQ(rsp->header.status, Status::kDeadlineExceeded);
      saw_deadline = true;
    } else {
      EXPECT_EQ(rsp->header.request_id, slow_id);
      EXPECT_EQ(rsp->header.status, Status::kOk);
      saw_slow = true;
    }
  }
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_slow);
  EXPECT_EQ(h.server().stats().deadline_exceeded, 1u);
}

TEST(Server, DeadlineCancelsMidDecode) {
  ServeHarness h;
  Client client(h.Connect());
  // A multi-chunk query decode crosses cooperative cancellation checks at
  // every chunk boundary; a 1 ms deadline cannot survive them all.
  const std::vector<float> t0 = SineData(1u << 21);
  const ByteBuffer container = BuildContainer(t0, t0);
  ByteBuffer body;
  AppendQuerySpec(body, QuerySpec{});
  ByteWriter(body).WriteBytes(container.data(), container.size());

  const ClientResponse rsp = client.Call(Opcode::kQuery, body, /*deadline=*/1);
  EXPECT_EQ(rsp.header.status, Status::kDeadlineExceeded);
}

TEST(Server, OverloadShedsWithBackoffHints) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.busy_backoff_base_ms = 4;
  cfg.busy_backoff_max_ms = 64;
  // Small pipes: the decompress response (80 KB) cannot fit, so the worker
  // blocks mid-write and the admission slot stays held deterministically.
  ServeHarness h(cfg, /*pipe_capacity=*/4096);
  MemoryTransport& wedge_t = h.Connect();
  Client wedge(wedge_t);

  const std::vector<float> zeros(20000, 0.0f);  // tiny stream, 80 KB output
  const ByteBuffer stream = Compress<float>(zeros, Params{});
  const std::uint64_t decomp_id = wedge.Send(Opcode::kDecompress, stream);

  // Give the worker time to claim the slot and block on the full pipe.
  while (h.server().stats().requests < 1) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Shed on a SECOND connection: its write mutex is free (the wedged worker
  // holds the first connection's), so every BUSY is written -- and readable
  // -- while the slot is provably still held.  Fully deterministic.
  Client client(h.Connect());
  const int kPings = 4;
  std::vector<std::uint32_t> backoffs;
  for (int i = 0; i < kPings; ++i) {
    const ClientResponse rsp = client.Call(Opcode::kPing, {});
    ASSERT_EQ(rsp.header.status, Status::kBusy);
    backoffs.push_back(rsp.header.info);
  }
  // Exponential, then capped: 4, 8, 16, 32.
  ASSERT_EQ(backoffs.size(), 4u);
  EXPECT_EQ(backoffs[0], 4u);
  EXPECT_EQ(backoffs[1], 8u);
  EXPECT_EQ(backoffs[2], 16u);
  EXPECT_EQ(backoffs[3], 32u);
  EXPECT_EQ(h.server().stats().shed_busy, 4u);

  // Unwedge: drain the big decompress; the slot frees and service resumes.
  const auto first = wedge.Receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->header.request_id, decomp_id);
  EXPECT_EQ(first->header.status, Status::kOk);
  // The worker releases its slot just AFTER its response drains, so the
  // first post-drain ping can race the release: honour the BUSY protocol
  // (bounded retries) rather than assuming instant resumption.
  Status resumed = Status::kBusy;
  for (int i = 0; i < 100 && resumed == Status::kBusy; ++i) {
    resumed = client.Call(Opcode::kPing, {}).header.status;
    if (resumed == Status::kBusy) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(resumed, Status::kOk);
}

TEST(Server, BusyBudgetExhaustionClosesTheConnection) {
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.busy_budget = 3;
  ServeHarness h(cfg, /*pipe_capacity=*/4096);
  MemoryTransport& wedge_t = h.Connect();
  Client wedge(wedge_t);

  const std::vector<float> zeros(20000, 0.0f);
  const ByteBuffer stream = Compress<float>(zeros, Params{});
  (void)wedge.Send(Opcode::kDecompress, stream);
  while (h.server().stats().requests < 1) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Hammer a second connection while the only slot is wedged: the server
  // answers exactly budget=3 kBusy, then hangs up on the abuser.
  MemoryTransport& t = h.Connect();
  Client client(t);
  for (int i = 0; i < 7; ++i) {
    try {
      (void)client.Send(Opcode::kPing, {});
    } catch (const TransportError&) {
      break;  // server already hung up: sends may start failing
    }
  }
  t.ShutdownWrite();

  int busies = 0;
  for (;;) {
    std::optional<ClientResponse> rsp;
    try {
      rsp = client.Receive();
    } catch (const TransportError&) {
      break;  // server hard-closed mid-read is also an accepted ending
    }
    if (!rsp.has_value()) break;
    EXPECT_EQ(rsp->header.status, Status::kBusy);
    ++busies;
  }
  EXPECT_EQ(busies, 3);

  // The wedged connection was never penalised: its job still completes.
  const auto first = wedge.Receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->header.status, Status::kOk);
}

TEST(Server, SaturatingClientObservesBackpressure) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.max_inflight_per_conn = 1;
  cfg.queue_capacity = 16;
  // 2 KiB pipes and 1 KiB bodies: without backpressure 50 requests would
  // buffer ~50 KiB; with it the server cannot run more than a few ahead of
  // the (non-reading) client.
  ServeHarness h(cfg, /*pipe_capacity=*/2048);
  MemoryTransport& t = h.Connect();
  Client client(t);

  const int kJobs = 50;
  const ByteBuffer body(1000, std::byte{42});
  std::thread sender([&] {
    for (int i = 0; i < kJobs; ++i) (void)client.Send(Opcode::kPing, body);
    t.ShutdownWrite();
  });

  // Let the pipeline wedge: the client is not reading, so the server must
  // park after at most window + a pipe's worth of responses.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const ServerStats wedged = h.server().stats();
  EXPECT_LE(wedged.requests, 8u) << "server ran ahead of a blocked client";
  EXPECT_LE(t.inbox_buffered(), 2048u);  // bounded by construction

  // Drain: every request still completes, in order, intact.
  int ok = 0;
  for (;;) {
    const auto rsp = client.Receive();
    if (!rsp.has_value()) break;
    EXPECT_EQ(rsp->header.status, Status::kOk);
    EXPECT_EQ(rsp->body, body);
    ++ok;
  }
  sender.join();
  EXPECT_EQ(ok, kJobs);
  EXPECT_EQ(h.server().stats().completed_ok, static_cast<std::uint64_t>(kJobs));
}

TEST(Server, StopUnblocksParkedConnectionsAndAnswersShuttingDown) {
  ServeHarness h;
  MemoryTransport& t = h.Connect();
  Client client(t);
  EXPECT_EQ(client.Call(Opcode::kPing, {}).header.status, Status::kOk);

  h.server().Stop();
  // The parked reader was unblocked by the transport close; the connection
  // thread exits and Shutdown() joins it without hanging.
  h.Shutdown();
  const ServerStats s = h.server().stats();
  EXPECT_EQ(s.connections, 1u);
  EXPECT_EQ(s.completed_ok, 1u);
}

TEST(Server, ConnectionsAfterStopAreClosedImmediately) {
  ServeHarness h;
  h.server().Stop();
  MemoryTransport& t = h.Connect();
  Client client(t);
  // The transport is closed before any frame is read.
  EXPECT_THROW((void)client.Call(Opcode::kPing, {}), TransportError);
}

TEST(Server, ManyConcurrentConnectionsStayIsolated) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 64;
  ServeHarness h(cfg);
  constexpr int kConns = 8;
  std::vector<MemoryTransport*> transports;
  for (int i = 0; i < kConns; ++i) transports.push_back(&h.Connect());

  std::vector<std::thread> clients;
  std::vector<int> oks(kConns, 0);
  for (int c = 0; c < kConns; ++c) {
    clients.emplace_back([&, c] {
      Client client(*transports[c]);
      const std::vector<float> data = SineData(4096 + 512u * c);
      for (int r = 0; r < 5; ++r) {
        const ClientResponse comp =
            client.Call(Opcode::kCompress, CompressBody(data));
        if (comp.header.status != Status::kOk) continue;
        const ClientResponse dec =
            client.Call(Opcode::kDecompress, comp.body);
        if (dec.header.status == Status::kOk &&
            dec.body.size() == data.size() * sizeof(float)) {
          ++oks[c];
        }
      }
      transports[c]->ShutdownWrite();
    });
  }
  for (auto& th : clients) th.join();
  for (int c = 0; c < kConns; ++c) EXPECT_EQ(oks[c], 5) << "conn " << c;
  EXPECT_EQ(h.server().stats().connections, static_cast<std::uint64_t>(kConns));
}

}  // namespace
}  // namespace szx::serve
