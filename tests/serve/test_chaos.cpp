// Chaos integration suite: the five storage-fault classes injected into the
// wire (FaultyTransport), each at three seeds, against servers of 1, 2 and
// 4 workers -- plus a stacked-fault scenario.  The invariants are the
// acceptance criteria of docs/serve.md:
//
//   - no crash, no deadlock (the suite terminating IS the assertion; TSan
//     reruns it for the no-race leg),
//   - every response that arrives parses with a valid typed status,
//   - the server survives: a fresh connection afterwards still gets kOk,
//     and every admission slot was released (queue_capacity sequential
//     jobs all succeed -- nothing leaked).
#include <vector>

#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "serve_test_util.hpp"
#include "testkit/faulty_transport.hpp"

namespace szx::serve {
namespace {

using testkit::FaultClass;
using testkit::FaultyTransport;
using testutil::ServeHarness;

ByteBuffer SampleStream(bool integrity) {
  std::vector<float> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i % 97) * 0.5f;
  }
  Params p;
  p.integrity = integrity;
  return Compress<float>(data, p);
}

bool ValidStatus(Status s) {
  return static_cast<std::uint8_t>(s) <=
         static_cast<std::uint8_t>(Status::kInternalError);
}

/// Drains every response still deliverable; returns how many parsed.
/// Connection-ending outcomes (EOF, torn frame, framing loss) are all
/// legal under chaos -- what is not legal is a hang or an invalid status.
int DrainResponses(Client& client) {
  int parsed = 0;
  for (;;) {
    std::optional<ClientResponse> rsp;
    try {
      rsp = client.Receive();
    } catch (const TransportError&) {
      break;
    } catch (const Error&) {
      break;  // response framing lost (damage echoes)
    }
    if (!rsp.has_value()) break;
    EXPECT_TRUE(ValidStatus(rsp->header.status));
    EXPECT_EQ(rsp->header.version, kProtocolVersion);
    ++parsed;
  }
  return parsed;
}

/// After chaos: the server must still serve a fresh connection, and all
/// queue slots must have been released.
void ExpectServerSurvived(ServeHarness& h) {
  Client probe(h.Connect());
  const std::uint32_t slots = h.server().config().queue_capacity;
  for (std::uint32_t i = 0; i < slots; ++i) {
    const ClientResponse rsp = probe.Call(Opcode::kPing, {});
    ASSERT_EQ(rsp.header.status, Status::kOk)
        << "admission slot leaked: job " << i << " of " << slots;
  }
}

void RunChaosConnection(Transport& wire) {
  Client client(wire);
  const ByteBuffer v2 = SampleStream(/*integrity=*/true);
  const ByteBuffer v1 = SampleStream(/*integrity=*/false);
  const ByteBuffer ping_body(2048, std::byte{7});
  try {
    (void)client.Send(Opcode::kDecompress, v2);
    (void)client.Send(Opcode::kPing, ping_body);
    (void)client.Send(Opcode::kSalvage, v2);
    (void)client.Send(Opcode::kDecompress, v1, /*deadline_ms=*/2000);
    wire.ShutdownWrite();
  } catch (const TransportError&) {
    // kTruncate half-closed the stream mid-send: a dead peer, by design.
  }
  (void)DrainResponses(client);
}

struct ChaosCase {
  FaultClass cls;
  std::uint64_t seed;
  int workers;
};

class ChaosMatrix : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosMatrix, ServerSurvivesWireDamage) {
  const ChaosCase& c = GetParam();
  ServerConfig cfg;
  cfg.workers = c.workers;
  cfg.queue_capacity = 8;
  ServeHarness h(cfg, /*pipe_capacity=*/32 << 10);

  // Two chaotic connections back to back on the same server: state leaked
  // by the first would surface in the second.
  for (int round = 0; round < 2; ++round) {
    MemoryTransport& raw = h.Connect();
    FaultyTransport faulty(raw, c.cls, c.seed + 1000u * round,
                           /*damage_every=*/2);
    RunChaosConnection(faulty);
    EXPECT_FALSE(faulty.records().empty());
  }
  ExpectServerSurvived(h);
}

std::vector<ChaosCase> AllCases() {
  std::vector<ChaosCase> cases;
  for (const FaultClass cls : testkit::kAllFaultClasses) {
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
      for (const int workers : {1, 2, 4}) {
        cases.push_back({cls, seed, workers});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    FaultsXSeedsXWorkers, ChaosMatrix, ::testing::ValuesIn(AllCases()),
    [](const auto& param_info) {
      return std::string(FaultClassName(param_info.param.cls)) + "_seed" +
             std::to_string(param_info.param.seed) + "_w" +
             std::to_string(param_info.param.workers);
    });

TEST(ChaosStacked, TwoFaultLayersStacked) {
  // kZeroFill under kBitFlip: frames lose a region to zeros AND take bit
  // flips -- the degradation matrix must still hold every invariant.
  for (const std::uint64_t seed : {5u, 6u, 7u}) {
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 8;
    ServeHarness h(cfg, /*pipe_capacity=*/32 << 10);
    MemoryTransport& raw = h.Connect();
    FaultyTransport inner(raw, FaultClass::kZeroFill, seed,
                          /*damage_every=*/2);
    FaultyTransport outer(inner, FaultClass::kBitFlip, seed + 500,
                          /*damage_every=*/3);
    RunChaosConnection(outer);
    ExpectServerSurvived(h);
  }
}

TEST(ChaosDamagedYieldsTypedOutcome, BodyDamageNeverDropsTheConnection) {
  // Damage confined to the BODY region (framing intact): the contract
  // tightens from "survive" to "exactly one typed response per request,
  // partial or error, with the damaged flag set".
  ServeHarness h;
  MemoryTransport& raw = h.Connect();
  Client client(raw);
  const ByteBuffer stream = SampleStream(/*integrity=*/true);
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    ByteBuffer damaged = stream;
    (void)testkit::InjectFault(damaged, FaultClass::kZeroFill, seed);
    // The frame itself is clean; the damage models pre-wire storage loss.
    const ClientResponse rsp = client.Call(Opcode::kSalvage, damaged);
    ASSERT_TRUE(ValidStatus(rsp.header.status));
    EXPECT_TRUE(rsp.header.status == Status::kOk ||
                rsp.header.status == Status::kPartial ||
                rsp.header.status == Status::kCorrupt)
        << StatusName(rsp.header.status);
    if (rsp.header.status != Status::kCorrupt) {
      const ReportAndData split = SplitReportAndData(rsp.body);
      EXPECT_NE(split.report.find("\"usable\":true"), std::string::npos);
    }
  }
  EXPECT_EQ(client.Call(Opcode::kPing, {}).header.status, Status::kOk);
}

}  // namespace
}  // namespace szx::serve
