// Quality-metric tests: PSNR/SSIM/error histograms/CDF/harmonic mean.
#include "metrics/metrics.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx::metrics {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;

TEST(Distortion, PerfectReconstruction) {
  const auto a = MakePattern<float>(Pattern::kNoisySine, 1000, 1);
  const auto d = ComputeDistortion<float>(a, a);
  EXPECT_EQ(d.max_abs_error, 0.0);
  EXPECT_EQ(d.mse, 0.0);
  EXPECT_TRUE(std::isinf(d.psnr_db));
}

TEST(Distortion, KnownError) {
  const std::vector<float> a = {0.0f, 1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {0.1f, 1.0f, 2.0f, 2.8f};
  const auto d = ComputeDistortion<float>(a, b);
  EXPECT_NEAR(d.max_abs_error, 0.2, 1e-6);
  EXPECT_NEAR(d.mse, (0.01 + 0.04) / 4.0, 1e-6);
  EXPECT_NEAR(d.value_range, 3.0, 1e-6);
  // Formula 7: 20 log10(range / sqrt(mse)).
  EXPECT_NEAR(d.psnr_db, 20.0 * std::log10(3.0 / std::sqrt(d.mse)), 1e-9);
}

TEST(Distortion, PsnrMatchesManualOnRandomData) {
  const auto a = MakePattern<double>(Pattern::kUniformNoise, 5000, 3);
  std::vector<double> b = a;
  szx::testing::Rng rng(4);
  for (auto& v : b) v += rng.Uniform(-0.5, 0.5);
  const auto d = ComputeDistortion<double>(a, b);
  double sse = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sse += (b[i] - a[i]) * (b[i] - a[i]);
  }
  EXPECT_NEAR(d.mse, sse / a.size(), 1e-9);
}

TEST(Distortion, SizeMismatchThrows) {
  const std::vector<float> a(4), b(5);
  EXPECT_THROW(ComputeDistortion<float>(a, b), std::invalid_argument);
}

TEST(Ssim, IdenticalFieldsScoreOne) {
  const auto a = MakePattern<float>(Pattern::kNoisySine, 64 * 64, 7);
  EXPECT_NEAR(ComputeSsim2D<float>(a, a, 64, 64), 1.0, 1e-12);
}

TEST(Ssim, DegradesWithNoise) {
  // A genuinely 2-D smooth field: low variance inside each 8x8 window, so
  // window-scale noise must drive SSIM down.
  std::vector<float> a(64 * 64);
  for (std::size_t y = 0; y < 64; ++y) {
    for (std::size_t x = 0; x < 64; ++x) {
      a[y * 64 + x] = static_cast<float>(
          100.0 * std::sin(0.05 * static_cast<double>(x)) *
          std::cos(0.05 * static_cast<double>(y)));
    }
  }
  szx::testing::Rng rng(9);
  std::vector<float> mild = a, heavy = a;
  for (auto& v : mild) v += static_cast<float>(rng.Uniform(-0.5, 0.5));
  for (auto& v : heavy) v += static_cast<float>(rng.Uniform(-40.0, 40.0));
  const double s_mild = ComputeSsim2D<float>(a, mild, 64, 64);
  const double s_heavy = ComputeSsim2D<float>(a, heavy, 64, 64);
  EXPECT_GT(s_mild, s_heavy);
  EXPECT_GT(s_mild, 0.9);
  EXPECT_LT(s_heavy, 0.8);
}

TEST(Ssim, DimensionMismatchThrows) {
  const std::vector<float> a(100), b(100);
  EXPECT_THROW(ComputeSsim2D<float>(a, b, 11, 10), std::invalid_argument);
}

TEST(ErrorHistogram, CountsAndDensity) {
  const std::vector<float> orig = {0, 0, 0, 0};
  const std::vector<float> recon = {-0.5f, -0.1f, 0.1f, 0.5f};
  const auto h = ComputeErrorHistogram<float>(orig, recon, -1.0, 1.0, 4);
  // Bins: [-1,-0.5) [-0.5,0) [0,0.5) [0.5,1)
  EXPECT_EQ(h.counts[0], 0u);
  EXPECT_EQ(h.counts[1], 2u);  // -0.5 and -0.1
  EXPECT_EQ(h.counts[2], 1u);  // 0.1
  EXPECT_EQ(h.counts[3], 1u);  // 0.5 lands in [0.5, 1)
  EXPECT_EQ(h.out_of_range, 0u);
  // Densities integrate to ~1.
  double integral = 0.0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    integral += h.Density(i) * 0.5;
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(ErrorHistogram, OutOfRangeCounted) {
  const std::vector<float> orig = {0, 0};
  const std::vector<float> recon = {5.0f, -5.0f};
  const auto h = ComputeErrorHistogram<float>(orig, recon, -1.0, 1.0, 10);
  EXPECT_EQ(h.out_of_range, 2u);
}

TEST(BlockRelativeRanges, ConstantDataIsZero) {
  const std::vector<float> v(100, 3.0f);
  for (const double r : BlockRelativeRanges<float>(v, 8)) {
    EXPECT_EQ(r, 0.0);
  }
}

TEST(BlockRelativeRanges, RampHasUniformRanges) {
  std::vector<float> v(256);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<float>(i);
  const auto r = BlockRelativeRanges<float>(v, 16);
  ASSERT_EQ(r.size(), 16u);
  for (const double x : r) {
    EXPECT_NEAR(x, 15.0 / 255.0, 1e-9);
  }
}

TEST(BlockRelativeRanges, SmallerBlocksHaveSmallerRanges) {
  const auto v = MakePattern<float>(Pattern::kNoisySine, 4096, 3);
  const auto r8 = BlockRelativeRanges<float>(v, 8);
  const auto r64 = BlockRelativeRanges<float>(v, 64);
  double m8 = 0.0, m64 = 0.0;
  for (double x : r8) m8 += x;
  for (double x : r64) m64 += x;
  m8 /= static_cast<double>(r8.size());
  m64 /= static_cast<double>(r64.size());
  EXPECT_LT(m8, m64);
}

TEST(EmpiricalCdf, MonotoneAndBounded) {
  const std::vector<double> samples = {0.1, 0.2, 0.2, 0.5, 0.9};
  const std::vector<double> thresholds = {0.0, 0.15, 0.2, 0.5, 1.0};
  const auto cdf = EmpiricalCdf(samples, thresholds);
  EXPECT_EQ(cdf[0], 0.0);
  EXPECT_NEAR(cdf[1], 1.0 / 5, 1e-12);
  EXPECT_NEAR(cdf[2], 3.0 / 5, 1e-12);
  EXPECT_NEAR(cdf[3], 4.0 / 5, 1e-12);
  EXPECT_EQ(cdf[4], 1.0);
}

TEST(HarmonicMean, MatchesDefinition) {
  const std::vector<double> v = {2.0, 4.0, 8.0};
  EXPECT_NEAR(HarmonicMean(v), 3.0 / (0.5 + 0.25 + 0.125), 1e-12);
}

TEST(HarmonicMean, IgnoresNonPositive) {
  const std::vector<double> v = {2.0, 0.0, -3.0, 2.0};
  EXPECT_NEAR(HarmonicMean(v), 2.0, 1e-12);
  EXPECT_EQ(HarmonicMean(std::vector<double>{}), 0.0);
}

}  // namespace
}  // namespace szx::metrics
