// Z-checker-style quality report tests.
#include "metrics/quality_report.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "../test_util.hpp"

namespace szx::metrics {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testing::Rng;

TEST(Pearson, PerfectAndAnticorrelation) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  std::vector<float> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation<float>(a, b), 1.0, 1e-12);
  std::vector<float> c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation<float>(a, c), -1.0, 1e-12);
}

TEST(Pearson, UncorrelatedNearZero) {
  Rng rng(1);
  std::vector<float> a(20000), b(20000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.Uniform(-1, 1));
    b[i] = static_cast<float>(rng.Uniform(-1, 1));
  }
  EXPECT_LT(std::fabs(PearsonCorrelation<float>(a, b)), 0.05);
}

TEST(ErrorAutocorr, WhiteErrorNearZero) {
  Rng rng(2);
  const auto a = MakePattern<float>(Pattern::kSmoothSine, 20000, 3);
  std::vector<float> b = a;
  for (auto& v : b) v += static_cast<float>(rng.Uniform(-0.01, 0.01));
  EXPECT_LT(std::fabs(ErrorAutocorrelation<float>(a, b, 1)), 0.05);
}

TEST(ErrorAutocorr, StructuredErrorNearOne) {
  const auto a = MakePattern<float>(Pattern::kSmoothSine, 20000, 3);
  std::vector<float> b = a;
  for (std::size_t i = 0; i < b.size(); ++i) {
    // Slowly varying (structured) error.
    b[i] += 0.01f * static_cast<float>(
                        std::sin(0.001 * static_cast<double>(i)));
  }
  EXPECT_GT(ErrorAutocorrelation<float>(a, b, 1), 0.9);
}

TEST(ErrorAutocorr, ZeroErrorIsZero) {
  const auto a = MakePattern<float>(Pattern::kNoisySine, 1000, 1);
  EXPECT_EQ(ErrorAutocorrelation<float>(a, a, 1), 0.0);
}

TEST(QualityReport, EndToEndOnSzxOutput) {
  const auto data = MakePattern<float>(Pattern::kNoisySine, 100 * 200, 9);
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  const auto stream = Compress<float>(data, p);
  const auto recon = Decompress<float>(stream);
  const std::size_t dims[] = {100, 200};
  const auto r = AssessQuality<float>(data, recon, dims, stream.size());
  EXPECT_LE(r.distortion.max_abs_error, 1e-3);
  EXPECT_GT(r.ssim, 0.99);
  EXPECT_GT(r.pearson_correlation, 0.9999);
  EXPECT_GT(r.compression_ratio, 1.0);
  EXPECT_LT(std::fabs(r.error_mean), 1e-3);
  // SZx truncates toward zero on the normalized values -- the report must
  // still show near-unbiased errors overall (mu-centering symmetrizes).
  EXPECT_LT(std::fabs(r.error_mean), 3.0 * r.error_std + 1e-12);
}

TEST(QualityReport, ThreeDSliceAveragedSsim) {
  const auto data = MakePattern<float>(Pattern::kSmoothSine, 8 * 40 * 50, 5);
  std::vector<float> recon = data;
  Rng rng(4);
  for (auto& v : recon) v += static_cast<float>(rng.Uniform(-0.1, 0.1));
  const std::size_t dims[] = {8, 40, 50};
  const auto r = AssessQuality<float>(data, recon, dims);
  EXPECT_GT(r.ssim, 0.0);
  EXPECT_LT(r.ssim, 1.0);
  EXPECT_EQ(r.compression_ratio, 0.0);  // unknown compressed size
}

TEST(QualityReport, MismatchedSizesThrow) {
  std::vector<float> a(10), b(11);
  const std::size_t dims[] = {10};
  EXPECT_THROW(AssessQuality<float>(a, b, dims), std::invalid_argument);
}

}  // namespace
}  // namespace szx::metrics
