// Self-tests for szx-lint (tools/lint).  Each rule gets a deliberately
// seeded violation that must be caught, a clean counterpart that must not
// be flagged, and the allow-directive machinery is exercised end to end.
#include "linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace szx::lint {
namespace {

int Count(const std::vector<Finding>& fs, std::string_view rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(SzxLint, CatchesSeededMemcpy) {
  const auto fs = LintText("decode.cpp",
                           "void f(void* d, const void* s, size_t n) {\n"
                           "  std::memcpy(d, s, n);\n"
                           "}\n");
  ASSERT_EQ(Count(fs, "raw-memcpy"), 1);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(SzxLint, CatchesMemmoveToo) {
  const auto fs = LintText("x.cpp", "void f() { memmove(a, b, n); }\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 1);
}

TEST(SzxLint, IgnoresMemcpyInCommentsAndStrings) {
  const auto fs = LintText("x.cpp",
                           "// memcpy(a, b, n) in a comment\n"
                           "const char* s = \"memcpy(a, b, n)\";\n"
                           "/* memmove(a, b, n) */\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 0);
}

TEST(SzxLint, IgnoresIdentifiersContainingMemcpy) {
  const auto fs = LintText("x.cpp", "void my_memcpy_stats(int n);\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 0);
}

TEST(SzxLint, CatchesReinterpretCast) {
  const auto fs = LintText(
      "x.cpp", "auto* p = reinterpret_cast<const float*>(bytes.data());\n");
  EXPECT_EQ(Count(fs, "reinterpret-cast"), 1);
}

TEST(SzxLint, CatchesPtrArith) {
  const auto fs =
      LintText("x.cpp", "const std::byte* p = buf.data() + offset;\n");
  EXPECT_EQ(Count(fs, "ptr-arith"), 1);
}

TEST(SzxLint, SubspanIsClean) {
  const auto fs = LintText("x.cpp", "auto s = buf.subspan(offset, n);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, CatchesResizeFromHeaderField) {
  const auto fs = LintText("x.cpp", "out.resize(h.num_elements);\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 1);
}

TEST(SzxLint, CatchesVectorCtorFromHeaderField) {
  const auto fs =
      LintText("x.cpp", "std::vector<float> out(h.num_elements);\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 1);
}

TEST(SzxLint, CatchesNewArrayFromHeaderField) {
  const auto fs =
      LintText("x.cpp", "auto* p = new float[h.payload_bytes];\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 1);
}

TEST(SzxLint, CheckedAllocSilencesAllocRule) {
  const auto fs = LintText(
      "x.cpp",
      "out.resize(cur.CheckedAlloc(h.num_elements, sizeof(float)));\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 0);
}

TEST(SzxLint, AllocFromLocalCountIsClean) {
  const auto fs = LintText("x.cpp", "out.resize(data.size());\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 0);
}

TEST(SzxLint, CatchesNarrowingCastOfSize) {
  const auto fs = LintText(
      "x.cpp",
      "auto z = static_cast<std::uint16_t>(section.size());\n");
  EXPECT_EQ(Count(fs, "unchecked-narrow"), 1);
}

TEST(SzxLint, CheckedNarrowIsClean) {
  const auto fs = LintText(
      "x.cpp", "auto z = CheckedNarrow<std::uint16_t>(section.size());\n");
  EXPECT_EQ(Count(fs, "unchecked-narrow"), 0);
}

TEST(SzxLint, WideningCastIsClean) {
  const auto fs = LintText(
      "x.cpp", "auto z = static_cast<std::uint64_t>(section.size());\n");
  EXPECT_EQ(Count(fs, "unchecked-narrow"), 0);
}

TEST(SzxLint, NarrowingCastOfLoopIndexIsClean) {
  const auto fs = LintText("x.cpp", "auto z = static_cast<std::uint16_t>(i);\n");
  EXPECT_EQ(Count(fs, "unchecked-narrow"), 0);
}

TEST(SzxLint, CatchesSimdLoadStoreIntrinsics) {
  const auto fs = LintText("x.cpp",
                           "__m256 v = _mm256_loadu_ps(p + i);\n"
                           "_mm256_store_si256(reinterpret_cast<__m256i*>(q), t);\n"
                           "_mm_stream_si128(dst, w);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 3);
}

TEST(SzxLint, NonMemorySimdIntrinsicsAreClean) {
  const auto fs = LintText("x.cpp",
                           "__m256 m = _mm256_set1_ps(1.0f);\n"
                           "__m256 s = _mm256_min_ps(a, b);\n"
                           "int k = _mm256_movemask_ps(c);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 0);
}

TEST(SzxLint, CatchesSimdGatherIntrinsics) {
  const auto fs = LintText(
      "x.cpp",
      "__m256i w = _mm256_i32gather_epi32(base, idx, 1);\n"
      "__m256i v = _mm256_i64gather_epi64(base64, idx64, 1);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 2);
}

TEST(SzxLint, SimdGatherAllowWithReasonSuppresses) {
  const auto fs = LintText(
      "x.cpp",
      "// szx-lint: allow(simd-mem) -- loop guard keeps every lane index "
      "within mid_size\n"
      "__m256i w = _mm256_i32gather_epi32(base, idx, 1);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 0);
}

TEST(SzxLint, SimdMemAllowWithReasonSuppresses) {
  const auto fs = LintText(
      "x.cpp",
      "// szx-lint: allow(simd-mem) -- loop bound keeps i+8 <= n\n"
      "__m256 v = _mm256_loadu_ps(p + i);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 0);
}

TEST(SzxLint, SimdMemInCommentIsIgnored) {
  const auto fs = LintText("x.cpp", "// _mm256_loadu_ps in prose\nint x;\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 0);
}

// --- allow directives ----------------------------------------------------

TEST(SzxLint, TrailingAllowSuppresses) {
  const auto fs = LintText(
      "x.cpp",
      "std::memcpy(d, s, n);  // szx-lint: allow(raw-memcpy) -- trusted\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, StandaloneAllowSuppressesNextCodeLine) {
  const auto fs = LintText("x.cpp",
                           "// szx-lint: allow(raw-memcpy) -- trusted\n"
                           "std::memcpy(d, s, n);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, StackedAllowsSuppressOneStatement) {
  const auto fs = LintText(
      "x.cpp",
      "// szx-lint: allow(raw-memcpy) -- trusted fixture\n"
      "// szx-lint: allow(ptr-arith) -- trusted fixture\n"
      "std::memcpy(buf.data() + off, s, n);\n");
  EXPECT_TRUE(fs.empty()) << FormatFinding(fs.empty() ? Finding{} : fs[0]);
}

TEST(SzxLint, AllowWithoutReasonIsViolation) {
  const auto fs = LintText(
      "x.cpp", "std::memcpy(d, s, n);  // szx-lint: allow(raw-memcpy)\n");
  EXPECT_EQ(Count(fs, "unexplained-allow"), 1);
  EXPECT_EQ(Count(fs, "raw-memcpy"), 0);  // still suppressed, but reported
}

TEST(SzxLint, UnusedAllowIsViolation) {
  const auto fs = LintText(
      "x.cpp", "int x = 0;  // szx-lint: allow(raw-memcpy) -- stale\n");
  EXPECT_EQ(Count(fs, "unused-allow"), 1);
}

TEST(SzxLint, AllowForWrongRuleDoesNotSuppress) {
  const auto fs = LintText(
      "x.cpp",
      "std::memcpy(d, s, n);  // szx-lint: allow(ptr-arith) -- wrong\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 1);
  EXPECT_EQ(Count(fs, "unused-allow"), 1);
}

TEST(SzxLint, UnknownRuleNameIsViolation) {
  const auto fs = LintText(
      "x.cpp", "int x;  // szx-lint: allow(no-such-rule) -- whatever\n");
  EXPECT_EQ(Count(fs, "unknown-rule"), 1);
}

TEST(SzxLint, ProseMentionOfDirectiveSyntaxIsIgnored)  {
  const auto fs = LintText(
      "x.cpp",
      "// Suppress with a trailing comment of the form\n"
      "//   // szx-lint: allow(some-rule) -- reason\n"
      "int x = 0;\n");
  EXPECT_TRUE(fs.empty());
}

// --- allowlist -----------------------------------------------------------

TEST(SzxLint, AllowlistedFilesAreSkipped) {
  const std::string code = "std::memcpy(d, s, n);\n";
  EXPECT_TRUE(LintText("src/core/byte_cursor.hpp", code).empty());
  EXPECT_TRUE(LintText("src/core/stream.hpp", code).empty());
  EXPECT_TRUE(LintText("src/core/bitops.hpp", code).empty());
  EXPECT_TRUE(LintText("src/core/arena.hpp", code).empty());
  EXPECT_FALSE(LintText("src/core/upstream.hpp", code).empty());
  EXPECT_FALSE(LintText("src/core/format.hpp", code).empty());
}

TEST(SzxLint, StrictZonePathsAreRecognized) {
  EXPECT_TRUE(IsStrictZone("src/resilience/salvage.cpp"));
  EXPECT_TRUE(IsStrictZone("/root/repo/src/resilience/salvage.hpp"));
  EXPECT_TRUE(IsStrictZone("resilience/salvage.cpp"));
  EXPECT_FALSE(IsStrictZone("src/core/format.hpp"));
  EXPECT_FALSE(IsStrictZone("src/iosim/retry_sim.cpp"));
}

TEST(SzxLint, StrictZoneRefusesAllowDirectives) {
  // In src/resilience/ a directive neither suppresses the finding nor
  // passes hygiene: both the underlying violation and a strict-zone
  // finding surface.
  const auto fs = LintText(
      "src/resilience/salvage.cpp",
      "// szx-lint: allow(raw-memcpy) -- totally safe, promise\n"
      "std::memcpy(d, s, n);\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 1);
  EXPECT_EQ(Count(fs, "strict-zone"), 1);
}

TEST(SzxLint, StrictZoneIgnoresAllowlistBasenames) {
  // Even a file named like an audited primitive is linted inside the zone.
  const auto fs = LintText("src/resilience/stream.hpp",
                           "auto* p = reinterpret_cast<float*>(q);\n");
  EXPECT_EQ(Count(fs, "reinterpret-cast"), 1);
  EXPECT_TRUE(IsAllowlisted("src/core/stream.hpp"));
  EXPECT_TRUE(LintText("src/core/stream.hpp",
                       "auto* p = reinterpret_cast<float*>(q);\n")
                  .empty());
}

TEST(SzxLint, StrictZoneCleanCodeStaysClean) {
  const auto fs = LintText("src/resilience/salvage.cpp",
                           "out.resize(cur.CheckedAlloc(h.num_elements, 4, "
                           "1));\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, RuleListIsStable) {
  const auto& rules = Rules();
  EXPECT_GE(rules.size(), 5u);
  for (const auto& r : rules) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.summary.empty());
  }
}

TEST(SzxLint, FindingsAreSortedByLine) {
  const auto fs = LintText("x.cpp",
                           "auto* p = reinterpret_cast<float*>(q);\n"
                           "std::memcpy(d, s, n);\n"
                           "out.resize(h.num_elements);\n");
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].line, 3);
}

TEST(SzxLint, FormatFindingIsClickable) {
  Finding f{"src/a.cpp", 12, "raw-memcpy", "bad"};
  EXPECT_EQ(FormatFinding(f), "src/a.cpp:12: [raw-memcpy] bad");
}

TEST(SzxLint, RawStringContentIsIgnored) {
  const auto fs = LintText(
      "x.cpp", "const char* s = R\"(std::memcpy(d, s, n))\";\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, MultiLineAllocArgumentsAreSeen) {
  const auto fs = LintText("x.cpp",
                           "std::vector<float> out(\n"
                           "    h.num_elements);\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 1);
}

}  // namespace
}  // namespace szx::lint
