// Self-tests for szx-lint (tools/lint).  Each rule gets a deliberately
// seeded violation that must be caught, a clean counterpart that must not
// be flagged, and the allow-directive machinery is exercised end to end.
#include "linter.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace szx::lint {
namespace {

int Count(const std::vector<Finding>& fs, std::string_view rule) {
  return static_cast<int>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

TEST(SzxLint, CatchesSeededMemcpy) {
  const auto fs = LintText("decode.cpp",
                           "void f(void* d, const void* s, size_t n) {\n"
                           "  std::memcpy(d, s, n);\n"
                           "}\n");
  ASSERT_EQ(Count(fs, "raw-memcpy"), 1);
  EXPECT_EQ(fs[0].line, 2);
}

TEST(SzxLint, CatchesMemmoveToo) {
  const auto fs = LintText("x.cpp", "void f() { memmove(a, b, n); }\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 1);
}

TEST(SzxLint, IgnoresMemcpyInCommentsAndStrings) {
  const auto fs = LintText("x.cpp",
                           "// memcpy(a, b, n) in a comment\n"
                           "const char* s = \"memcpy(a, b, n)\";\n"
                           "/* memmove(a, b, n) */\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 0);
}

TEST(SzxLint, IgnoresIdentifiersContainingMemcpy) {
  const auto fs = LintText("x.cpp", "void my_memcpy_stats(int n);\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 0);
}

TEST(SzxLint, CatchesReinterpretCast) {
  const auto fs = LintText(
      "x.cpp", "auto* p = reinterpret_cast<const float*>(bytes.data());\n");
  EXPECT_EQ(Count(fs, "reinterpret-cast"), 1);
}

TEST(SzxLint, CatchesPtrArith) {
  const auto fs =
      LintText("x.cpp", "const std::byte* p = buf.data() + offset;\n");
  EXPECT_EQ(Count(fs, "ptr-arith"), 1);
}

TEST(SzxLint, SubspanIsClean) {
  const auto fs = LintText("x.cpp", "auto s = buf.subspan(offset, n);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, CatchesResizeFromHeaderField) {
  const auto fs = LintText("x.cpp", "out.resize(h.num_elements);\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 1);
}

TEST(SzxLint, CatchesVectorCtorFromHeaderField) {
  const auto fs =
      LintText("x.cpp", "std::vector<float> out(h.num_elements);\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 1);
}

TEST(SzxLint, CatchesNewArrayFromHeaderField) {
  const auto fs =
      LintText("x.cpp", "auto* p = new float[h.payload_bytes];\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 1);
}

TEST(SzxLint, CheckedAllocSilencesAllocRule) {
  const auto fs = LintText(
      "x.cpp",
      "out.resize(cur.CheckedAlloc(h.num_elements, sizeof(float)));\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 0);
}

TEST(SzxLint, AllocFromLocalCountIsClean) {
  const auto fs = LintText("x.cpp", "out.resize(data.size());\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 0);
}

TEST(SzxLint, CatchesNarrowingCastOfSize) {
  const auto fs = LintText(
      "x.cpp",
      "auto z = static_cast<std::uint16_t>(section.size());\n");
  EXPECT_EQ(Count(fs, "unchecked-narrow"), 1);
}

TEST(SzxLint, CheckedNarrowIsClean) {
  const auto fs = LintText(
      "x.cpp", "auto z = CheckedNarrow<std::uint16_t>(section.size());\n");
  EXPECT_EQ(Count(fs, "unchecked-narrow"), 0);
}

TEST(SzxLint, WideningCastIsClean) {
  const auto fs = LintText(
      "x.cpp", "auto z = static_cast<std::uint64_t>(section.size());\n");
  EXPECT_EQ(Count(fs, "unchecked-narrow"), 0);
}

TEST(SzxLint, NarrowingCastOfLoopIndexIsClean) {
  const auto fs = LintText("x.cpp", "auto z = static_cast<std::uint16_t>(i);\n");
  EXPECT_EQ(Count(fs, "unchecked-narrow"), 0);
}

TEST(SzxLint, CatchesSimdLoadStoreIntrinsics) {
  const auto fs = LintText("x.cpp",
                           "__m256 v = _mm256_loadu_ps(p + i);\n"
                           "_mm256_store_si256(reinterpret_cast<__m256i*>(q), t);\n"
                           "_mm_stream_si128(dst, w);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 3);
}

TEST(SzxLint, NonMemorySimdIntrinsicsAreClean) {
  const auto fs = LintText("x.cpp",
                           "__m256 m = _mm256_set1_ps(1.0f);\n"
                           "__m256 s = _mm256_min_ps(a, b);\n"
                           "int k = _mm256_movemask_ps(c);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 0);
}

TEST(SzxLint, CatchesSimdGatherIntrinsics) {
  const auto fs = LintText(
      "x.cpp",
      "__m256i w = _mm256_i32gather_epi32(base, idx, 1);\n"
      "__m256i v = _mm256_i64gather_epi64(base64, idx64, 1);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 2);
}

TEST(SzxLint, SimdGatherAllowWithReasonSuppresses) {
  const auto fs = LintText(
      "x.cpp",
      "// szx-lint: allow(simd-mem) -- loop guard keeps every lane index "
      "within mid_size\n"
      "__m256i w = _mm256_i32gather_epi32(base, idx, 1);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 0);
}

TEST(SzxLint, SimdMemAllowWithReasonSuppresses) {
  const auto fs = LintText(
      "x.cpp",
      "// szx-lint: allow(simd-mem) -- loop bound keeps i+8 <= n\n"
      "__m256 v = _mm256_loadu_ps(p + i);\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 0);
}

TEST(SzxLint, SimdMemInCommentIsIgnored) {
  const auto fs = LintText("x.cpp", "// _mm256_loadu_ps in prose\nint x;\n");
  EXPECT_EQ(Count(fs, "simd-mem"), 0);
}

// --- allow directives ----------------------------------------------------

TEST(SzxLint, TrailingAllowSuppresses) {
  const auto fs = LintText(
      "x.cpp",
      "std::memcpy(d, s, n);  // szx-lint: allow(raw-memcpy) -- trusted\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, StandaloneAllowSuppressesNextCodeLine) {
  const auto fs = LintText("x.cpp",
                           "// szx-lint: allow(raw-memcpy) -- trusted\n"
                           "std::memcpy(d, s, n);\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, StackedAllowsSuppressOneStatement) {
  const auto fs = LintText(
      "x.cpp",
      "// szx-lint: allow(raw-memcpy) -- trusted fixture\n"
      "// szx-lint: allow(ptr-arith) -- trusted fixture\n"
      "std::memcpy(buf.data() + off, s, n);\n");
  EXPECT_TRUE(fs.empty()) << FormatFinding(fs.empty() ? Finding{} : fs[0]);
}

TEST(SzxLint, AllowWithoutReasonIsViolation) {
  const auto fs = LintText(
      "x.cpp", "std::memcpy(d, s, n);  // szx-lint: allow(raw-memcpy)\n");
  EXPECT_EQ(Count(fs, "unexplained-allow"), 1);
  EXPECT_EQ(Count(fs, "raw-memcpy"), 0);  // still suppressed, but reported
}

TEST(SzxLint, UnusedAllowIsViolation) {
  const auto fs = LintText(
      "x.cpp", "int x = 0;  // szx-lint: allow(raw-memcpy) -- stale\n");
  EXPECT_EQ(Count(fs, "unused-allow"), 1);
}

TEST(SzxLint, AllowForWrongRuleDoesNotSuppress) {
  const auto fs = LintText(
      "x.cpp",
      "std::memcpy(d, s, n);  // szx-lint: allow(ptr-arith) -- wrong\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 1);
  EXPECT_EQ(Count(fs, "unused-allow"), 1);
}

TEST(SzxLint, UnknownRuleNameIsViolation) {
  const auto fs = LintText(
      "x.cpp", "int x;  // szx-lint: allow(no-such-rule) -- whatever\n");
  EXPECT_EQ(Count(fs, "unknown-rule"), 1);
}

TEST(SzxLint, ProseMentionOfDirectiveSyntaxIsIgnored)  {
  const auto fs = LintText(
      "x.cpp",
      "// Suppress with a trailing comment of the form\n"
      "//   // szx-lint: allow(some-rule) -- reason\n"
      "int x = 0;\n");
  EXPECT_TRUE(fs.empty());
}

// --- allowlist -----------------------------------------------------------

TEST(SzxLint, AllowlistedFilesAreSkipped) {
  const std::string code = "std::memcpy(d, s, n);\n";
  EXPECT_TRUE(LintText("src/core/byte_cursor.hpp", code).empty());
  EXPECT_TRUE(LintText("src/core/stream.hpp", code).empty());
  EXPECT_TRUE(LintText("src/core/bitops.hpp", code).empty());
  EXPECT_TRUE(LintText("src/core/arena.hpp", code).empty());
  EXPECT_FALSE(LintText("src/core/upstream.hpp", code).empty());
  EXPECT_FALSE(LintText("src/core/format.hpp", code).empty());
}

TEST(SzxLint, StrictZonePathsAreRecognized) {
  EXPECT_TRUE(IsStrictZone("src/resilience/salvage.cpp"));
  EXPECT_TRUE(IsStrictZone("/root/repo/src/resilience/salvage.hpp"));
  EXPECT_TRUE(IsStrictZone("resilience/salvage.cpp"));
  EXPECT_TRUE(IsStrictZone("src/serve/server.cpp"));
  EXPECT_TRUE(IsStrictZone("/root/repo/src/serve/protocol.hpp"));
  EXPECT_TRUE(IsStrictZone("serve/transport.hpp"));
  EXPECT_FALSE(IsStrictZone("src/core/format.hpp"));
  EXPECT_FALSE(IsStrictZone("src/iosim/retry_sim.cpp"));
  // tools/ adapters (FdTransport, the daemon) sit outside the zone: the
  // sockaddr ABI casts there carry explained allow directives.
  EXPECT_FALSE(IsStrictZone("tools/serve_net.hpp"));
  EXPECT_FALSE(IsStrictZone("tools/szx_serve.cpp"));
}

TEST(SzxLint, ServeStrictZoneRefusesAllowDirectives) {
  // The network-facing parser must fix findings, not suppress them.
  const auto fs = LintText(
      "src/serve/protocol.cpp",
      "// szx-lint: allow(raw-memcpy) -- framing is hot\n"
      "std::memcpy(d, s, n);\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 1);
  EXPECT_EQ(Count(fs, "strict-zone"), 1);
}

TEST(SzxLint, StrictZoneRefusesAllowDirectives) {
  // In src/resilience/ a directive neither suppresses the finding nor
  // passes hygiene: both the underlying violation and a strict-zone
  // finding surface.
  const auto fs = LintText(
      "src/resilience/salvage.cpp",
      "// szx-lint: allow(raw-memcpy) -- totally safe, promise\n"
      "std::memcpy(d, s, n);\n");
  EXPECT_EQ(Count(fs, "raw-memcpy"), 1);
  EXPECT_EQ(Count(fs, "strict-zone"), 1);
}

TEST(SzxLint, StrictZoneIgnoresAllowlistBasenames) {
  // Even a file named like an audited primitive is linted inside the zone.
  const auto fs = LintText("src/resilience/stream.hpp",
                           "auto* p = reinterpret_cast<float*>(q);\n");
  EXPECT_EQ(Count(fs, "reinterpret-cast"), 1);
  EXPECT_TRUE(IsAllowlisted("src/core/stream.hpp"));
  EXPECT_TRUE(LintText("src/core/stream.hpp",
                       "auto* p = reinterpret_cast<float*>(q);\n")
                  .empty());
}

TEST(SzxLint, StrictZoneCleanCodeStaysClean) {
  const auto fs = LintText("src/resilience/salvage.cpp",
                           "out.resize(cur.CheckedAlloc(h.num_elements, 4, "
                           "1));\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, RuleListIsStable) {
  const auto& rules = Rules();
  EXPECT_GE(rules.size(), 5u);
  for (const auto& r : rules) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.summary.empty());
  }
}

TEST(SzxLint, FindingsAreSortedByLine) {
  const auto fs = LintText("x.cpp",
                           "auto* p = reinterpret_cast<float*>(q);\n"
                           "std::memcpy(d, s, n);\n"
                           "out.resize(h.num_elements);\n");
  ASSERT_EQ(fs.size(), 3u);
  EXPECT_EQ(fs[0].line, 1);
  EXPECT_EQ(fs[1].line, 2);
  EXPECT_EQ(fs[2].line, 3);
}

TEST(SzxLint, FormatFindingIsClickable) {
  Finding f{"src/a.cpp", 12, "raw-memcpy", "bad"};
  EXPECT_EQ(FormatFinding(f), "src/a.cpp:12: [raw-memcpy] bad");
}

TEST(SzxLint, RawStringContentIsIgnored) {
  const auto fs = LintText(
      "x.cpp", "const char* s = R\"(std::memcpy(d, s, n))\";\n");
  EXPECT_TRUE(fs.empty());
}

TEST(SzxLint, MultiLineAllocArgumentsAreSeen) {
  const auto fs = LintText("x.cpp",
                           "std::vector<float> out(\n"
                           "    h.num_elements);\n");
  EXPECT_EQ(Count(fs, "unchecked-alloc"), 1);
}

// --- memory-order / szx-mo justifications --------------------------------

TEST(SzxLintMo, BareMemoryOrderTokenNeedsJustification) {
  const auto fs = LintText(
      "x.cpp", "auto v = flag.load(std::memory_order_acquire);\n");
  EXPECT_EQ(Count(fs, "memory-order"), 1);
}

TEST(SzxLintMo, TrailingJustificationSatisfiesTheRule) {
  const auto fs = LintText(
      "x.cpp",
      "auto v = flag.load(std::memory_order_acquire);  "
      "// szx-mo: acquire; pairs with the release store in Publish\n");
  EXPECT_EQ(Count(fs, "memory-order"), 0);
  EXPECT_EQ(Count(fs, "stale-mo"), 0);
}

TEST(SzxLintMo, StackedJustificationCoversTheNextStatement) {
  const auto fs = LintText(
      "x.cpp",
      "// szx-mo: release; publishes the filled buffer to the consumer\n"
      "ready.store(true, std::memory_order_release);\n");
  EXPECT_EQ(Count(fs, "memory-order"), 0);
  EXPECT_EQ(Count(fs, "stale-mo"), 0);
}

TEST(SzxLintMo, OneJustificationCoversAWrappedStatement) {
  // compare_exchange spells two orders, possibly on a continuation line;
  // a single comment on the statement's first line must cover both.
  const auto fs = LintText(
      "x.cpp",
      "// szx-mo: acq_rel success / acquire failure; CAS loop over head\n"
      "while (!head.compare_exchange_weak(cur, next,\n"
      "                                   std::memory_order_acq_rel,\n"
      "                                   std::memory_order_acquire)) {\n"
      "}\n");
  EXPECT_EQ(Count(fs, "memory-order"), 0);
  EXPECT_EQ(Count(fs, "stale-mo"), 0);
}

TEST(SzxLintMo, JustificationIsHonoredInTheStrictZone) {
  // szx-mo is documentation, not a suppression: unlike allow() it is
  // accepted in src/resilience/.
  const auto fs = LintText(
      "src/resilience/salvage.cpp",
      "done.store(true, std::memory_order_release);  "
      "// szx-mo: release; pairs with the acquire in the reader\n");
  EXPECT_EQ(Count(fs, "memory-order"), 0);
  EXPECT_EQ(Count(fs, "strict-zone"), 0);
}

TEST(SzxLintMo, ExplainedAllowSuppressesOutsideStrictZone) {
  const auto fs = LintText(
      "x.cpp",
      "auto v = flag.load(std::memory_order_relaxed);  "
      "// szx-lint: allow(memory-order) -- fixture exercising the decoder\n");
  EXPECT_EQ(Count(fs, "memory-order"), 0);
}

TEST(SzxLintMo, StrictZoneRefusesMemoryOrderAllow) {
  const auto fs = LintText(
      "src/resilience/salvage.cpp",
      "auto v = flag.load(std::memory_order_relaxed);  "
      "// szx-lint: allow(memory-order) -- trust me\n");
  EXPECT_EQ(Count(fs, "memory-order"), 1);
  EXPECT_EQ(Count(fs, "strict-zone"), 1);
}

TEST(SzxLintMo, EmptyJustificationIsStale) {
  const auto fs = LintText(
      "x.cpp",
      "auto v = flag.load(std::memory_order_acquire);  // szx-mo:\n");
  EXPECT_EQ(Count(fs, "stale-mo"), 1);
  // An empty comment justifies nothing, so the site is still bare.
  EXPECT_EQ(Count(fs, "memory-order"), 1);
}

TEST(SzxLintMo, JustificationAttachedToNothingIsStale) {
  const auto fs = LintText(
      "x.cpp", "int x = 0;  // szx-mo: relaxed; counter, joined later\n");
  EXPECT_EQ(Count(fs, "stale-mo"), 1);
}

// --- implicit-seq-cst ----------------------------------------------------

TEST(SzxLintSeqCst, FetchAddWithNoOrderIsFlaggedOnAnyReceiver) {
  const auto fs = LintText("x.cpp", "counter.fetch_add(1);\n");
  EXPECT_EQ(Count(fs, "implicit-seq-cst"), 1);
}

TEST(SzxLintSeqCst, FetchAddWithSpelledOrderIsClean) {
  const auto fs = LintText(
      "x.cpp",
      "counter.fetch_add(1, std::memory_order_relaxed);  "
      "// szx-mo: relaxed; conservation counter, read after the join\n");
  EXPECT_EQ(Count(fs, "implicit-seq-cst"), 0);
}

TEST(SzxLintSeqCst, BareLoadOnDeclaredAtomicIsFlagged) {
  const auto fs = LintText("x.cpp",
                           "std::atomic<int> gate{0};\n"
                           "int v = gate.load();\n");
  EXPECT_EQ(Count(fs, "implicit-seq-cst"), 1);
}

TEST(SzxLintSeqCst, BareLoadOnNonAtomicReceiverIsClean) {
  // load/store/exchange are ambiguous names; without a tracked atomic
  // declaration they must not fire (weak_ptr::lock-style false positives).
  const auto fs = LintText("x.cpp",
                           "Codebook cb;\n"
                           "auto t = cb.load();\n");
  EXPECT_EQ(Count(fs, "implicit-seq-cst"), 0);
}

TEST(SzxLintSeqCst, OperatorFormsOnDeclaredAtomicAreFlagged) {
  const auto fs = LintText("x.cpp",
                           "std::atomic<int> hits{0};\n"
                           "++hits;\n"
                           "hits += 2;\n");
  EXPECT_EQ(Count(fs, "implicit-seq-cst"), 2);
}

TEST(SzxLintSeqCst, OperatorsOnPlainIntsAreClean) {
  const auto fs = LintText("x.cpp", "int i = 0;\n++i;\ni += 2;\n");
  EXPECT_EQ(Count(fs, "implicit-seq-cst"), 0);
}

// --- naked-lock / condvar-wait -------------------------------------------

TEST(SzxLintLock, DirectLockOnDeclaredMutexIsFlagged) {
  const auto fs = LintText("x.cpp",
                           "std::mutex m;\n"
                           "m.lock();\n"
                           "m.unlock();\n");
  EXPECT_EQ(Count(fs, "naked-lock"), 2);
}

TEST(SzxLintLock, LockOnUntrackedReceiverIsClean) {
  // weak_ptr::lock() and friends share the method name; only receivers
  // declared as mutexes fire.
  const auto fs = LintText("x.cpp",
                           "std::weak_ptr<int> w;\n"
                           "auto sp = w.lock();\n");
  EXPECT_EQ(Count(fs, "naked-lock"), 0);
}

TEST(SzxLintLock, RaiiMutexLockIsClean) {
  const auto fs = LintText("x.cpp",
                           "sync::Mutex m;\n"
                           "void f() { sync::MutexLock lock(m); }\n");
  EXPECT_EQ(Count(fs, "naked-lock"), 0);
  EXPECT_EQ(Count(fs, "condvar-wait"), 0);
}

TEST(SzxLintCv, RawCondvarDeclarationIsFlagged) {
  const auto fs = LintText("x.cpp", "std::condition_variable cv;\n");
  EXPECT_EQ(Count(fs, "condvar-wait"), 1);
}

TEST(SzxLintCv, WaitPassingHeldRaiiLockIsClean) {
  const auto fs = LintText("x.cpp",
                           "sync::Mutex m;\n"
                           "sync::CondVar cv;\n"
                           "void f() {\n"
                           "  sync::MutexLock lock(m);\n"
                           "  while (!ready) cv.Wait(lock);\n"
                           "}\n");
  EXPECT_EQ(Count(fs, "condvar-wait"), 0);
}

TEST(SzxLintCv, WaitPassingSomethingElseIsFlagged) {
  const auto fs = LintText("x.cpp",
                           "sync::Mutex m;\n"
                           "sync::CondVar cv;\n"
                           "void f() { cv.Wait(m); }\n");
  EXPECT_EQ(Count(fs, "condvar-wait"), 1);
}

// --- hot-alloc -----------------------------------------------------------

TEST(SzxLintHot, MarkedFileRejectsAllocation) {
  const auto fs = LintText(
      "kernels.cpp",
      "// szx-hot: decode inner loop\n"
      "void f(std::vector<int>& v) {\n"
      "  v.push_back(1);\n"
      "  auto* p = malloc(64);\n"
      "  auto* q = new Block();\n"
      "}\n");
  EXPECT_EQ(Count(fs, "hot-alloc"), 3);
}

TEST(SzxLintHot, UnmarkedFileIsExemptFromTheRule) {
  const auto fs = LintText("kernels.cpp",
                           "void f(std::vector<int>& v) { v.push_back(1); }\n");
  EXPECT_EQ(Count(fs, "hot-alloc"), 0);
}

TEST(SzxLintHot, ExplainedAllowSuppressesInMarkedFile) {
  const auto fs = LintText(
      "kernels.cpp",
      "// szx-hot: decode inner loop\n"
      "void f(std::vector<int>& v) {\n"
      "  v.reserve(64);  // szx-lint: allow(hot-alloc) -- one-time warm-up "
      "before the loop\n"
      "}\n");
  EXPECT_EQ(Count(fs, "hot-alloc"), 0);
}

TEST(SzxLintHot, PlacementishIdentifiersDoNotFire) {
  // `new` only fires when followed by a type or array form; identifiers
  // merely containing the letters are untouched by tokenization.
  const auto fs = LintText("kernels.cpp",
                           "// szx-hot: decode inner loop\n"
                           "int renew_count = news_total;\n");
  EXPECT_EQ(Count(fs, "hot-alloc"), 0);
}

// --- missing-nodiscard ---------------------------------------------------

TEST(SzxLintNodiscard, StatusReturningHeaderDeclIsFlagged) {
  const auto fs = LintText(
      "src/core/validate.hpp",
      "ValidationReport ValidateStream(ByteSpan stream, bool deep);\n");
  EXPECT_EQ(Count(fs, "missing-nodiscard"), 1);
}

TEST(SzxLintNodiscard, AnnotatedDeclIsClean) {
  const auto fs = LintText(
      "src/core/validate.hpp",
      "[[nodiscard]] ValidationReport ValidateStream(ByteSpan stream);\n");
  EXPECT_EQ(Count(fs, "missing-nodiscard"), 0);
}

TEST(SzxLintNodiscard, BoolCheckPrefixNamesAreFlagged) {
  const auto fs = LintText("a.hpp",
                           "bool NextFrame(std::vector<float>& out);\n"
                           "bool TryAcquire();\n");
  EXPECT_EQ(Count(fs, "missing-nodiscard"), 2);
}

TEST(SzxLintNodiscard, PrefixMustEndAtAWordBoundary) {
  // "Nextish" is not a Next* check; the prefix must be followed by an
  // uppercase letter or the end of the name.
  const auto fs = LintText("a.hpp", "bool Nextish(int x);\n");
  EXPECT_EQ(Count(fs, "missing-nodiscard"), 0);
}

TEST(SzxLintNodiscard, RuleOnlyAuditsHeaders) {
  const auto fs = LintText(
      "src/core/validate.cpp",
      "ValidationReport ValidateStream(ByteSpan stream, bool deep) {\n"
      "  return {};\n"
      "}\n");
  EXPECT_EQ(Count(fs, "missing-nodiscard"), 0);
}

// --- rule registry and JSON output ---------------------------------------

TEST(SzxLint, NewRuleFamiliesAreRegistered) {
  const auto& rules = Rules();
  for (const std::string_view name :
       {"memory-order", "implicit-seq-cst", "naked-lock", "condvar-wait",
        "hot-alloc", "missing-nodiscard", "stale-mo"}) {
    const bool present =
        std::any_of(rules.begin(), rules.end(),
                    [&](const RuleInfo& r) { return r.name == name; });
    EXPECT_TRUE(present) << name;
  }
}

TEST(SzxLintJson, EmptyFindingsRenderTheFixedSchema) {
  EXPECT_EQ(RenderJson({}),
            "{\"version\": 1, \"findings\": [], \"count\": 0}\n");
}

TEST(SzxLintJson, FindingsRenderWithDeterministicFieldOrder) {
  const std::vector<Finding> fs = {
      {"src/a.cpp", 12, "raw-memcpy", "bad"},
      {"src/b.cpp", 3, "memory-order", "needs szx-mo"},
  };
  EXPECT_EQ(RenderJson(fs),
            "{\"version\": 1, \"findings\": ["
            "{\"file\": \"src/a.cpp\", \"line\": 12, \"rule\": "
            "\"raw-memcpy\", \"message\": \"bad\"}, "
            "{\"file\": \"src/b.cpp\", \"line\": 3, \"rule\": "
            "\"memory-order\", \"message\": \"needs szx-mo\"}"
            "], \"count\": 2}\n");
}

TEST(SzxLintJson, StringsAreRfc8259Escaped) {
  const std::vector<Finding> fs = {
      {"dir\\file.cpp", 1, "r", "say \"hi\"\nthen\ttab\x01"},
  };
  const std::string out = RenderJson(fs);
  EXPECT_NE(out.find("\"dir\\\\file.cpp\""), std::string::npos) << out;
  EXPECT_NE(out.find("say \\\"hi\\\"\\nthen\\ttab\\u0001"), std::string::npos)
      << out;
}

TEST(SzxLintJson, RealFindingsRoundTripThroughTheSchema) {
  // Structural self-check over genuine linter output: one findings entry
  // per finding, the count field agrees, and the document is one line.
  const auto fs = LintText("x.cpp",
                           "std::memcpy(d, s, n);\n"
                           "auto v = flag.load(std::memory_order_acquire);\n");
  ASSERT_GE(fs.size(), 2u);
  const std::string out = RenderJson(fs);
  std::size_t entries = 0;
  for (std::size_t at = out.find("{\"file\": "); at != std::string::npos;
       at = out.find("{\"file\": ", at + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, fs.size());
  EXPECT_NE(out.find("\"count\": " + std::to_string(fs.size())),
            std::string::npos);
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

// The decoded-chunk cache is the densest atomics surface in the tree: its
// telemetry counters and stream-id generator name a memory_order on every
// access.  Pin the real files lint-clean so each order keeps its adjacent
// // szx-mo justification and every accessor keeps [[nodiscard]] — a
// regression here means someone weakened the strict memory-order rule or
// the cache drifted out from under it.
TEST(SzxLintTree, ChunkCacheStaysLintClean) {
  for (const char* rel : {"src/core/chunk_cache.hpp",
                          "src/core/chunk_cache.cpp"}) {
    const std::string path = std::string(SZX_TREE_ROOT) + "/" + rel;
    const auto fs = LintFile(path);
    std::string rendered;
    for (const Finding& f : fs) rendered += FormatFinding(f) + "\n";
    EXPECT_TRUE(fs.empty()) << rendered;
  }
}

TEST(SzxLintTree, ChunkCacheIsNotAllowlisted) {
  // The pin above is only meaningful if the rules actually apply there.
  EXPECT_FALSE(IsAllowlisted("src/core/chunk_cache.cpp"));
  EXPECT_FALSE(IsAllowlisted("src/core/chunk_cache.hpp"));
}

// src/serve/ terminates untrusted network bytes, so it lints as a strict
// zone: every file must be clean with zero allow directives.  Pin the real
// tree so a suppression (or a new finding) in the service layer fails CI
// rather than shipping.
TEST(SzxLintTree, ServeStaysLintClean) {
  for (const char* rel :
       {"src/serve/protocol.hpp", "src/serve/protocol.cpp",
        "src/serve/transport.hpp", "src/serve/transport.cpp",
        "src/serve/server.hpp", "src/serve/server.cpp",
        "src/serve/client.hpp", "src/serve/client.cpp"}) {
    const std::string path = std::string(SZX_TREE_ROOT) + "/" + rel;
    ASSERT_TRUE(IsStrictZone(path)) << path;
    const auto fs = LintFile(path);
    std::string rendered;
    for (const Finding& f : fs) rendered += FormatFinding(f) + "\n";
    EXPECT_TRUE(fs.empty()) << rendered;
  }
}

TEST(SzxLintTree, ServeIsNotAllowlisted) {
  EXPECT_FALSE(IsAllowlisted("src/serve/server.cpp"));
  EXPECT_FALSE(IsAllowlisted("src/serve/protocol.cpp"));
}

}  // namespace
}  // namespace szx::lint
