// Salvage property harness: for every fault class and >= 100 seeds each,
// the salvage pipeline must (a) never crash (the asan-all/tsan-omp tiers
// re-run this binary under sanitizers), (b) recover every block it does not
// report damaged bit-identically whenever that is provable (verified footer,
// or pure truncation which cannot alter surviving bytes), and (c) report a
// non-clean stream iff the mutation actually changed bytes.
#include <cmath>

#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "resilience/salvage.hpp"
#include "../test_util.hpp"
#include "testkit/fault_injector.hpp"

namespace szx::resilience {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;
using szx::testkit::FaultClass;
using szx::testkit::FaultClassName;
using szx::testkit::InjectFault;
using szx::testkit::kAllFaultClasses;

constexpr int kSeedsPerClass = 100;

template <typename T>
struct Corpus {
  ByteBuffer v2;
  std::vector<T> clean;
  Header header;

  explicit Corpus(Pattern pat, std::size_t n) {
    Params p;
    p.mode = ErrorBoundMode::kAbsolute;
    p.error_bound = 1e-3;
    p.block_size = 64;
    p.integrity = true;
    const auto data = MakePattern<T>(pat, n);
    v2 = Compress<T>(data, p);
    clean = Decompress<T>(v2);
    header = ParseHeader(v2);
  }
};

template <typename T>
void CheckOne(const Corpus<T>& corpus, FaultClass cls, std::uint64_t seed) {
  ByteBuffer stream = corpus.v2;
  const auto rec = InjectFault(stream, cls, seed);
  const bool mutated = stream != corpus.v2;
  SCOPED_TRACE(std::string(FaultClassName(cls)) + " seed=" +
               std::to_string(seed));

  const auto res = SalvageDecode<T>(stream);  // (a): must not crash/throw
  const DamageReport& r = res.report;

  if (!mutated) {
    // A no-op mutation (e.g. duplicating identical bytes) must verify
    // clean and decode bit-exactly.
    ASSERT_TRUE(r.usable);
    EXPECT_TRUE(r.clean);
    EXPECT_EQ(res.data, corpus.clean);
    return;
  }
  EXPECT_FALSE(r.clean) << "mutation changed bytes but report is clean";
  if (!r.usable) {
    EXPECT_FALSE(r.error.empty());
    EXPECT_TRUE(res.data.empty());
    return;
  }
  ASSERT_EQ(res.data.size(), corpus.clean.size());
  EXPECT_EQ(r.blocks_recovered + r.blocks_mu_filled + r.blocks_lost,
            corpus.header.num_blocks);

  // (b): bit-exact recovery of undamaged blocks is provable when the
  // footer survived (checksums verified) or the fault was a pure
  // truncation (surviving bytes unaltered).  A torn write that destroys
  // the footer can silently alter bytes a v1-style walk then trusts, so
  // no exactness claim is possible there.
  const bool provable =
      r.has_footer || (cls == FaultClass::kTruncate && !r.has_footer);
  if (!provable) return;
  const std::uint32_t bs = corpus.header.block_size;
  for (std::size_t i = 0; i < res.data.size(); ++i) {
    if (!r.BlockDamaged(i / bs)) {
      ASSERT_EQ(res.data[i], corpus.clean[i])
          << "undamaged block " << (i / bs) << " not bit-exact at element "
          << i;
    }
  }
  // (c): with a verified footer the damage localization is trusted; every
  // element that differs from the clean decode must lie in a reported
  // damaged block.
  if (!r.has_footer) return;
  for (std::size_t i = 0; i < res.data.size(); ++i) {
    const bool same = res.data[i] == corpus.clean[i] ||
                      (std::isnan(static_cast<double>(res.data[i])) &&
                       std::isnan(static_cast<double>(corpus.clean[i])));
    if (!same) {
      ASSERT_TRUE(r.BlockDamaged(i / bs))
          << "element " << i << " differs but block " << (i / bs)
          << " is not reported damaged";
    }
  }
  (void)rec;
}

TEST(SalvageProperty, Float32AllFaultClasses) {
  const Corpus<float> corpus(Pattern::kNoisySine, 64 * 64 * 8);
  for (const FaultClass cls : kAllFaultClasses) {
    for (int seed = 0; seed < kSeedsPerClass; ++seed) {
      CheckOne(corpus, cls, static_cast<std::uint64_t>(seed));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(SalvageProperty, Float64AllFaultClasses) {
  const Corpus<double> corpus(Pattern::kSmoothSine, 64 * 64 * 4);
  for (const FaultClass cls : kAllFaultClasses) {
    for (int seed = 0; seed < kSeedsPerClass; ++seed) {
      CheckOne(corpus, cls, static_cast<std::uint64_t>(seed) + 1000);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(SalvageProperty, SparseDataWithConstantBlocks) {
  // Sparse spikes produce many constant blocks, exercising the const_mu
  // path of the mu-fill degradation.
  const Corpus<float> corpus(Pattern::kSparseSpikes, 64 * 64 * 8);
  for (const FaultClass cls : kAllFaultClasses) {
    for (int seed = 0; seed < kSeedsPerClass; ++seed) {
      CheckOne(corpus, cls, static_cast<std::uint64_t>(seed) + 5000);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(SalvageProperty, InjectorIsDeterministic) {
  const Corpus<float> corpus(Pattern::kNoisySine, 64 * 64);
  for (const FaultClass cls : kAllFaultClasses) {
    ByteBuffer a = corpus.v2;
    ByteBuffer b = corpus.v2;
    const auto ra = InjectFault(a, cls, 99);
    const auto rb = InjectFault(b, cls, 99);
    EXPECT_EQ(a, b);
    EXPECT_EQ(ra.ranges, rb.ranges);
    EXPECT_EQ(ra.new_size, rb.new_size);
    ByteBuffer c = corpus.v2;
    (void)InjectFault(c, cls, 100);
    if (cls != FaultClass::kDuplicate) {
      // Different seeds should (for these classes) hit different bytes.
      EXPECT_TRUE(c != a || cls == FaultClass::kZeroFill);
    }
  }
}

}  // namespace
}  // namespace szx::resilience
