// Container salvage: a damaged chunk degrades only the elements it covers,
// the rest of the timestep decodes bit-exactly, and the report is
// deterministic across thread counts.
#include "resilience/container_salvage.hpp"

#include <gtest/gtest.h>

#include "../test_util.hpp"

namespace szx::resilience {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;

constexpr std::uint64_t kChunk = 1024;
constexpr std::uint64_t kChunks = 8;

/// One-field container over noisy data; integrity params make each chunk a
/// v2 stream so the per-chunk salvage tiers have a footer to work with.
ByteBuffer BuildContainer(const std::vector<float>& data) {
  ContainerWriter w;
  ContainerWriter::FieldSpec spec;
  spec.name = "field";
  spec.params.integrity = true;
  spec.elements_per_timestep = data.size();
  spec.chunk_elements = kChunk;
  const std::uint32_t f = w.AddField(spec, DataType::kFloat32);
  w.AppendTimestep<float>(f, data);
  return w.Finish();
}

TEST(ContainerSalvage, CleanContainerIsCleanAndBitExact) {
  const auto data =
      MakePattern<float>(Pattern::kNoisySine, kChunk * kChunks, 31);
  const ByteBuffer c = BuildContainer(data);
  ContainerReader reader(c);
  const auto full = reader.DecompressTimestep<float>(0, 0);
  const auto r = SalvageContainerTimestep<float>(reader, 0, 0);
  EXPECT_TRUE(r.report.usable);
  EXPECT_TRUE(r.report.clean);
  EXPECT_EQ(r.report.chunks_recovered, kChunks);
  EXPECT_EQ(r.report.chunks_degraded, 0u);
  EXPECT_EQ(r.report.chunks_lost, 0u);
  EXPECT_TRUE(r.report.damaged.empty());
  EXPECT_EQ(r.data, full);
}

TEST(ContainerSalvage, OneFlippedByteQuarantinesOneChunk) {
  const auto data =
      MakePattern<float>(Pattern::kNoisySine, kChunk * kChunks, 32);
  ByteBuffer c = BuildContainer(data);
  const auto full = ContainerReader(c).DecompressTimestep<float>(0, 0);
  // Flip a payload byte in chunk 3's stream.
  const ContainerReader clean(c);
  const std::uint64_t victim = clean.EntryIndex(0, 0, 3);
  const std::uint64_t off =
      clean.entry(victim).offset + clean.entry(victim).bytes / 2;
  c[static_cast<std::size_t>(off)] ^= std::byte{0x04};

  ContainerReader damaged(c);
  SalvageOptions opt;
  opt.sentinel = -7.5;
  const auto r = SalvageContainerTimestep<float>(damaged, 0, 0, opt);
  ASSERT_TRUE(r.report.usable);
  EXPECT_FALSE(r.report.clean);
  EXPECT_EQ(r.report.chunks_recovered, kChunks - 1);
  EXPECT_EQ(r.report.chunks_degraded + r.report.chunks_lost, 1u);
  ASSERT_EQ(r.report.damaged.size(), 1u);
  const ContainerChunkDamage& d = r.report.damaged[0];
  EXPECT_EQ(d.entry, victim);
  EXPECT_EQ(d.first_element, 3 * kChunk);
  EXPECT_EQ(d.last_element, 4 * kChunk);
  EXPECT_EQ(d.verdict, Verdict::kCorrupt);
  // Every element outside the damaged chunk is bit-exact.
  ASSERT_EQ(r.data.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (i >= 3 * kChunk && i < 4 * kChunk) continue;
    ASSERT_EQ(r.data[i], full[i]) << "element " << i;
  }
}

TEST(ContainerSalvage, UnusableChunkIsSentinelFilled) {
  const auto data =
      MakePattern<float>(Pattern::kUniformNoise, kChunk * kChunks, 33);
  ByteBuffer c = BuildContainer(data);
  const auto full = ContainerReader(c).DecompressTimestep<float>(0, 0);
  // Wreck chunk 5's stream header: no salvage tier can locate anything.
  const ContainerReader clean(c);
  const std::uint64_t victim = clean.EntryIndex(0, 0, 5);
  const std::size_t off =
      static_cast<std::size_t>(clean.entry(victim).offset);
  for (std::size_t i = 0; i < 16; ++i) c[off + i] = std::byte{0xff};

  ContainerReader damaged(c);
  SalvageOptions opt;
  opt.sentinel = 123.25;
  const auto r = SalvageContainerTimestep<float>(damaged, 0, 0, opt);
  ASSERT_TRUE(r.report.usable);
  EXPECT_EQ(r.report.chunks_lost, 1u);
  ASSERT_EQ(r.report.damaged.size(), 1u);
  EXPECT_EQ(r.report.damaged[0].fill, ChunkFill::kSentinel);
  for (std::uint64_t i = 5 * kChunk; i < 6 * kChunk; ++i) {
    ASSERT_EQ(r.data[i], 123.25f);
  }
  for (std::size_t i = 0; i < 5 * kChunk; ++i) {
    ASSERT_EQ(r.data[i], full[i]);
  }
}

TEST(ContainerSalvage, ReportIdenticalAcrossThreadCounts) {
  const auto data =
      MakePattern<float>(Pattern::kMixedScales, kChunk * kChunks, 34);
  ByteBuffer c = BuildContainer(data);
  const ContainerReader clean(c);
  // Damage two separate chunks differently.
  c[static_cast<std::size_t>(clean.entry(clean.EntryIndex(0, 0, 1)).offset +
                             40)] ^= std::byte{0x20};
  const std::size_t wreck =
      static_cast<std::size_t>(clean.entry(clean.EntryIndex(0, 0, 6)).offset);
  for (std::size_t i = 0; i < 16; ++i) c[wreck + i] = std::byte{0xaa};

  ContainerReader damaged(c);
  // Finite sentinel: the default quiet-NaN fill would defeat operator== on
  // the output vectors even when the bytes are identical.
  SalvageOptions serial;
  serial.num_threads = 1;
  serial.sentinel = -1.0;
  SalvageOptions parallel = serial;
  parallel.num_threads = 4;
  const auto a = SalvageContainerTimestep<float>(damaged, 0, 0, serial);
  const auto b = SalvageContainerTimestep<float>(damaged, 0, 0, parallel);
  EXPECT_EQ(a.data, b.data);
  EXPECT_EQ(a.report.damaged, b.report.damaged);
  EXPECT_EQ(a.report.ToJson(), b.report.ToJson());
  EXPECT_NE(a.report.ToJson().find("\"chunks_total\":8"), std::string::npos);
}

TEST(ContainerSalvage, PreconditionFailuresReportNotThrow) {
  const auto data = MakePattern<float>(Pattern::kRamp, kChunk, 35);
  const ByteBuffer c = BuildContainer(data);
  ContainerReader reader(c);
  EXPECT_FALSE(SalvageContainerTimestep<float>(reader, 7, 0).report.usable);
  EXPECT_FALSE(SalvageContainerTimestep<float>(reader, 0, 9).report.usable);
  EXPECT_FALSE(SalvageContainerTimestep<double>(reader, 0, 0).report.usable);
  SalvageOptions tiny;
  tiny.max_output_bytes = 16;
  const auto r = SalvageContainerTimestep<float>(reader, 0, 0, tiny);
  EXPECT_FALSE(r.report.usable);
  EXPECT_NE(r.report.error.find("max_output_bytes"), std::string::npos);
}

}  // namespace
}  // namespace szx::resilience
