// Salvage decoder: clean streams, targeted section/chunk damage, graceful
// degradation tiers, and serial-vs-OMP determinism.
#include "resilience/salvage.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "core/compressor.hpp"
#include "../test_util.hpp"

namespace szx::resilience {
namespace {

using szx::testing::MakePattern;
using szx::testing::Pattern;

template <typename T>
struct Fixture {
  std::vector<T> original;
  std::vector<T> clean_decode;
  ByteBuffer v2;
  Header header;

  explicit Fixture(std::size_t n = 64 * 64 * 8) {
    Params p;
    p.mode = ErrorBoundMode::kAbsolute;
    p.error_bound = 1e-3;
    p.block_size = 64;
    p.integrity = true;
    original = MakePattern<T>(Pattern::kNoisySine, n);
    v2 = Compress<T>(original, p);
    clean_decode = Decompress<T>(v2);
    header = ParseHeader(v2);
  }
};

TEST(Salvage, CleanV2StreamIsCleanAndBitExact) {
  Fixture<float> f;
  const auto res = SalvageDecode<float>(f.v2);
  ASSERT_TRUE(res.report.usable);
  EXPECT_TRUE(res.report.clean);
  EXPECT_TRUE(res.report.has_footer);
  EXPECT_EQ(res.report.footer, Verdict::kOk);
  EXPECT_TRUE(res.report.AllTablesVerify());
  EXPECT_EQ(res.data, f.clean_decode);
  EXPECT_EQ(res.report.blocks_recovered, f.header.num_blocks);
  EXPECT_EQ(res.report.blocks_mu_filled, 0u);
  EXPECT_EQ(res.report.blocks_lost, 0u);
  EXPECT_TRUE(res.report.damaged_blocks.empty());
  EXPECT_TRUE(res.report.damaged_bytes.empty());
  ASSERT_FALSE(res.report.chunks.empty());
  for (const auto& c : res.report.chunks) {
    EXPECT_EQ(c.verdict, Verdict::kOk);
    EXPECT_EQ(c.fill, ChunkFill::kDecoded);
  }
}

TEST(Salvage, CorruptPayloadChunkIsMuFilledOthersBitExact) {
  Fixture<float> f;
  ByteBuffer damaged = f.v2;
  // Flip a byte deep in the payload (well past the metadata tables).
  const std::size_t pos = damaged.size() - 2000;
  damaged[pos] ^= std::byte{0x04};

  const auto res = SalvageDecode<float>(damaged);
  ASSERT_TRUE(res.report.usable);
  EXPECT_FALSE(res.report.clean);
  EXPECT_TRUE(res.report.AllTablesVerify());
  EXPECT_GT(res.report.blocks_mu_filled, 0u);
  EXPECT_EQ(res.report.blocks_recovered + res.report.blocks_mu_filled +
                res.report.blocks_lost,
            f.header.num_blocks);
  ASSERT_EQ(res.data.size(), f.clean_decode.size());
  const std::uint32_t bs = f.header.block_size;
  for (std::size_t i = 0; i < res.data.size(); ++i) {
    if (!res.report.BlockDamaged(i / bs)) {
      ASSERT_EQ(res.data[i], f.clean_decode[i]) << "element " << i;
    }
  }
  // Exactly one chunk is quarantined, and it is mu-filled (tables intact).
  std::size_t bad = 0;
  for (const auto& c : res.report.chunks) {
    if (c.fill == ChunkFill::kMuFill) ++bad;
    EXPECT_NE(c.fill, ChunkFill::kSentinel);
  }
  EXPECT_EQ(bad, 1u);
  EXPECT_FALSE(res.report.damaged_bytes.empty());
}

/// Byte offset of the ncb_mu section (whose damage defeats mu-fill).
template <typename T>
std::size_t NcbMuOffset(const Header& h) {
  const std::size_t type_len = (h.num_blocks + 7) / 8;
  const std::size_t nnc = h.num_blocks - h.num_constant;
  return sizeof(Header) + type_len + h.num_constant * sizeof(T) + nnc;
}

TEST(Salvage, CorruptMuTableDegradesToSentinel) {
  Fixture<float> f;
  ByteBuffer damaged = f.v2;
  damaged[NcbMuOffset<float>(f.header) + 5] ^= std::byte{0x80};

  const auto res = SalvageDecode<float>(damaged);
  ASSERT_TRUE(res.report.usable);
  EXPECT_FALSE(res.report.clean);
  EXPECT_EQ(res.report.ncb_mu, Verdict::kCorrupt);
  EXPECT_EQ(res.report.blocks_recovered, 0u);
  EXPECT_EQ(res.report.blocks_lost, f.header.num_blocks);
  for (const float v : res.data) {
    EXPECT_TRUE(std::isnan(v));
  }
}

TEST(Salvage, CustomSentinelValueIsUsed) {
  Fixture<float> f;
  ByteBuffer damaged = f.v2;
  damaged[NcbMuOffset<float>(f.header) + 5] ^= std::byte{0x80};

  SalvageOptions opt;
  opt.sentinel = -777.0;
  const auto res = SalvageDecode<float>(damaged, opt);
  ASSERT_TRUE(res.report.usable);
  for (const float v : res.data) {
    EXPECT_EQ(v, -777.0f);
  }
}

TEST(Salvage, TruncatedV2FallsBackAndRecoversPrefix) {
  Fixture<float> f;
  // Drop the footer and the last quarter of the payload.
  ByteBuffer damaged(f.v2.begin(),
                     f.v2.begin() + static_cast<std::ptrdiff_t>(
                                        f.v2.size() - f.v2.size() / 4));
  const auto res = SalvageDecode<float>(damaged);
  ASSERT_TRUE(res.report.usable);
  EXPECT_FALSE(res.report.has_footer);
  EXPECT_FALSE(res.report.clean);
  ASSERT_EQ(res.data.size(), f.clean_decode.size());
  EXPECT_GT(res.report.blocks_recovered, 0u);
  // Truncation removes bytes but never alters surviving ones, so every
  // block not reported damaged must decode bit-exactly.
  const std::uint32_t bs = f.header.block_size;
  for (std::size_t i = 0; i < res.data.size(); ++i) {
    if (!res.report.BlockDamaged(i / bs)) {
      ASSERT_EQ(res.data[i], f.clean_decode[i]) << "element " << i;
    }
  }
  EXPECT_FALSE(res.report.damaged_blocks.empty());
}

TEST(Salvage, V1StreamSalvagesUnverified) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-3;
  p.block_size = 64;
  const auto data = MakePattern<double>(Pattern::kSmoothSine, 10000);
  const ByteBuffer v1 = Compress<double>(data, p);

  const auto res = SalvageDecode<double>(v1);
  ASSERT_TRUE(res.report.usable);
  EXPECT_FALSE(res.report.has_footer);
  EXPECT_FALSE(res.report.clean);  // nothing can be verified on v1
  EXPECT_EQ(res.report.header, Verdict::kUnverified);
  EXPECT_EQ(res.data, Decompress<double>(v1));
  EXPECT_TRUE(res.report.damaged_blocks.empty());
}

TEST(Salvage, GarbageStreamIsUnusableNotThrowing) {
  ByteBuffer junk(300, std::byte{0x5a});
  const auto res = SalvageDecode<float>(junk);
  EXPECT_FALSE(res.report.usable);
  EXPECT_FALSE(res.report.error.empty());
  EXPECT_TRUE(res.data.empty());
}

TEST(Salvage, HeaderDamageUnderFooterIsFatal) {
  Fixture<float> f;
  ByteBuffer damaged = f.v2;
  damaged[40] ^= std::byte{0x01};  // inside the header's u64 fields
  const auto res = SalvageDecode<float>(damaged);
  EXPECT_FALSE(res.report.usable);
  EXPECT_EQ(res.report.header, Verdict::kCorrupt);
  EXPECT_TRUE(res.data.empty());
}

TEST(Salvage, TypeMismatchRejected) {
  Fixture<float> f;
  const auto res = SalvageDecode<double>(f.v2);
  EXPECT_FALSE(res.report.usable);
  EXPECT_FALSE(res.report.error.empty());
}

TEST(Salvage, VerifyMatchesSalvageReport) {
  Fixture<float> f;
  ByteBuffer damaged = f.v2;
  damaged[damaged.size() - 2000] ^= std::byte{0x04};

  const auto salvaged = SalvageDecode<float>(damaged);
  const DamageReport verify = VerifyIntegrity<float>(damaged);
  EXPECT_EQ(verify.ToJson(), salvaged.report.ToJson());
}

TEST(Salvage, SerialAndParallelSalvageIdentical) {
  Fixture<float> f;
  ByteBuffer damaged = f.v2;
  damaged[damaged.size() - 2000] ^= std::byte{0x04};
  damaged[damaged.size() - 6000] ^= std::byte{0x20};

  const auto ref = SalvageDecode<float>(damaged);  // num_threads = 1
  for (const int threads : {0, 2, 4, 8}) {
    SalvageOptions opt;
    opt.num_threads = threads;
    const auto par = SalvageDecode<float>(damaged, opt);
    ASSERT_EQ(par.report.ToJson(), ref.report.ToJson())
        << "threads=" << threads;
    // NaN sentinels compare unequal, so compare bit patterns.
    ASSERT_EQ(par.data.size(), ref.data.size());
    for (std::size_t i = 0; i < ref.data.size(); ++i) {
      const bool both_nan =
          std::isnan(par.data[i]) && std::isnan(ref.data[i]);
      ASSERT_TRUE(both_nan || par.data[i] == ref.data[i])
          << "threads=" << threads << " element " << i;
    }
  }
}

TEST(Salvage, RawPassthroughChunkDamageIsDetected) {
  Params p;
  p.mode = ErrorBoundMode::kAbsolute;
  p.error_bound = 1e-12;  // force raw passthrough on noise
  p.block_size = 64;
  p.integrity = true;
  const auto data = MakePattern<float>(Pattern::kUniformNoise, 2000);
  const ByteBuffer v2 = Compress<float>(data, p);
  ASSERT_NE(ParseHeader(v2).flags & kFlagRawPassthrough, 0);

  // Clean: bit-exact.
  const auto clean = SalvageDecode<float>(v2);
  ASSERT_TRUE(clean.report.clean);
  EXPECT_EQ(clean.data, data);

  // One flipped payload byte: the single chunk is quarantined.
  ByteBuffer damaged = v2;
  damaged[sizeof(Header) + 123] ^= std::byte{0x08};
  const auto res = SalvageDecode<float>(damaged);
  ASSERT_TRUE(res.report.usable);
  EXPECT_FALSE(res.report.clean);
  ASSERT_EQ(res.report.chunks.size(), 1u);
  EXPECT_EQ(res.report.chunks[0].verdict, Verdict::kCorrupt);
  EXPECT_EQ(res.report.chunks[0].fill, ChunkFill::kSentinel);
  for (const float v : res.data) EXPECT_TRUE(std::isnan(v));
}

TEST(Salvage, ReportJsonHasStableShape) {
  Fixture<float> f;
  const auto res = SalvageDecode<float>(f.v2);
  const std::string json = res.report.ToJson();
  EXPECT_NE(json.find("\"usable\":true"), std::string::npos);
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(json.find("\"verdicts\""), std::string::npos);
  EXPECT_NE(json.find("\"chunks\""), std::string::npos);
  EXPECT_NE(json.find("\"damaged_blocks\":[]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace szx::resilience
